//! # hdd-repro — reproduction of Hsu's Hierarchical Database Decomposition
//!
//! Umbrella crate: re-exports the workspace members so the examples and
//! integration tests have a single import root.
//!
//! * [`hdd`] — the paper's concurrency-control technique (Protocols A/B/C,
//!   activity-link functions, time walls, decomposition algorithms);
//! * [`txn_model`] — shared transaction vocabulary and the serializability
//!   checker;
//! * [`mvstore`] — the multi-version storage substrate;
//! * [`baselines`] — 2PL, TSO, MVTO, MV2PL, SDD-1-style and no-control
//!   comparators;
//! * [`workloads`] — the paper's banking and inventory applications plus
//!   synthetic hierarchies and scripted anomalies;
//! * [`sim`] — drivers and the per-figure experiment harness.

pub use baselines;
pub use hdd;
pub use mvstore;
pub use sim;
pub use txn_model;
pub use workloads;
