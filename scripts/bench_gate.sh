#!/usr/bin/env bash
# Throughput-floor gate: compares a fresh quick run against the recorded
# baselines and fails on a regression.
#
#   scripts/bench_gate.sh
#
# Two floors, both best-of-3 hdd 8-worker runs over the inventory batch:
#
#   * obs disabled vs BENCH_hotpath.json — floor 90% (the hot path must
#     not pay for observability it did not ask for);
#   * obs enabled (histograms, tracing, live gauge board) vs
#     BENCH_obs.json — floor 50% (coarse: catches an accidental O(n)
#     regression on the instrumented path, not percent-level drift).
#
# The recorded BENCH_hotpath.json trajectory spans 1/2/4/8/16/32
# workers (16/32 oversubscribe most machines and track graceful
# degradation); the gate itself pins the 8-worker cell. The flight
# recorder's own sampled-mode floor lives in the separate blame-smoke
# stage (scripts/ci.sh).
#
# Missing baseline files downgrade the corresponding floor to
# report-only, so fresh clones still pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p sim --bin experiments -- bench-gate
