#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and a release
# smoke of the hot-path experiment. Run from the repository root:
#
#   scripts/ci.sh
#
# Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tests (tier 1) =="
cargo build --release -q
cargo test -q

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== docs =="
cargo doc --no-deps -q --workspace

echo "== ordering audit =="
# Every Ordering::Relaxed site in the workspace must carry a
# `// ordering:` justification (DESIGN.md section 12); unjustified
# sites fail the build.
cargo run -q -p certify --bin hdd-ordering-lint -- crates

echo "== mc smoke (instrumented, <60s) =="
# Model-check the engine self-models and the HDD protocol models under
# the instrumented facade. Separate target dir: --cfg mc changes every
# routed crate, so sharing ./target would thrash the main cache.
RUSTFLAGS="--cfg mc" cargo test -q -p mc --target-dir target/mc

echo "== hot-path smoke (release, quick) =="
cargo run --release -q -p sim --bin experiments -- hotpath quick

echo "== obs profile smoke (release, quick) =="
cargo run --release -q -p sim --bin experiments -- e14 quick

echo "== export smoke (release) =="
# Short obs-enabled run + quick E17: the generated Prometheus exposition
# and Chrome trace must pass the in-repo validators, and the staleness
# tables must carry Protocol A (class) and Protocol C (wall) rows.
cargo run --release -q -p sim --bin experiments -- export-smoke

echo "== bench gate (release) =="
# Throughput floors: obs-disabled hdd 8w vs BENCH_hotpath.json (>90%)
# and obs-enabled hdd 8w vs BENCH_obs.json (>50%).
scripts/bench_gate.sh

echo "== certify smoke (release) =="
# A-priori lint of the bundled workloads must be clean, and the broken
# demo decompositions must be rejected (witnesses + repair suggestions).
cargo run --release -q -p certify --bin hdd-lint -- builtin
if cargo run --release -q -p certify --bin hdd-lint -- demo > /dev/null 2>&1; then
  echo "hdd-lint demo unexpectedly passed (must reject the broken decompositions)"
  exit 1
fi
# Offline certification: concurrent hdd (partition-synchronization rule)
# and mvto logs must certify clean; the nocontrol anomaly self-check
# must shrink to a single-digit counterexample.
cargo run --release -q -p sim --bin experiments -- certify-smoke

echo "== chaos smoke (release, quick) =="
# Quick E16 soak: injected crashes/stalls/torn WAL tails must all
# certify clean, every corpse reaped by the watchdog, and recovery must
# never reuse a pre-crash timestamp.
cargo run --release -q -p sim --bin experiments -- chaos-smoke

echo "== blame smoke (release) =="
# Flight-recorder gate: an 8-worker traced run must attribute >=95% of
# measured block time to a cause edge, leak no open spans, and emit a
# Perfetto trace that passes the in-repo validator; sampled-mode
# tracing (stride 32) must hold >=85% of the BENCH_hotpath.json
# disabled baseline.
cargo run --release -q -p sim --bin experiments -- blame-smoke

echo "== durability smoke (release) =="
# Durable-tier gate: a 12-seed disk-fault soak (torn writes, lying
# fsyncs, kill-mid-batch) must recover from on-disk bytes alone,
# certify every stitched log, never reuse a timestamp, and never leave
# an acked commit off the disk (outside lying-fsync seeds); the
# StorageBackend trait refactor must hold >=95% of the
# BENCH_hotpath.json hdd 8-worker baseline.
cargo run --release -q -p sim --bin experiments -- durability-smoke

echo "== drift smoke (release) =="
# Workload-drift gate (quick E20): the steady negative-control phase
# must never trip the drift board, the mid-run shift to the
# cycle-closing mix must trip it within 3 folds, the online advisor
# must match the offline hdd-lint repair (and report the running
# grouping optimal), the trip must surface as a Perfetto instant, and
# drift-enabled throughput must hold >=90% of the obs-only baseline.
cargo run --release -q -p sim --bin experiments -- drift-smoke
# The advisor CLI's JSON report must keep its machine-readable shape.
advisor_json="$(cargo run --release -q -p sim --bin hdd-advisor -- --json --txns 500 --waves 1)"
for key in quality_milli optimal advised_labels drift_score_milli suggestions; do
  if ! grep -q "\"$key\"" <<< "$advisor_json"; then
    echo "hdd-advisor --json lost the \"$key\" field"
    exit 1
  fi
done

echo "CI OK"
