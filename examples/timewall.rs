//! Time walls (Section 5, Figure 9): how an ad-hoc read-only transaction
//! whose read set spans two branches of the hierarchy gets a consistent
//! snapshot without ever registering a read.
//!
//! ```text
//! cargo run --example timewall
//! ```

use hdd::analysis::{AccessSpec, Hierarchy};
use hdd::protocol::{HddConfig, HddScheduler};
use mvstore::MvStore;
use std::sync::Arc;
use txn_model::{
    ClassId, DependencyGraph, GranuleId, LogicalClock, ReadOutcome, Scheduler, SegmentId,
    TxnProfile, Value,
};

fn main() {
    let s = SegmentId;
    // A branching hierarchy: two derivation branches over a shared event
    // log.   1 → 0 ← 2
    let hierarchy = Arc::new(
        Hierarchy::build(
            3,
            &[
                AccessSpec::new("log", vec![s(0)], vec![]),
                AccessSpec::new("branch-a", vec![s(1)], vec![s(0), s(1)]),
                AccessSpec::new("branch-b", vec![s(2)], vec![s(0), s(2)]),
            ],
        )
        .unwrap(),
    );

    let store = Arc::new(MvStore::new());
    let log_g = GranuleId::new(s(0), 1);
    let a_g = GranuleId::new(s(1), 1);
    let b_g = GranuleId::new(s(2), 1);
    store.seed(log_g, Value::Int(0));
    store.seed(a_g, Value::Int(0));
    store.seed(b_g, Value::Int(0));

    let sched = HddScheduler::new(
        hierarchy,
        store.clone(),
        Arc::new(LogicalClock::new()),
        HddConfig::default(),
    );

    // Some update traffic in both branches.
    for round in 1..=3i64 {
        let t0 = sched.begin(&TxnProfile::update(ClassId(0), vec![]));
        sched.write(&t0, log_g, Value::Int(round));
        sched.commit(&t0);
        for (class, g) in [(ClassId(1), a_g), (ClassId(2), b_g)] {
            let t = sched.begin(&TxnProfile::update(class, vec![s(0), g.segment]));
            let base = match sched.read(&t, log_g) {
                ReadOutcome::Value(v) => v.as_int(),
                other => panic!("{other:?}"),
            };
            sched.read(&t, g);
            sched.write(&t, g, Value::Int(base * 10));
            sched.commit(&t);
        }
    }

    // Release a wall: the vector of E_s^i(m) per class.
    assert!(sched.try_release_wall(), "idle instant: wall computable");
    let wall = sched.walls().latest().expect("just released");
    println!("time wall released at ts {}:", wall.released_at);
    println!("  anchor time m = {}", wall.anchor_time);
    for (i, comp) in wall.components.iter().enumerate() {
        println!("  E_s^{i}(m) = {comp}");
    }

    // An audit reading BOTH branches — segments 1 and 2 are not on one
    // critical path, so Protocol C pins the transaction to the wall.
    let audit = sched.begin(&TxnProfile::read_only(vec![s(1), s(2)]));
    let va = match sched.read(&audit, a_g) {
        ReadOutcome::Value(v) => v.as_int(),
        other => panic!("{other:?}"),
    };
    let vb = match sched.read(&audit, b_g) {
        ReadOutcome::Value(v) => v.as_int(),
        other => panic!("{other:?}"),
    };
    sched.commit(&audit);
    println!("audit read branch-a = {va}, branch-b = {vb}");
    // Both branches derive from the same log rounds: a consistent
    // snapshot sees the same round in both (here: the final state).
    assert_eq!(va, vb, "Theorem 2: the wall is a consistent cut");

    let m = sched.metrics().snapshot();
    println!(
        "audit cost: wall_reads = {}, read registrations = {}, blocks = {}",
        m.wall_reads,
        m.read_registrations - 6,
        m.blocks
    );
    assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    println!("serializable: true");
}
