//! Figures 1, 3 and 4, step for step: the anomalies the paper draws, and
//! how each scheduler handles them.
//!
//! ```text
//! cargo run --example anomalies
//! ```

use sim::experiments::{e01_lost_update, e03_2pl_anomaly, e04_tso_anomaly};

fn main() {
    // Figure 1: two read-modify-writes interleave; without control the
    // second write silently overwrites the first.
    let e1 = e01_lost_update::run(true);
    println!("{e1}");
    let lost: i64 = e1.cell("nocontrol", "lost").unwrap().parse().unwrap();
    println!("no-control lost ${lost}; every real scheduler lost $0.\n");
    assert!(lost > 0);

    // Figure 3: a type-3 transaction that skips read locks outside its
    // segment lets the cycle t2 → t1 → t3 → t2 through under 2PL.
    let e3 = e03_2pl_anomaly::run();
    println!("{e3}");
    assert_eq!(
        e3.cell("2pl-no-cross-read-locks", "serializable"),
        Some("false")
    );
    assert_eq!(e3.cell("hdd", "serializable"), Some("true"));
    println!(
        "2PL needs those read locks; HDD provably does not (zero\n\
         registrations, zero blocks, same three commits).\n"
    );

    // Figure 4: same story for timestamp ordering.
    let e4 = e04_tso_anomaly::run();
    println!("{e4}");
    assert_eq!(
        e4.cell("tso-no-cross-read-ts", "serializable"),
        Some("false")
    );
    assert_eq!(e4.cell("tso", "committed"), Some("2")); // prevention by rejection
    assert_eq!(e4.cell("hdd", "committed"), Some("3")); // prevention for free
    println!(
        "Basic TSO prevents the anomaly by rejecting the oldest reader;\n\
         HDD commits all three transactions with no registration at all."
    );
}
