//! Forensics tour: historical time-slice reads (Reed's scheme through
//! Theorem-2 walls), Graphviz exports of the hierarchy and of a
//! dependency-graph cycle, and a replay of the `obs` decision trace
//! explaining *why* one transaction was rejected.
//!
//! ```text
//! cargo run --example forensics
//! ```

use sim::factory::{build_scheduler, SchedulerKind};
use sim::scripts::run_script;
use txn_model::{DependencyGraph, GranuleId, Scheduler, SegmentId, Value};
use workloads::anomalies::{figure3_script, AnomalyWorkload};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

fn main() {
    // ---- Hierarchy DOT --------------------------------------------------
    let inventory = Inventory::new(InventoryConfig::default());
    let h = inventory.hierarchy();
    println!("--- inventory hierarchy (render with `dot -Tsvg`) ---");
    println!("{}", h.to_dot());

    // ---- A dependency cycle, visualized ---------------------------------
    // Replay the Figure 3 anomaly under the broken scheduler and export
    // the offending dependency graph.
    let w = AnomalyWorkload;
    let (sched, _store) = build_scheduler(SchedulerKind::TwoPlNoCrossReadLocks, &w);
    let out = run_script(sched.as_ref(), &figure3_script());
    assert!(!out.serializable);
    let dg = DependencyGraph::from_log(sched.log());
    println!("--- Figure 3 cycle (red nodes/arcs) ---");
    println!("{}", dg.to_dot());

    // ---- Time-slice reads ------------------------------------------------
    // Build some history under HDD, release walls between rounds, then
    // read consistent historical slices without any transaction.
    use hdd::protocol::{HddConfig, HddScheduler};
    use mvstore::MvStore;
    use std::sync::Arc;
    use txn_model::{ClassId, LogicalClock, TxnProfile};

    let s = SegmentId;
    let store = Arc::new(MvStore::new());
    let w2 = AnomalyWorkload;
    w2.seed(store.as_ref());
    let hierarchy = Arc::new(w2.hierarchy());
    let sched = HddScheduler::new(
        hierarchy,
        store.clone(),
        Arc::new(LogicalClock::new()),
        HddConfig::default(),
    );
    let inv = GranuleId::new(s(1), 1);
    let mut walls = Vec::new();
    for round in 1..=3i64 {
        let t = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0), s(1)]));
        sched.read(&t, inv);
        sched.write(&t, inv, Value::Int(round * 100));
        sched.commit(&t);
        assert!(sched.try_release_wall());
        walls.push(sched.walls().latest().unwrap());
    }
    println!("--- time-slice reads of the inventory level ---");
    for (i, wall) in walls.iter().enumerate() {
        let v = sched.read_at_wall(wall, inv);
        println!(
            "slice at wall {} (anchor ts {}): inventory = {:?}",
            i + 1,
            wall.anchor_time,
            v
        );
        assert_eq!(v, Value::Int((i as i64 + 1) * 100));
    }
    println!("present: inventory = {:?}", store.latest_value(inv));

    // ---- Decision-trace replay: why was a transaction rejected? ---------
    // Switch the obs sidecar on, stage a write-too-late rejection (an
    // older transaction writing after a younger one already read), then
    // drain the trace ring and reconstruct the dependency chain behind
    // the rejection from the schedule log.
    use obs::TraceEvent;
    use std::collections::HashMap;
    use txn_model::{ScheduleEvent, TxnId};

    sched.metrics().obs.set_enabled(true);
    let ta = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0), s(1)])); // older
    let tb = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0), s(1)])); // younger
    sched.read(&tb, GranuleId::new(s(0), 1)); // Protocol A cross-read, traced
    sched.read(&tb, inv); // Protocol B read: registers tb's read timestamp
    let w = sched.write(&ta, inv, Value::Int(999)); // too late: rejected
    assert_eq!(w, txn_model::WriteOutcome::Abort);
    sched.abort(&ta);
    sched.commit(&tb);

    let trace = sched.metrics().obs.trace.drain();
    println!("--- obs decision trace (ticket-ordered) ---");
    for (ticket, ev) in &trace {
        println!("#{ticket:<3} {ev}");
    }

    let (_, reject) = trace
        .iter()
        .find(|(_, ev)| matches!(ev, TraceEvent::Reject { .. }))
        .expect("the staged scenario produces a rejection");
    let TraceEvent::Reject {
        txn: victim,
        segment,
        key,
        reason,
    } = *reject
    else {
        unreachable!()
    };

    // Rebuild the chain from the schedule log: the victim's start, and
    // every younger read of the contested granule that the refused
    // write would have invalidated.
    let mut starts: HashMap<TxnId, txn_model::Timestamp> = HashMap::new();
    for (_, ev) in sched.log().events_stamped() {
        if let ScheduleEvent::Begin { txn, start_ts, .. } = ev {
            starts.insert(txn, start_ts);
        }
    }
    let victim_start = starts[&TxnId(victim)];
    println!("--- dependency chain behind t{victim}'s rejection ({reason}) ---");
    println!("t{victim} began at ts:{victim_start} and wrote D{segment}[{key}] last");
    for (_, ev) in sched.log().events_stamped() {
        if let ScheduleEvent::Read {
            txn,
            granule,
            version,
            writer,
        } = ev
        {
            if granule.segment.0 == segment && granule.key == key && starts[&txn] > victim_start {
                println!(
                    "  but t{} (start ts:{}, younger) had already read version \
                     ts:{} of D{segment}[{key}] (written by t{})",
                    txn.0, starts[&txn], version, writer.0
                );
            }
        }
    }
    println!(
        "  => TO write rule: installing a version at ts:{victim_start} would \
         invalidate that younger read, so the write was refused and t{victim} aborted"
    );
}
