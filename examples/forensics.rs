//! Forensics tour: historical time-slice reads (Reed's scheme through
//! Theorem-2 walls) and Graphviz exports of the hierarchy and of a
//! dependency-graph cycle.
//!
//! ```text
//! cargo run --example forensics
//! ```

use sim::factory::{build_scheduler, SchedulerKind};
use sim::scripts::run_script;
use txn_model::{DependencyGraph, GranuleId, Scheduler, SegmentId, Value};
use workloads::anomalies::{figure3_script, AnomalyWorkload};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

fn main() {
    // ---- Hierarchy DOT --------------------------------------------------
    let inventory = Inventory::new(InventoryConfig::default());
    let h = inventory.hierarchy();
    println!("--- inventory hierarchy (render with `dot -Tsvg`) ---");
    println!("{}", h.to_dot());

    // ---- A dependency cycle, visualized ---------------------------------
    // Replay the Figure 3 anomaly under the broken scheduler and export
    // the offending dependency graph.
    let w = AnomalyWorkload;
    let (sched, _store) = build_scheduler(SchedulerKind::TwoPlNoCrossReadLocks, &w);
    let out = run_script(sched.as_ref(), &figure3_script());
    assert!(!out.serializable);
    let dg = DependencyGraph::from_log(sched.log());
    println!("--- Figure 3 cycle (red nodes/arcs) ---");
    println!("{}", dg.to_dot());

    // ---- Time-slice reads ------------------------------------------------
    // Build some history under HDD, release walls between rounds, then
    // read consistent historical slices without any transaction.
    use hdd::protocol::{HddConfig, HddScheduler};
    use mvstore::MvStore;
    use std::sync::Arc;
    use txn_model::{ClassId, LogicalClock, TxnProfile};

    let s = SegmentId;
    let store = Arc::new(MvStore::new());
    let w2 = AnomalyWorkload;
    w2.seed(&store);
    let hierarchy = Arc::new(w2.hierarchy());
    let sched = HddScheduler::new(
        hierarchy,
        Arc::clone(&store),
        Arc::new(LogicalClock::new()),
        HddConfig::default(),
    );
    let inv = GranuleId::new(s(1), 1);
    let mut walls = Vec::new();
    for round in 1..=3i64 {
        let t = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0), s(1)]));
        sched.read(&t, inv);
        sched.write(&t, inv, Value::Int(round * 100));
        sched.commit(&t);
        assert!(sched.try_release_wall());
        walls.push(sched.walls().latest().unwrap());
    }
    println!("--- time-slice reads of the inventory level ---");
    for (i, wall) in walls.iter().enumerate() {
        let v = sched.read_at_wall(wall, inv);
        println!(
            "slice at wall {} (anchor ts {}): inventory = {:?}",
            i + 1,
            wall.anchor_time,
            v
        );
        assert_eq!(v, Value::Int((i as i64 + 1) * 100));
    }
    println!("present: inventory = {:?}", store.latest_value(inv));
}
