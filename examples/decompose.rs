//! Section 7 in action: deriving a decomposition from item-level access
//! data (7.2.2), legalizing an illegal DHG by merging (7.2.1), and
//! dynamically restructuring a running system for an ad-hoc transaction
//! shape (7.1.1).
//!
//! ```text
//! cargo run --example decompose
//! ```

use hdd::analysis::AccessSpec;
use hdd::decompose::{decompose, repartition_to_tst, AdaptiveScheduler, ItemAccess};
use hdd::graph::{is_transitive_semi_tree, Digraph};
use hdd::protocol::{HddConfig, SchedulerCore};
use mvstore::MvStore;
use std::sync::Arc;
use txn_model::{
    ClassId, DependencyGraph, GranuleId, LogicalClock, ReadOutcome, Scheduler, SegmentId,
    TxnProfile, Value, WriteOutcome,
};

fn main() {
    // ---- 7.2.2: decomposition via data analysis -------------------------
    // Item-level observations of the inventory application: the analyst
    // only lists which raw items each transaction shape touches.
    let observations = vec![
        ItemAccess::new("log-sale", vec![101], vec![]),
        ItemAccess::new("log-arrival", vec![102], vec![]),
        ItemAccess::new("post-inventory", vec![200], vec![101, 102]),
        ItemAccess::new("reorder", vec![300], vec![102, 200, 300]),
    ];
    let d = decompose(&observations).expect("derivable partition");
    println!(
        "derived {} segments in {} classes from {} observations",
        d.hierarchy.segment_count(),
        d.hierarchy.class_count(),
        observations.len()
    );
    let inv_class = d.class_of_item(200);
    let ord_class = d.class_of_item(300);
    assert!(d.hierarchy.higher_than(inv_class, ord_class));
    println!("reorder class sits below inventory class, as in Figure 2");

    // ---- 7.2.1: acyclic → TST by merging --------------------------------
    // A diamond DHG (two derivation paths into the same report segment)
    // is acyclic but NOT a transitive semi-tree.
    let diamond = Digraph::from_arcs(4, &[(3, 1), (3, 2), (1, 0), (2, 0)]);
    assert!(!is_transitive_semi_tree(&diamond));
    let plan = repartition_to_tst(&diamond);
    println!(
        "diamond legalized with {} merge(s) into {} classes",
        plan.merges.len(),
        plan.n_classes
    );
    assert!(is_transitive_semi_tree(&plan.contracted));

    // ---- 7.1.1: dynamic restructuring ------------------------------------
    // A running system over the tree 3 → 1 → 0 ← 2. An ad-hoc shape
    // that writes segment 3 while reading segment 2 turns the reduction
    // into a diamond, so the partition must coarsen — *without* stopping
    // the unaffected traffic.
    let s = SegmentId;
    let specs = vec![
        AccessSpec::new("c0", vec![s(0)], vec![]),
        AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
        AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
        AccessSpec::new("c3", vec![s(3)], vec![s(1), s(0)]),
    ];
    let store = Arc::new(MvStore::new());
    for seg in 0..4u32 {
        store.seed(GranuleId::new(s(seg), 1), Value::Int(0));
    }
    let core = SchedulerCore::new(store.clone(), Arc::new(LogicalClock::new()));
    let adaptive = AdaptiveScheduler::new(4, specs, core, HddConfig::default()).unwrap();

    // Normal traffic.
    let t = adaptive.begin(&TxnProfile {
        class: Some(ClassId(1)),
        read_segments: vec![s(0)],
        write_segments: vec![s(1)],
    });
    assert!(matches!(
        adaptive.read(&t, GranuleId::new(s(0), 1)),
        ReadOutcome::Value(_)
    ));
    assert_eq!(
        adaptive.write(&t, GranuleId::new(s(1), 1), Value::Int(7)),
        WriteOutcome::Done
    );

    // The ad-hoc shape arrives while t is still running.
    let needs_restructure = adaptive
        .submit_shape(AccessSpec::new(
            "cross-branch",
            vec![s(3)],
            vec![s(2), s(1), s(0)],
        ))
        .unwrap();
    println!("ad-hoc shape accepted, restructure needed: {needs_restructure}");
    assert!(needs_restructure);
    assert!(!adaptive.try_switch(), "affected classes still running");

    // The in-flight transaction finishes; the switch goes through on the
    // next maintenance tick.
    adaptive.commit(&t);
    adaptive.maintenance();
    let h = adaptive.current_hierarchy();
    println!("switched: {} classes now (was 4)", h.class_count());
    assert!(h.class_count() < 4);

    // The ad-hoc shape now runs.
    let adhoc = adaptive.begin(&TxnProfile {
        class: Some(h.class_of(s(3))),
        read_segments: vec![s(2), s(1), s(0)],
        write_segments: vec![s(3)],
    });
    assert!(matches!(
        adaptive.read(&adhoc, GranuleId::new(s(2), 1)),
        ReadOutcome::Value(_)
    ));
    assert_eq!(
        adaptive.write(&adhoc, GranuleId::new(s(3), 1), Value::Int(1)),
        WriteOutcome::Done
    );
    adaptive.commit(&adhoc);
    assert!(DependencyGraph::from_log(adaptive.log()).is_serializable());
    println!("ad-hoc transaction committed; combined schedule serializable");
}
