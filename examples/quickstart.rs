//! Quickstart: a two-level hierarchy, a handful of transactions, and the
//! paper's headline property — cross-class reads cost nothing.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hdd::analysis::{AccessSpec, Hierarchy};
use hdd::protocol::{HddConfig, HddScheduler};
use mvstore::MvStore;
use std::sync::Arc;
use txn_model::{
    ClassId, DependencyGraph, GranuleId, LogicalClock, ReadOutcome, Scheduler, SegmentId,
    TxnProfile, Value,
};

fn main() {
    let s = SegmentId;

    // 1. Transaction analysis: two segments. Class 0 logs events into
    //    D0; class 1 derives summaries into D1 from D0. The data
    //    hierarchy graph is the single arc 1 → 0 — a transitive
    //    semi-tree, so the partition is legal.
    let hierarchy = Arc::new(
        Hierarchy::build(
            2,
            &[
                AccessSpec::new("log-event", vec![s(0)], vec![]),
                AccessSpec::new("derive-summary", vec![s(1)], vec![s(0), s(1)]),
            ],
        )
        .expect("a chain is TST-hierarchical"),
    );
    println!(
        "hierarchy: {} segments, {} classes",
        hierarchy.segment_count(),
        hierarchy.class_count()
    );

    // 2. Seed a store and start the scheduler.
    let store = Arc::new(MvStore::new());
    let event = GranuleId::new(s(0), 1);
    let summary = GranuleId::new(s(1), 1);
    store.seed(event, Value::Int(0));
    store.seed(summary, Value::Int(0));
    let sched = HddScheduler::new(
        hierarchy,
        store.clone(),
        Arc::new(LogicalClock::new()),
        HddConfig::default(),
    );

    // 3. An event-logging transaction (class 0) commits a new event.
    let t1 = sched.begin(&TxnProfile::update(ClassId(0), vec![]));
    sched.write(&t1, event, Value::Int(42));
    sched.commit(&t1);

    // 4. A summary transaction (class 1) reads the event **cross-class**
    //    — Protocol A serves a committed version bounded by the activity
    //    link function, leaving no read timestamp and never waiting —
    //    and writes the derived summary into its own segment under
    //    Protocol B.
    let t2 = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0), s(1)]));
    let observed = match sched.read(&t2, event) {
        ReadOutcome::Value(v) => v.as_int(),
        other => panic!("Protocol A reads never wait: {other:?}"),
    };
    sched.read(&t2, summary);
    sched.write(&t2, summary, Value::Int(observed * 2));
    sched.commit(&t2);

    // 5. The costs, in the paper's terms.
    let m = sched.metrics().snapshot();
    println!("cross-class reads (unregistered): {}", m.cross_class_reads);
    println!(
        "read registrations (Protocol B only): {}",
        m.read_registrations
    );
    println!("blocks: {}, rejections: {}", m.blocks, m.rejections);

    // 6. And the correctness criterion of Section 2: the multi-version
    //    transaction dependency graph is acyclic.
    let dg = DependencyGraph::from_log(sched.log());
    println!("serializable: {}", dg.is_serializable());
    println!(
        "serialization order: {:?}",
        dg.serialization_order().expect("acyclic")
    );
    assert!(dg.is_serializable());
    assert_eq!(m.cross_class_reads, 1);
    assert_eq!(m.read_registrations, 1); // t2's own-segment read of `summary`
    assert_eq!(store.latest_value(summary), Value::Int(84));
    println!("ok: summary = 84, zero cross-class read overhead");
}
