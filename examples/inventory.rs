//! The paper's motivating application (Figure 2): a retail inventory
//! database under HDD and under the classical schedulers, side by side.
//!
//! ```text
//! cargo run --release --example inventory
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use sim::report::{f2, Table};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

fn main() {
    let n_txns = 400;
    let mut table = Table::new(
        "Inventory application (Figure 2) — 400 transactions",
        &[
            "scheduler",
            "commits",
            "restarts",
            "read_regs/commit",
            "unregistered_reads",
            "blocks",
            "rejections",
            "serializable",
        ],
    );

    for &kind in ALL_KINDS {
        let mut w = Inventory::new(InventoryConfig {
            items: 32,
            ..InventoryConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2026);
        let programs = (0..n_txns).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        let m = &stats.metrics;
        table.row(&[
            kind.name().to_string(),
            stats.committed.to_string(),
            stats.restarts.to_string(),
            f2(m.read_registrations_per_commit()),
            (m.cross_class_reads + m.wall_reads).to_string(),
            m.blocks.to_string(),
            m.rejections.to_string(),
            format!("{:?}", stats.serializable.unwrap_or(false)),
        ]);
        assert_eq!(
            stats.serializable,
            Some(true),
            "{} must serialize",
            kind.name()
        );
    }

    println!("{table}");
    println!(
        "The paper's claim: HDD's type-2/3/4/5 transactions read event and\n\
         inventory records from higher segments without a single read lock\n\
         or read timestamp — compare the read_regs/commit column."
    );
    let hdd: f64 = table
        .cell("hdd", "read_regs/commit")
        .unwrap()
        .parse()
        .unwrap();
    let tso: f64 = table
        .cell("tso", "read_regs/commit")
        .unwrap()
        .parse()
        .unwrap();
    println!("hdd registers {hdd:.2} reads/commit vs {tso:.2} under TSO.");
    assert!(SchedulerKind::Hdd.name() == "hdd" && hdd < tso);
}
