//! Stress: the reworked concurrent driver at full width. Eight workers
//! push ≥500 transactions through the hot path — atomic work-claiming
//! cursor, sharded transaction table, striped schedule log, settled-
//! cursor activity registry — under HDD and under a baseline, and the
//! run must still be provably serializable from the merged log.
//!
//! Also checks the striped log's merge contract directly on a real
//! run: tickets come out strictly increasing and dense (every append
//! got a unique sequence number, none were lost in the stripes).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use std::time::Duration;
use txn_model::{DependencyGraph, ScheduleEvent, TxnProgram};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

const TXNS: usize = 600;
const WORKERS: usize = 8;

fn inventory_batch(seed: u64) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 32,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..TXNS).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

fn stress(kind: SchedulerKind) {
    let (w, programs) = inventory_batch(0x57E5_5000 + kind as u64);
    let (sched, _store) = build_scheduler(kind, &w);
    let cfg = ConcurrentConfig {
        workers: WORKERS,
        maintenance_interval: Duration::from_micros(50),
        verify: true,
        capture_log: true,
        ..ConcurrentConfig::default()
    };
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    assert_eq!(
        out.stats.gave_up,
        0,
        "{}: transactions gave up",
        kind.name()
    );
    assert_eq!(out.stats.committed, TXNS, "{}", kind.name());
    assert_eq!(
        out.stats.serializable,
        Some(true),
        "{} produced a dependency cycle: {:?}",
        kind.name(),
        out.stats.cycle
    );

    // Striped-log merge contract on a real multi-threaded run: the
    // sequence tickets are strictly increasing and dense, so the merge
    // reconstructed the exact global append order.
    let stamped = sched.log().events_stamped();
    assert!(!stamped.is_empty());
    for (i, &(ticket, _)) in stamped.iter().enumerate() {
        assert_eq!(ticket, i as u64, "{}: ticket gap at {i}", kind.name());
    }

    // Per-transaction program order survives the stripes: Begin before
    // any access, Commit/Abort last.
    let mut begun = std::collections::HashSet::new();
    let mut finished = std::collections::HashSet::new();
    for (_, ev) in &stamped {
        let t = ev.txn();
        match ev {
            ScheduleEvent::Begin { .. } => assert!(begun.insert(t), "double begin {t:?}"),
            ScheduleEvent::Commit { .. } | ScheduleEvent::Abort { .. } => {
                assert!(begun.contains(&t), "finish before begin {t:?}");
                finished.insert(t);
            }
            _ => {
                assert!(begun.contains(&t), "access before begin {t:?}");
                assert!(!finished.contains(&t), "access after finish {t:?}");
            }
        }
    }

    // The merged log is self-consistent as a serializability witness
    // when rebuilt from scratch too (not just via the driver's check).
    assert!(DependencyGraph::from_log(sched.log()).is_serializable());
}

#[test]
fn stress_hdd_eight_workers() {
    stress(SchedulerKind::Hdd);
}

#[test]
fn stress_mvto_eight_workers() {
    stress(SchedulerKind::Mvto);
}
