//! The Figure 3 / Figure 4 scripts against every scheduler: the broken
//! variants (and only they) produce the paper's dependency cycle.

use sim::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use sim::scripts::{run_script, TxnStatus};
use workloads::anomalies::{figure3_script, figure4_script, AnomalyWorkload};

#[test]
fn sound_schedulers_never_admit_the_figure3_cycle() {
    for &kind in ALL_KINDS {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(kind, &w);
        let out = run_script(sched.as_ref(), &figure3_script());
        assert!(
            out.serializable,
            "{} admitted the Figure 3 cycle: {:?}",
            kind.name(),
            out.cycle
        );
    }
}

#[test]
fn sound_schedulers_never_admit_the_figure4_cycle() {
    for &kind in ALL_KINDS {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(kind, &w);
        let out = run_script(sched.as_ref(), &figure4_script());
        assert!(
            out.serializable,
            "{} admitted the Figure 4 cycle: {:?}",
            kind.name(),
            out.cycle
        );
    }
}

#[test]
fn broken_variants_admit_exactly_the_constructed_cycle() {
    for (kind, script) in [
        (SchedulerKind::TwoPlNoCrossReadLocks, figure3_script()),
        (SchedulerKind::TsoNoCrossReadTs, figure4_script()),
    ] {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(kind, &w);
        let out = run_script(sched.as_ref(), &script);
        assert!(!out.serializable, "{} must admit the cycle", kind.name());
        let cycle = out.cycle.expect("cycle");
        assert_eq!(cycle.len(), 3, "the paper's cycle involves t1, t2, t3");
        assert_eq!(out.statuses, vec![TxnStatus::Committed; 3]);
    }
}

#[test]
fn hdd_prevention_is_free() {
    // HDD prevents both anomalies with all three transactions
    // committing and zero synchronization cost on the reads.
    for script in [figure3_script(), figure4_script()] {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let out = run_script(sched.as_ref(), &script);
        assert!(out.serializable);
        assert_eq!(out.statuses, vec![TxnStatus::Committed; 3]);
        let m = sched.metrics().snapshot();
        assert_eq!(m.read_registrations, 0);
        assert_eq!(m.blocks, 0);
        assert_eq!(m.rejections, 0);
    }
}

#[test]
fn prevention_styles_differ_as_figure10_describes() {
    // 2PL blocks; TSO rejects; HDD does neither.
    let w = AnomalyWorkload;
    let (sched, _) = build_scheduler(SchedulerKind::TwoPl, &w);
    let out = run_script(sched.as_ref(), &figure3_script());
    assert!(out.serializable);
    assert!(
        sched.metrics().snapshot().blocks > 0,
        "strict 2PL prevents Figure 3 by blocking"
    );

    let w = AnomalyWorkload;
    let (sched, _) = build_scheduler(SchedulerKind::Tso, &w);
    let out = run_script(sched.as_ref(), &figure4_script());
    assert!(out.serializable);
    assert!(
        sched.metrics().snapshot().rejections > 0,
        "basic TSO prevents Figure 4 by rejecting"
    );
    assert_eq!(
        out.statuses
            .iter()
            .filter(|s| **s == TxnStatus::Aborted)
            .count(),
        1
    );
}
