//! Stress: the `obs` sidecar under full driver width. Eight workers
//! drive an obs-enabled HDD run, and the resulting snapshot must be
//! *consistent*: histogram counts equal bucket sums, one commit-latency
//! sample per committed program, trace tickets dense after the striped
//! drain, and the per-reason rejection counters partitioning the
//! `rejections` total.
//!
//! Plus a direct 8-thread hammer on a shared [`obs::Obs`]: concurrent
//! recording into every dimension loses nothing and `snapshot()` taken
//! mid-storm never observes count/bucket mismatches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use txn_model::TxnProgram;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

const TXNS: usize = 600;
const WORKERS: usize = 8;

fn inventory_batch(seed: u64) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 32,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..TXNS).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

#[test]
fn obs_enabled_hdd_run_snapshot_is_consistent() {
    let (w, programs) = inventory_batch(0x0B55_0001);
    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
    let cfg = ConcurrentConfig {
        workers: WORKERS,
        obs: true,
        ..ConcurrentConfig::default()
    };
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    assert_eq!(out.stats.committed, TXNS);
    assert_eq!(out.stats.serializable, Some(true), "{:?}", out.stats.cycle);

    let snap = sched.metrics().obs.snapshot();
    // One commit-latency sample per committed program, none lost in the
    // recorder stripes.
    assert_eq!(snap.commit_latency.count, TXNS as u64);
    // Histogram-internal consistency: count == Σ buckets, sum ≥ count·min.
    for h in [
        &snap.commit_latency,
        &snap.op_service,
        &snap.block_wait,
        &snap.backoff_sleep,
        &snap.registry_scan,
    ] {
        assert_eq!(h.count, h.buckets.iter().sum::<u64>());
        if h.count > 0 {
            assert!(h.min <= h.max);
            assert!(h.sum >= h.count.saturating_mul(h.min));
            assert!(h.p50() <= h.p99());
        }
    }
    // Every operation attempt was timed.
    assert!(snap.op_service.count >= out.stats.steps);
    // HDD served cross-class reads, so scan lengths were recorded and
    // traces captured.
    assert!(snap.registry_scan.count > 0);
    assert!(snap.trace_recorded > 0);

    // The drained trace comes out ticket-ordered.
    let drained = sched.metrics().obs.trace.drain();
    let mut last = None;
    for (ticket, _) in &drained {
        if let Some(prev) = last {
            assert!(*ticket > prev, "trace drain out of order");
        }
        last = Some(*ticket);
    }

    // Per-reason rejection counters partition the total.
    let m = out.stats.metrics;
    assert_eq!(
        m.rejections,
        m.rej_write_too_late + m.rej_read_too_late + m.rej_deadlock_victim
    );
    assert_eq!(m.wall_violations, 0, "bound proofs must hold under stress");
}

#[test]
fn shared_obs_eight_thread_hammer_loses_nothing() {
    let o = std::sync::Arc::new(obs::Obs::new());
    o.set_enabled(true);
    const PER_THREAD: u64 = 20_000;
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let o = std::sync::Arc::clone(&o);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_THREAD {
                o.commit_latency.record(t * PER_THREAD + i + 1);
                o.registry_scan.record(i % 17);
                if i % 64 == 0 {
                    o.emit(obs::TraceEvent::Backoff { nanos: i });
                }
                if i % 1024 == 0 {
                    // Mid-storm snapshot: internally consistent even
                    // while writers race.
                    let s = o.snapshot();
                    assert_eq!(
                        s.commit_latency.count,
                        s.commit_latency.buckets.iter().sum::<u64>()
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = o.snapshot();
    assert_eq!(s.commit_latency.count, 8 * PER_THREAD);
    assert_eq!(s.registry_scan.count, 8 * PER_THREAD);
    assert_eq!(s.commit_latency.min, 1);
    assert_eq!(s.commit_latency.max, 8 * PER_THREAD);
    assert_eq!(s.trace_recorded, 8 * PER_THREAD.div_ceil(64));
}
