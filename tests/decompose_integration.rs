//! Section 7 algorithms, end to end: data-analysis decomposition feeding
//! a live scheduler, and dynamic restructuring under traffic.

use hdd::analysis::AccessSpec;
use hdd::decompose::{decompose, repartition_to_tst, AdaptiveScheduler, ItemAccess};
use hdd::graph::{is_transitive_semi_tree, Digraph};
use hdd::protocol::{HddConfig, HddScheduler, SchedulerCore};
use mvstore::MvStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use txn_model::{
    ClassId, CommitOutcome, DependencyGraph, GranuleId, LogicalClock, ReadOutcome, Scheduler,
    SegmentId, TxnProfile, Value, WriteOutcome,
};

#[test]
fn decomposed_partition_drives_a_real_scheduler() {
    // Item-level observations; derive the partition; run transactions
    // shaped like the observations through an HddScheduler built from
    // the derived grouped hierarchy.
    let observations = vec![
        ItemAccess::new("log-a", vec![1], vec![]),
        ItemAccess::new("log-b", vec![2], vec![]),
        ItemAccess::new("derive", vec![10, 11], vec![1, 2]), // co-written pair
        ItemAccess::new("summarize", vec![20], vec![10, 11, 20]),
    ];
    let d = decompose(&observations).expect("decomposable");
    let hierarchy = Arc::new(d.hierarchy.clone());
    let store = Arc::new(MvStore::new());
    for item in [1u64, 2, 10, 11, 20] {
        store.seed(d.granule(item), Value::Int(0));
    }
    let sched = HddScheduler::new(
        hierarchy,
        store.clone(),
        Arc::new(LogicalClock::new()),
        HddConfig::default(),
    );

    // Run each observation shape a few times.
    for round in 0..5i64 {
        for obs in &observations {
            let class = d.class_of_item(obs.writes[0]);
            let read_segments: Vec<SegmentId> =
                obs.reads.iter().map(|i| d.segment_of_item[i]).collect();
            let write_segments: Vec<SegmentId> =
                obs.writes.iter().map(|i| d.segment_of_item[i]).collect();
            let t = sched.begin(&TxnProfile {
                class: Some(class),
                read_segments,
                write_segments,
            });
            for item in &obs.reads {
                assert!(
                    matches!(sched.read(&t, d.granule(*item)), ReadOutcome::Value(_)),
                    "read of item {item} failed"
                );
            }
            for item in &obs.writes {
                assert_eq!(
                    sched.write(&t, d.granule(*item), Value::Int(round)),
                    WriteOutcome::Done
                );
            }
            assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        }
    }
    assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    // Co-written items ended up in one segment and all cross reads were
    // free.
    assert_eq!(d.segment_of_item[&10], d.segment_of_item[&11]);
    assert!(sched.metrics().snapshot().cross_class_reads > 0);
}

#[test]
fn repartition_always_yields_runnable_hierarchies() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..50 {
        let n = rng.gen_range(2..10usize);
        let mut g = Digraph::new(n);
        for _ in 0..rng.gen_range(0..n * 2) {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_arc(u, v);
            }
        }
        let plan = repartition_to_tst(&g);
        assert!(is_transitive_semi_tree(&plan.contracted));
        // The grouping is dense over 0..n_classes.
        for c in 0..plan.n_classes {
            assert!(plan.group_of.iter().any(|x| x.index() == c));
        }
    }
}

#[test]
fn adaptive_restructure_under_concurrent_traffic() {
    // Tree 3 → 1 → 0 ← 2; run traffic, inject the diamond-forcing
    // shape mid-stream, keep running, then verify the combined log.
    let s = SegmentId;
    let specs = vec![
        AccessSpec::new("c0", vec![s(0)], vec![]),
        AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
        AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
        AccessSpec::new("c3", vec![s(3)], vec![s(1), s(0)]),
    ];
    let store = Arc::new(MvStore::new());
    for seg in 0..4u32 {
        for key in 0..4u64 {
            store.seed(GranuleId::new(s(seg), key), Value::Int(0));
        }
    }
    let core = SchedulerCore::new(store.clone(), Arc::new(LogicalClock::new()));
    let a = AdaptiveScheduler::new(4, specs, core, HddConfig::default()).unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let mut run_update = |a: &AdaptiveScheduler, seg: u32, reads: Vec<u32>| {
        let profile = TxnProfile {
            class: Some(ClassId(seg)),
            read_segments: reads.iter().map(|&r| s(r)).collect(),
            write_segments: vec![s(seg)],
        };
        let t = a.begin(&profile);
        let mut done = false;
        for _ in 0..200 {
            let mut progressed = true;
            for &r in &reads {
                let g = GranuleId::new(s(r), rng.gen_range(0..4));
                match a.read(&t, g) {
                    ReadOutcome::Value(_) => {}
                    ReadOutcome::Block => {
                        progressed = false;
                        a.maintenance();
                        break;
                    }
                    ReadOutcome::Abort => {
                        a.abort(&t);
                        return false;
                    }
                }
            }
            if !progressed {
                continue;
            }
            match a.write(
                &t,
                GranuleId::new(s(seg), rng.gen_range(0..4)),
                Value::Int(1),
            ) {
                WriteOutcome::Done => {}
                WriteOutcome::Block => {
                    a.maintenance();
                    continue;
                }
                WriteOutcome::Abort => {
                    a.abort(&t);
                    return false;
                }
            }
            match a.commit(&t) {
                CommitOutcome::Committed(_) => {
                    done = true;
                    break;
                }
                CommitOutcome::Block => a.maintenance(),
                CommitOutcome::Aborted => return false,
            }
        }
        assert!(done, "transaction did not finish");
        true
    };

    // Phase 1: normal traffic.
    for _ in 0..5 {
        run_update(&a, 1, vec![0]);
        run_update(&a, 2, vec![0]);
        run_update(&a, 3, vec![1, 0]);
    }
    // Phase 2: inject the ad-hoc shape.
    assert_eq!(
        a.submit_shape(AccessSpec::new("cross", vec![s(3)], vec![s(2), s(1), s(0)])),
        Ok(true)
    );
    // Phase 3: unaffected traffic only? The whole tree is one component
    // here, so everything is affected — traffic in class 0 parks until
    // the (immediate, nothing-running) switch.
    a.maintenance(); // switch
    assert!(!a.is_restructuring() || a.try_switch() || a.is_restructuring());
    // Phase 4: traffic under the new partition, including the ad-hoc
    // shape.
    let h = a.current_hierarchy();
    for _ in 0..5 {
        let t = a.begin(&TxnProfile {
            class: Some(h.class_of(s(3))),
            read_segments: vec![s(2), s(1), s(0)],
            write_segments: vec![s(3)],
        });
        for seg in [2u32, 1, 0] {
            assert!(matches!(
                a.read(&t, GranuleId::new(s(seg), 0)),
                ReadOutcome::Value(_)
            ));
        }
        assert_eq!(
            a.write(&t, GranuleId::new(s(3), 0), Value::Int(9)),
            WriteOutcome::Done
        );
        assert!(matches!(a.commit(&t), CommitOutcome::Committed(_)));
    }
    assert!(
        DependencyGraph::from_log(a.log()).is_serializable(),
        "combined pre/post-switch schedule must be serializable"
    );
}
