//! The classical anomaly scripts (lost update, dirty read, write skew)
//! against every baseline, checked through `depgraph::find_cycle` /
//! `serialization_order` and the offline certifier.

use certify::certifier::certify_log;
use certify::lint::lint_script;
use sim::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use sim::scripts::run_script;
use txn_model::DependencyGraph;
use workloads::anomalies::{
    dirty_read_script, lost_update_script, write_skew_script, AnomalyWorkload,
};
use workloads::script::Script;
use workloads::Workload;

/// Replay `script` on a fresh scheduler of `kind` (store seeded from the
/// script) and return the rebuilt dependency graph.
fn replay(kind: SchedulerKind, script: &Script) -> DependencyGraph {
    let (sched, store) = build_scheduler(kind, &AnomalyWorkload);
    for (g, v) in &script.setup {
        store.seed(*g, v.clone());
    }
    let _ = run_script(sched.as_ref(), script);
    DependencyGraph::from_log(sched.log())
}

#[test]
fn every_sound_baseline_serializes_lost_update_and_dirty_read() {
    for &kind in ALL_KINDS {
        for script in [lost_update_script(), dirty_read_script()] {
            let dg = replay(kind, &script);
            assert!(
                dg.find_cycle().is_none(),
                "{} admitted a cycle on {}",
                kind.name(),
                script.name
            );
            let order = dg
                .serialization_order()
                .expect("acyclic graph must topo-sort");
            // The order is a permutation of the graph's transactions and
            // respects every dependency arc (a depends on b ⇒ b first).
            for (a, b, _kinds) in dg.arcs() {
                let pa = order.iter().position(|t| *t == a);
                let pb = order.iter().position(|t| *t == b);
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    assert!(
                        pb < pa,
                        "{}: {:?} depends on {:?} but serializes first on {}",
                        kind.name(),
                        a,
                        b,
                        script.name
                    );
                }
            }
        }
    }
}

#[test]
fn write_skew_serializable_under_every_sound_baseline() {
    // Write skew is excluded for HDD (its profiles are illegal under
    // the anomaly hierarchy; the linter rejects them a priori).
    for &kind in ALL_KINDS {
        if kind == SchedulerKind::Hdd {
            continue;
        }
        let dg = replay(kind, &write_skew_script());
        assert!(
            dg.find_cycle().is_none(),
            "{} admitted write skew",
            kind.name()
        );
        assert!(dg.serialization_order().is_some());
    }
}

#[test]
fn nocontrol_admits_lost_update_and_write_skew_cycles() {
    for script in [lost_update_script(), write_skew_script()] {
        let dg = replay(SchedulerKind::NoControl, &script);
        let cycle = dg
            .find_cycle()
            .unwrap_or_else(|| panic!("nocontrol must admit {}", script.name));
        assert!(cycle.len() >= 2);
        assert!(dg.serialization_order().is_none());
    }
}

#[test]
fn certifier_catches_and_shrinks_every_nocontrol_anomaly() {
    // Dirty read is absent here: no-control buffers writes until commit,
    // so an aborted writer's version is never observable. The certifier's
    // dirty-read rule is exercised on synthetic logs in its unit tests.
    for script in [lost_update_script(), write_skew_script()] {
        let (sched, store) = build_scheduler(SchedulerKind::NoControl, &AnomalyWorkload);
        for (g, v) in &script.setup {
            store.seed(*g, v.clone());
        }
        let _ = run_script(sched.as_ref(), &script);
        let cert = certify_log("nocontrol", sched.log(), None);
        assert!(!cert.ok(), "certifier must flag nocontrol {}", script.name);
        let cx = cert
            .counterexample
            .as_ref()
            .unwrap_or_else(|| panic!("no counterexample for {}", script.name));
        assert!(
            cx.events.len() <= 10,
            "{}: counterexample must shrink to ≤10 events, got {}",
            script.name,
            cx.events.len()
        );
        assert!(
            cert.render().contains("violated rule"),
            "the certificate must name the violated rule"
        );
    }
}

#[test]
fn legal_scripts_lint_clean_and_write_skew_does_not() {
    let h = AnomalyWorkload.hierarchy();
    assert!(lint_script(&lost_update_script(), &h).ok());
    assert!(lint_script(&dirty_read_script(), &h).ok());
    assert!(!lint_script(&write_skew_script(), &h).ok());
}
