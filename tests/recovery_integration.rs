//! Crash recovery, end to end: run a real workload under HDD, crash at
//! arbitrary log prefixes, recover into a fresh store, and verify
//! atomicity and state equivalence independently of the recovery code.

use certify::certifier::certify_log;
use chaos::{run_chaos, ChaosRunConfig, FaultKind, FaultPlan};
use hdd::protocol::HddConfig;
use mvstore::{recover, MvStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_hdd_with_config, build_scheduler, SchedulerKind};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;
use txn_model::{
    decode_events, encode_events, GranuleId, ScheduleEvent, Scheduler, Timestamp, TxnId, Value,
};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Independent oracle: the expected latest committed value per granule
/// for a given log prefix.
fn expected_state(events: &[ScheduleEvent]) -> HashMap<GranuleId, (Timestamp, Value)> {
    let committed: std::collections::HashSet<TxnId> = events
        .iter()
        .filter_map(|e| match e {
            ScheduleEvent::Commit { txn, .. } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut state: HashMap<GranuleId, (Timestamp, Value)> = HashMap::new();
    for e in events {
        if let ScheduleEvent::Write {
            txn,
            granule,
            version,
            value,
        } = e
        {
            if committed.contains(txn) {
                let entry = state
                    .entry(*granule)
                    .or_insert((*version, (**value).clone()));
                if *version >= entry.0 {
                    *entry = (*version, (**value).clone());
                }
            }
        }
    }
    state
}

#[test]
fn recovery_at_any_crash_point_is_atomic_and_exact() {
    let mut w = Inventory::new(InventoryConfig {
        items: 8,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(61);
    let programs: Vec<_> = (0..120).map(|_| w.generate(&mut rng)).collect();
    let (sched, _live_store) = build_scheduler(SchedulerKind::Hdd, &w);
    let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    assert_eq!(stats.serializable, Some(true));

    let events = sched.log().events();
    assert!(events.len() > 100);

    // Crash at a spread of prefixes, including mid-transaction points.
    let points = [
        0,
        1,
        events.len() / 7,
        events.len() / 3,
        events.len() / 2,
        events.len() - 1,
        events.len(),
    ];
    for &crash in &points {
        let prefix = &events[..crash];
        let recovered = MvStore::new();
        w.seed(&recovered); // reload the initial image
        let report = recover(&recovered, prefix);

        let expected = expected_state(prefix);
        for (g, (_, v)) in &expected {
            assert_eq!(
                &recovered.latest_value(*g),
                v,
                "crash at {crash}: granule {g} diverged"
            );
        }
        // Atomicity: no value from an uncommitted transaction surfaced.
        // (expected_state only admits committed writers; equality above
        // plus this spot check on version counts covers it.)
        assert!(report.versions_installed >= expected.len());
    }
}

/// The full self-healing loop under the *concurrent* driver: a chaos
/// run crashes workers mid-transaction, the process "dies" leaving a
/// torn WAL tail, recovery rebuilds store + activity registry +
/// timestamp high-water mark, the workload resumes on the survivor,
/// and the stitched log certifies clean with no timestamp ever reused
/// across the crash boundary (Protocol B's safety condition).
#[test]
fn concurrent_crash_recover_resume_certifies() {
    let mut w = Inventory::new(InventoryConfig {
        items: 8,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(77);
    let programs: Vec<_> = (0..60).map(|_| w.generate(&mut rng)).collect();
    let config = HddConfig {
        txn_lease: Some(Duration::from_millis(5)),
        ..HddConfig::default()
    };
    let (sched, _store, hierarchy) = build_hdd_with_config(&w, config.clone());
    let mut plan = FaultPlan::clean(programs.len());
    plan.faults[5] = FaultKind::Crash { after_ops: 1 };
    plan.faults[20] = FaultKind::Crash { after_ops: 2 };
    let report = run_chaos(sched.as_ref(), programs, &plan, &ChaosRunConfig::default());
    assert_eq!(report.crashed, 2);
    assert_eq!(report.committed, 58);

    // "Kill the process": the schedule log is the WAL image, and the
    // crash tore its tail mid-frame.
    let events = sched.log().events();
    let mut wal = encode_events(&events);
    wal.truncate(wal.len() - 5);
    let (survivors, wal_report) = decode_events(&wal);
    assert!(wal_report.torn(), "truncation must be detected");
    assert!(
        survivors.len() < events.len(),
        "the torn record must not be replayed"
    );

    // Recover into a fresh store and resume the scheduler: settled
    // registry state rebuilt, in-flight transactions closed with
    // synthetic aborts, clock advanced past the high-water mark.
    let store = Arc::new(MvStore::new());
    w.seed(store.as_ref());
    let (resumed, resume_report) = hdd::resume(Arc::clone(&hierarchy), store, &survivors, config);
    let hwm = resume_report.recovery.high_water_mark;
    assert!(resume_report.resumes_after.0 > hwm.0);

    // Resume the workload under the concurrent driver.
    let phase2: Vec<_> = (0..40).map(|_| w.generate(&mut rng)).collect();
    let out = run_concurrent(&resumed, phase2, &ConcurrentConfig::default());
    assert_eq!(out.stats.committed, 40);
    assert_eq!(out.stats.serializable, Some(true), "{:?}", out.stats.cycle);

    // The stitched log — pre-crash prefix, synthetic aborts, resumed
    // phase — certifies clean under the partition-synchronization rule.
    let cert = certify_log("hdd", resumed.log(), Some(&hierarchy));
    assert!(cert.ok(), "{}", cert.render());

    // No timestamp collision across the crash boundary: every
    // begin/commit/abort tick in the stitched log is globally unique,
    // and every post-recovery transaction starts above the watermark.
    let stitched = resumed.log().events();
    let stamps: Vec<u64> = stitched
        .iter()
        .filter_map(|ev| match ev {
            ScheduleEvent::Begin { start_ts, .. } => Some(start_ts.0),
            ScheduleEvent::Commit { commit_ts, .. } => Some(commit_ts.0),
            ScheduleEvent::Abort { abort_ts, .. } => Some(abort_ts.0),
            _ => None,
        })
        .collect();
    let distinct: HashSet<u64> = stamps.iter().copied().collect();
    assert_eq!(distinct.len(), stamps.len(), "timestamp reused after crash");
    let prefix = survivors.len() + resume_report.in_flight_aborted;
    for ev in &stitched[prefix..] {
        if let ScheduleEvent::Begin { start_ts, .. } = ev {
            assert!(
                start_ts.0 > hwm.0,
                "post-recovery begin at {} is not above the watermark {}",
                start_ts.0,
                hwm.0
            );
        }
    }
}

#[test]
fn recovered_store_supports_time_slices() {
    // After recovery, historical reads still work (version history is
    // rebuilt with original timestamps).
    let mut w = Inventory::new(InventoryConfig {
        items: 2,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(62);
    let programs: Vec<_> = (0..60).map(|_| w.generate(&mut rng)).collect();
    let (sched, live_store) = build_scheduler(SchedulerKind::Hdd, &w);
    let _ = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    let events = sched.log().events();

    let recovered = MvStore::new();
    w.seed(&recovered);
    recover(&recovered, &events);

    // Latest values agree with the live store for every seeded granule.
    for item in 0..2 {
        let g = Inventory::inventory_level(item);
        assert_eq!(recovered.latest_value(g), live_store.latest_value(g));
        // And an arbitrary historical slice agrees too.
        let mid = Timestamp(50);
        assert_eq!(
            recovered.value_as_of(g, mid),
            live_store.value_as_of(g, mid)
        );
    }
}
