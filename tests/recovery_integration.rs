//! Crash recovery, end to end: run a real workload under HDD, crash at
//! arbitrary log prefixes, recover into a fresh store, and verify
//! atomicity and state equivalence independently of the recovery code.

use mvstore::{recover, MvStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use std::collections::HashMap;
use txn_model::{GranuleId, ScheduleEvent, Timestamp, TxnId, Value};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Independent oracle: the expected latest committed value per granule
/// for a given log prefix.
fn expected_state(events: &[ScheduleEvent]) -> HashMap<GranuleId, (Timestamp, Value)> {
    let committed: std::collections::HashSet<TxnId> = events
        .iter()
        .filter_map(|e| match e {
            ScheduleEvent::Commit { txn, .. } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut state: HashMap<GranuleId, (Timestamp, Value)> = HashMap::new();
    for e in events {
        if let ScheduleEvent::Write {
            txn,
            granule,
            version,
            value,
        } = e
        {
            if committed.contains(txn) {
                let entry = state
                    .entry(*granule)
                    .or_insert((*version, (**value).clone()));
                if *version >= entry.0 {
                    *entry = (*version, (**value).clone());
                }
            }
        }
    }
    state
}

#[test]
fn recovery_at_any_crash_point_is_atomic_and_exact() {
    let mut w = Inventory::new(InventoryConfig {
        items: 8,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(61);
    let programs: Vec<_> = (0..120).map(|_| w.generate(&mut rng)).collect();
    let (sched, _live_store) = build_scheduler(SchedulerKind::Hdd, &w);
    let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    assert_eq!(stats.serializable, Some(true));

    let events = sched.log().events();
    assert!(events.len() > 100);

    // Crash at a spread of prefixes, including mid-transaction points.
    let points = [
        0,
        1,
        events.len() / 7,
        events.len() / 3,
        events.len() / 2,
        events.len() - 1,
        events.len(),
    ];
    for &crash in &points {
        let prefix = &events[..crash];
        let recovered = MvStore::new();
        w.seed(&recovered); // reload the initial image
        let report = recover(&recovered, prefix);

        let expected = expected_state(prefix);
        for (g, (_, v)) in &expected {
            assert_eq!(
                &recovered.latest_value(*g),
                v,
                "crash at {crash}: granule {g} diverged"
            );
        }
        // Atomicity: no value from an uncommitted transaction surfaced.
        // (expected_state only admits committed writers; equality above
        // plus this spot check on version counts covers it.)
        assert!(report.versions_installed >= expected.len());
    }
}

#[test]
fn recovered_store_supports_time_slices() {
    // After recovery, historical reads still work (version history is
    // rebuilt with original timestamps).
    let mut w = Inventory::new(InventoryConfig {
        items: 2,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(62);
    let programs: Vec<_> = (0..60).map(|_| w.generate(&mut rng)).collect();
    let (sched, live_store) = build_scheduler(SchedulerKind::Hdd, &w);
    let _ = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    let events = sched.log().events();

    let recovered = MvStore::new();
    w.seed(&recovered);
    recover(&recovered, &events);

    // Latest values agree with the live store for every seeded granule.
    for item in 0..2 {
        let g = Inventory::inventory_level(item);
        assert_eq!(recovered.latest_value(g), live_store.latest_value(g));
        // And an arbitrary historical slice agrees too.
        let mid = Timestamp(50);
        assert_eq!(
            recovered.value_as_of(g, mid),
            live_store.value_as_of(g, mid)
        );
    }
}
