//! Conservation under transfers: a classic end-to-end invariant. Every
//! serializable scheduler must conserve the total balance across
//! two-account transfers under both drivers; no-control must break it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use txn_model::TxnProgram;
use workloads::banking::{Banking, INITIAL_BALANCE};
use workloads::Workload;

fn transfer_batch(accounts: u64, n: usize, seed: u64) -> (Banking, Vec<TxnProgram>) {
    let mut w = Banking::transfers(accounts);
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

#[test]
fn all_sound_schedulers_conserve_money_interleaved() {
    for &kind in ALL_KINDS {
        let (w, programs) = transfer_batch(6, 150, 71);
        let (sched, store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.serializable, Some(true), "{}", kind.name());
        assert_eq!(stats.stalled, 0, "{}", kind.name());
        assert_eq!(
            w.total_balance(store.as_ref()),
            6 * INITIAL_BALANCE,
            "{} lost or created money",
            kind.name()
        );
    }
}

#[test]
fn hdd_and_locking_conserve_money_concurrently() {
    for kind in [
        SchedulerKind::Hdd,
        SchedulerKind::TwoPl,
        SchedulerKind::Mvto,
    ] {
        let (w, programs) = transfer_batch(6, 200, 72);
        let (sched, store) = build_scheduler(kind, &w);
        let out = run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
        assert_eq!(out.stats.serializable, Some(true), "{}", kind.name());
        // 2PL may exhaust retry budgets in upgrade-deadlock storms
        // (transfers S-lock both accounts then upgrade); a given-up
        // transfer aborts atomically, so conservation must hold
        // regardless.
        assert_eq!(
            out.stats.committed + out.stats.gave_up,
            200,
            "{}",
            kind.name()
        );
        assert_eq!(
            w.total_balance(store.as_ref()),
            6 * INITIAL_BALANCE,
            "{} lost or created money under threads",
            kind.name()
        );
    }
}

#[test]
fn nocontrol_violates_conservation() {
    // Enough concurrent transfers over few hot accounts that at least
    // one lost update hits.
    let (w, programs) = transfer_batch(2, 120, 73);
    let (sched, store) = build_scheduler(SchedulerKind::NoControl, &w);
    let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    assert_eq!(stats.committed, 120);
    assert_ne!(
        w.total_balance(store.as_ref()),
        2 * INITIAL_BALANCE,
        "no-control should break conservation on hot accounts"
    );
}
