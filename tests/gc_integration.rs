//! Garbage collection under load: versions and activity history stay
//! bounded while correctness is preserved (Section 7.3's implementation
//! concerns: "maintaining multiple versions ... and garbage collection").

use hdd::protocol::HddConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::build_hdd_with_config;
use txn_model::Scheduler;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

#[test]
fn gc_bounds_version_growth_without_breaking_serializability() {
    let mut w = Inventory::new(InventoryConfig {
        items: 8,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(31);
    let programs: Vec<_> = (0..300).map(|_| w.generate(&mut rng)).collect();

    // Aggressive GC.
    let (sched, store, _h) = build_hdd_with_config(
        &w,
        HddConfig {
            gc_interval: 4,
            wall_interval: 8,
            ..HddConfig::default()
        },
    );
    let stats = run_interleaved(sched.as_ref(), programs.clone(), &DriverConfig::default());
    assert_eq!(stats.serializable, Some(true), "cycle: {:?}", stats.cycle);
    assert_eq!(stats.stalled, 0);
    let gced = stats.metrics.versions_gced;
    assert!(gced > 0, "aggressive GC must reclaim something");
    let with_gc_versions = store.version_count();

    // No GC at all.
    let (sched2, store2, _h) = build_hdd_with_config(
        &w,
        HddConfig {
            gc_interval: 0,
            wall_interval: 8,
            ..HddConfig::default()
        },
    );
    let stats2 = run_interleaved(sched2.as_ref(), programs, &DriverConfig::default());
    assert_eq!(stats2.serializable, Some(true));
    let without_gc_versions = store2.version_count();

    assert!(
        with_gc_versions < without_gc_versions,
        "GC must keep fewer versions ({with_gc_versions} vs {without_gc_versions})"
    );
    // Activity history pruned too.
    assert!(sched.registry().interval_count() <= sched2.registry().interval_count());
}

#[test]
fn gc_never_reclaims_what_a_pinned_reader_needs() {
    // A long-lived read-only transaction pins its wall floor; GC runs
    // underneath; the reader still gets consistent values.
    use txn_model::{GranuleId, ReadOutcome, SegmentId, TxnProfile, Value};
    use workloads::inventory::Inventory as Inv;

    let w = Inventory::new(InventoryConfig {
        items: 2,
        ..InventoryConfig::default()
    });
    let (sched, _store, _h) = build_hdd_with_config(
        &w,
        HddConfig {
            gc_interval: 1, // GC at every maintenance tick
            wall_interval: 1,
            ..HddConfig::default()
        },
    );
    // Release a wall, pin an audit to it.
    sched.maintenance();
    assert!(sched.walls().released_count() > 0);
    let audit = sched.begin(&TxnProfile::read_only(vec![SegmentId(1), SegmentId(4)]));
    let first = match sched.read(&audit, Inv::inventory_level(0)) {
        ReadOutcome::Value(v) => v,
        other => panic!("{other:?}"),
    };

    // Heavy update traffic + constant GC.
    for i in 0..50i64 {
        let t = sched.begin(&TxnProfile::update(
            txn_model::ClassId(1),
            vec![SegmentId(0), SegmentId(1)],
        ));
        sched.read(&t, Inv::inventory_level(0));
        sched.write(&t, Inv::inventory_level(0), Value::Int(1000 + i));
        sched.commit(&t);
        sched.maintenance();
    }

    // The pinned reader re-reads: same snapshot, despite 50 newer
    // versions and GC at every tick.
    match sched.read(&audit, Inv::inventory_level(0)) {
        ReadOutcome::Value(v) => assert_eq!(v, first, "snapshot must be stable under GC"),
        other => panic!("{other:?}"),
    }
    // It can also read a granule it never touched before.
    match sched.read(&audit, Inv::accounting(0)) {
        ReadOutcome::Value(_) => {}
        other => panic!("{other:?}"),
    }
    sched.commit(&audit);
    let _ = GranuleId::new(SegmentId(0), 0);
}
