//! Cross-crate integration: every scheduler × every workload × both
//! drivers, always ending in a serializability check of the recorded
//! schedule (the paper's own correctness criterion).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use txn_model::TxnProgram;
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

fn programs_of(w: &mut dyn Workload, n: usize, seed: u64) -> Vec<TxnProgram> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| w.generate(&mut rng)).collect()
}

#[test]
fn interleaved_all_schedulers_all_workloads() {
    for &kind in ALL_KINDS {
        // Banking.
        let mut w = Banking::new(6);
        let programs = programs_of(&mut w, 80, 1);
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.serializable, Some(true), "{} banking", kind.name());
        assert_eq!(stats.stalled, 0, "{} banking stalled", kind.name());

        // Inventory.
        let mut w = Inventory::new(InventoryConfig {
            items: 16,
            ..InventoryConfig::default()
        });
        let programs = programs_of(&mut w, 120, 2);
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.serializable, Some(true), "{} inventory", kind.name());
        assert_eq!(stats.stalled, 0, "{} inventory stalled", kind.name());

        // Synthetic tree.
        let mut w = Synthetic::new(SyntheticConfig {
            depth: 3,
            fanout: 2,
            granules_per_segment: 32,
            ..SyntheticConfig::default()
        });
        let programs = programs_of(&mut w, 120, 3);
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.serializable, Some(true), "{} synthetic", kind.name());
        assert_eq!(stats.stalled, 0, "{} synthetic stalled", kind.name());
    }
}

#[test]
fn interleaved_many_seeds_hdd_inventory() {
    // Theorem 1+2, empirically: many interleavings, always acyclic.
    for seed in 0..12u64 {
        let mut w = Inventory::new(InventoryConfig {
            items: 8,
            ..InventoryConfig::default()
        });
        let programs = programs_of(&mut w, 100, 100 + seed);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = DriverConfig {
            seed,
            ..DriverConfig::default()
        };
        let stats = run_interleaved(sched.as_ref(), programs, &cfg);
        assert_eq!(
            stats.serializable,
            Some(true),
            "seed {seed} cycle {:?}",
            stats.cycle
        );
        assert_eq!(stats.stalled, 0);
        assert_eq!(stats.gave_up, 0);
    }
}

#[test]
fn concurrent_hdd_and_baselines_on_synthetic() {
    for kind in [
        SchedulerKind::Hdd,
        SchedulerKind::Mv2pl,
        SchedulerKind::Mvto,
    ] {
        let mut w = Synthetic::new(SyntheticConfig {
            depth: 3,
            fanout: 2,
            granules_per_segment: 64,
            ..SyntheticConfig::default()
        });
        let programs = programs_of(&mut w, 200, 9);
        let (sched, _store) = build_scheduler(kind, &w);
        let out = run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
        assert_eq!(
            out.stats.serializable,
            Some(true),
            "{} concurrent cycle {:?}",
            kind.name(),
            out.stats.cycle
        );
        assert_eq!(out.stats.gave_up, 0, "{}", kind.name());
        assert_eq!(out.stats.committed, 200, "{}", kind.name());
    }
}

#[test]
fn hdd_cross_class_reads_never_block_under_load() {
    // The headline liveness claim of Protocol A: no matter the
    // concurrent update traffic, a cross-class read is served at once.
    let mut w = Inventory::new(InventoryConfig {
        items: 4, // hot items → plenty of concurrent writers
        w_report: 20,
        w_audit: 0, // only on-chain read-only traffic (audits may wait
        // once for the first wall)
        ..InventoryConfig::default()
    });
    let programs = programs_of(&mut w, 250, 77);
    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
    let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    assert_eq!(stats.serializable, Some(true));
    // Blocks may occur in Protocol B (reader of a pending same-class
    // version) but cross-class reads contribute none. We can't separate
    // per-protocol blocks in the aggregate, so assert the strong
    // workload-level property: with report-only read-only traffic the
    // unregistered reads outnumber blocks by a wide margin.
    assert!(stats.metrics.cross_class_reads > 0);
}

#[test]
fn metrics_are_consistent_after_runs() {
    let mut w = Banking::new(4);
    let programs = programs_of(&mut w, 60, 5);
    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
    let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    let m = &stats.metrics;
    assert_eq!(m.commits as usize, stats.committed);
    assert_eq!(
        m.begins as usize,
        stats.committed + stats.restarts + stats.gave_up
    );
    assert!(m.reads >= m.read_registrations);
}
