//! Property-based tests of the paper's formal claims.
//!
//! * Theorems 1 & 2 — every HDD schedule over a random TST hierarchy,
//!   random programs and a random interleaving has an acyclic
//!   multi-version dependency graph;
//! * Properties 2.1 & 2.2 — `A(B(m)) ≥ m` and `A(B(m) − ε) < m` over
//!   random activity histories;
//! * Property 1.1/1.2 — `⇒` is anti-symmetric and critical-path
//!   transitive over random histories and time grids;
//! * graph laws — reduction preserves reachability; semi-tree unique
//!   undirected paths; TST ⇒ every DHG arc is covered by a critical
//!   path.
//!
//! Cases are drawn from a seeded RNG in a plain loop (the environment
//! has no crates.io access, so `proptest` is unavailable); each
//! assertion failure reports the case index, from which the full case
//! regenerates deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hdd::activity::{topologically_follows, ActivityFuncs, ActivityRegistry, CLate, TxnCoord};
use hdd::analysis::{AccessSpec, Hierarchy};
use hdd::graph::{check_transitive_semi_tree, Digraph};
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use txn_model::{ClassId, SegmentId, Timestamp};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

/// A random activity history for `classes` classes: `(class, start,
/// dur, committed)` rows with starts and durations drawn small to force
/// overlap. All transactions end (so `C_late` is computable everywhere).
fn random_history(rng: &mut StdRng, classes: usize) -> Vec<(usize, u64, u64, bool)> {
    let len = rng.gen_range(1..25usize);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..classes),
                rng.gen_range(1u64..60),
                rng.gen_range(1u64..25),
                rng.gen_bool(0.5),
            )
        })
        .collect()
}

fn build_registry(classes: usize, history: &[(usize, u64, u64, bool)]) -> ActivityRegistry {
    let registry = ActivityRegistry::new(classes);
    // Starts must be unique: offset duplicates deterministically.
    let mut used = std::collections::HashSet::new();
    for (i, &(class, start, dur, committed)) in history.iter().enumerate() {
        let mut s = start * 100 + i as u64; // unique-ify
        while !used.insert(s) {
            s += 1;
        }
        let class = ClassId(class as u32);
        registry.begin(class, Timestamp(s));
        let end = Timestamp(s + dur * 100);
        if committed {
            registry.commit(class, Timestamp(s), end);
        } else {
            registry.abort(class, Timestamp(s), end);
        }
    }
    registry
}

fn chain(depth: usize) -> Hierarchy {
    let specs: Vec<AccessSpec> = (0..depth)
        .map(|i| {
            let reads: Vec<SegmentId> = (0..i).map(|j| SegmentId(j as u32)).collect();
            AccessSpec::new(format!("c{i}"), vec![SegmentId(i as u32)], reads)
        })
        .collect();
    Hierarchy::build(depth, &specs).unwrap()
}

/// Property 2.1 and 2.2 over random (fully ended) histories.
#[test]
fn a_b_inverse_properties() {
    let mut rng = StdRng::seed_from_u64(0xA1B2);
    for case in 0..64 {
        let history = random_history(&mut rng, 3);
        let m = Timestamp(rng.gen_range(1u64..8000));
        let h = chain(3);
        let registry = build_registry(3, &history);
        let funcs = ActivityFuncs::new(&h, &registry);
        let low = ClassId(2);
        let top = ClassId(0);
        if let CLate::Time(b) = funcs.b_fn(top, low, m) {
            assert!(
                funcs.a_fn(low, top, b) >= m,
                "case {case}: Property 2.1: A(B({m})) = A({b}) < {m}"
            );
            if b > Timestamp::ZERO {
                assert!(
                    funcs.a_fn(low, top, b.pred()) < m,
                    "case {case}: Property 2.2: A(B({m}) - ε) >= {m}"
                );
            }
        }
    }
}

/// I_old never exceeds its argument; C_late never undercuts it.
#[test]
fn i_old_c_late_bounds() {
    let mut rng = StdRng::seed_from_u64(0x10CB);
    for case in 0..64 {
        let history = random_history(&mut rng, 2);
        let m = Timestamp(rng.gen_range(1u64..8000));
        let registry = build_registry(2, &history);
        for c in 0..2u32 {
            assert!(
                registry.i_old(ClassId(c), m) <= m,
                "case {case}: I_old overshoots"
            );
            if let CLate::Time(t) = registry.c_late(ClassId(c), m) {
                assert!(t >= m, "case {case}: C_late undercuts");
            }
        }
    }
}

/// Property 1.1 (anti-symmetry) and 1.2 (transitivity on a critical
/// path) of ⇒ over random histories.
#[test]
fn follows_properties() {
    let mut rng = StdRng::seed_from_u64(0xF011);
    for case in 0..64 {
        let history = random_history(&mut rng, 3);
        let times: Vec<u64> = (0..3).map(|_| rng.gen_range(1u64..5000)).collect();
        let h = chain(3);
        let registry = build_registry(3, &history);
        let funcs = ActivityFuncs::new(&h, &registry);
        let t1 = TxnCoord::new(ClassId(2), Timestamp(times[0]));
        let t2 = TxnCoord::new(ClassId(1), Timestamp(times[1]));
        let t3 = TxnCoord::new(ClassId(0), Timestamp(times[2]));
        for (a, b) in [(t1, t2), (t2, t3), (t1, t3)] {
            let ab = topologically_follows(&funcs, a, b).unwrap();
            let ba = topologically_follows(&funcs, b, a).unwrap();
            assert!(
                !(ab && ba),
                "case {case}: anti-symmetry violated: {a:?} {b:?}"
            );
        }
        let ab = topologically_follows(&funcs, t1, t2).unwrap();
        let bc = topologically_follows(&funcs, t2, t3).unwrap();
        if ab && bc {
            assert!(
                topologically_follows(&funcs, t1, t3).unwrap(),
                "case {case}: transitivity violated"
            );
        }
    }
}

/// Data-analysis decomposition (Section 7.2.2) always yields a legal
/// hierarchy under which every observed shape validates.
#[test]
fn decompose_always_legalizes() {
    use hdd::decompose::{decompose, ItemAccess};
    let mut rng = StdRng::seed_from_u64(0xDEC0);
    for case in 0..64 {
        let n_shapes = rng.gen_range(1..8usize);
        let accesses: Vec<(Vec<u64>, Vec<u64>)> = (0..n_shapes)
            .map(|_| {
                let nw = rng.gen_range(1..3usize);
                let nr = rng.gen_range(0..4usize);
                (
                    (0..nw).map(|_| rng.gen_range(0u64..12)).collect(),
                    (0..nr).map(|_| rng.gen_range(0u64..12)).collect(),
                )
            })
            .collect();
        let shapes: Vec<ItemAccess> = accesses
            .iter()
            .enumerate()
            .map(|(i, (w, r))| ItemAccess::new(format!("s{i}"), w.clone(), r.clone()))
            .collect();
        let d = decompose(&shapes).expect("non-empty write sets always decompose");
        for shape in &shapes {
            let class = d.class_of_item(shape.writes[0]);
            let profile = txn_model::TxnProfile {
                class: Some(class),
                read_segments: shape.reads.iter().map(|i| d.segment_of_item[i]).collect(),
                write_segments: shape.writes.iter().map(|i| d.segment_of_item[i]).collect(),
            };
            assert!(
                d.hierarchy.validate_profile(&profile).is_ok(),
                "case {case}: shape {:?} must validate under the derived hierarchy",
                shape.name
            );
        }
    }
}

/// Transitive reduction preserves the closure; the reduction of a
/// TST is a semi-tree whose closure covers every original arc.
#[test]
fn reduction_laws() {
    let mut rng = StdRng::seed_from_u64(0x4EDC);
    for case in 0..64 {
        let n_arcs = rng.gen_range(0..20usize);
        // Arcs forced downward (u > v) to guarantee a DAG.
        let mut g = Digraph::new(8);
        for _ in 0..n_arcs {
            let a = rng.gen_range(0..8usize);
            let b = rng.gen_range(0..8usize);
            if a != b {
                let (u, v) = if a > b { (a, b) } else { (b, a) };
                g.add_arc(u, v);
            }
        }
        let r = g.transitive_reduction();
        assert_eq!(
            r.transitive_closure().arcs(),
            g.transitive_closure().arcs(),
            "case {case}: reduction changed the closure"
        );
        if let Ok(red) = check_transitive_semi_tree(&g) {
            // Every arc of a TST is covered by a critical path.
            let cover = red.transitive_closure();
            for (u, v) in g.arcs() {
                assert!(
                    cover.has_arc(u, v),
                    "case {case}: arc ({u},{v}) not covered"
                );
            }
        }
    }
}

/// Theorem 1 + Theorem 2, end to end: random tree hierarchies, random
/// programs (updates + on/off-chain read-only), random interleavings —
/// the HDD schedule is always serializable.
#[test]
fn hdd_schedules_are_always_serializable() {
    let mut rng = StdRng::seed_from_u64(0x7EE1);
    for case in 0..12 {
        let depth = rng.gen_range(1usize..4);
        let fanout = rng.gen_range(1usize..3);
        let ro_share = 0.6 * rng.gen::<f64>();
        let wl_seed = rng.gen_range(0u64..10_000);
        let drv_seed = rng.gen_range(0u64..10_000);
        let mut w = Synthetic::new(SyntheticConfig {
            depth,
            fanout,
            granules_per_segment: 12, // hot granules → real conflicts
            read_only_share: ro_share,
            off_chain_share: 0.5,
            theta: 1.0,
            ..SyntheticConfig::default()
        });
        let mut wl_rng = StdRng::seed_from_u64(wl_seed);
        let programs: Vec<_> = (0..60).map(|_| w.generate(&mut wl_rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = DriverConfig {
            seed: drv_seed,
            ..DriverConfig::default()
        };
        let stats = run_interleaved(sched.as_ref(), programs, &cfg);
        assert_eq!(
            stats.stalled, 0,
            "case {case}: stalled under seed {drv_seed}"
        );
        assert_eq!(
            stats.serializable,
            Some(true),
            "case {case}: Theorem 1/2 violated: cycle {:?}",
            stats.cycle
        );
    }
}

/// A serialization order extracted from an acyclic dependency graph
/// places every transaction after everything it depends on.
#[test]
fn serialization_order_respects_dependencies() {
    use txn_model::DependencyGraph;
    let mut rng = StdRng::seed_from_u64(0x5E41);
    for case in 0..12 {
        let wl_seed = rng.gen_range(0u64..10_000);
        let drv_seed = rng.gen_range(0u64..10_000);
        let mut w = Synthetic::new(SyntheticConfig {
            depth: 3,
            fanout: 2,
            granules_per_segment: 8,
            ..SyntheticConfig::default()
        });
        let mut wl_rng = StdRng::seed_from_u64(wl_seed);
        let programs: Vec<_> = (0..40).map(|_| w.generate(&mut wl_rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = DriverConfig {
            seed: drv_seed,
            ..DriverConfig::default()
        };
        let _ = run_interleaved(sched.as_ref(), programs, &cfg);
        let dg = DependencyGraph::from_log(sched.log());
        let order = dg.serialization_order().expect("HDD schedules are acyclic");
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for &t in dg.transactions() {
            for d in dg.depends_on(t) {
                assert!(
                    pos[&d] < pos[&t],
                    "case {case}: {d:?} must precede {t:?} in the serialization order"
                );
            }
        }
    }
}

/// The same end-to-end guarantee for the dependency checker's other
/// customers: MVTO and MV2PL runs must also verify (checker is not
/// HDD-specific).
#[test]
fn baseline_schedules_verify_too() {
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    for case in 0..12 {
        let kind = [SchedulerKind::Mvto, SchedulerKind::Mv2pl][rng.gen_range(0usize..2)];
        let wl_seed = rng.gen_range(0u64..10_000);
        let mut w = Synthetic::new(SyntheticConfig {
            depth: 2,
            fanout: 2,
            granules_per_segment: 10,
            ..SyntheticConfig::default()
        });
        let mut wl_rng = StdRng::seed_from_u64(wl_seed);
        let programs: Vec<_> = (0..50).map(|_| w.generate(&mut wl_rng)).collect();
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(
            stats.serializable,
            Some(true),
            "case {case}: {} cycle {:?}",
            kind.name(),
            stats.cycle
        );
    }
}
