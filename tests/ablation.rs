//! Ablation correctness: every configuration the benches sweep must
//! stay serializable and live; the qualitative trade-offs must point the
//! documented way.

use hdd::protocol::{HddConfig, ProtocolBMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::build_hdd_with_config;
use txn_model::TxnProgram;
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

fn inventory_batch(n: usize, seed: u64) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 16,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

#[test]
fn both_protocol_b_modes_serialize_and_basic_to_rejects_more() {
    let mut results = Vec::new();
    for mode in [ProtocolBMode::Mvto, ProtocolBMode::BasicTo] {
        let (w, programs) = inventory_batch(250, 41);
        let (sched, _store, _h) = build_hdd_with_config(
            &w,
            HddConfig {
                protocol_b: mode,
                ..HddConfig::default()
            },
        );
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(
            stats.serializable,
            Some(true),
            "{mode:?}: {:?}",
            stats.cycle
        );
        assert_eq!(stats.stalled, 0, "{mode:?}");
        results.push((mode, stats.metrics.rejections));
    }
    // MVTO never rejects reads; basic TO rejects reads of granules
    // overwritten by younger transactions. Same workload, same seeds:
    // basic TO must reject at least as often.
    let (_, mvto_rej) = results[0];
    let (_, basic_rej) = results[1];
    assert!(
        basic_rej >= mvto_rej,
        "basic TO ({basic_rej}) must reject at least as much as MVTO ({mvto_rej})"
    );
}

#[test]
fn gc_intervals_all_serialize_and_bound_versions() {
    let mut counts = Vec::new();
    for gc_interval in [0u64, 64, 8] {
        let mut w = Banking::new(4);
        let mut rng = StdRng::seed_from_u64(42);
        let programs: Vec<_> = (0..300).map(|_| w.generate(&mut rng)).collect();
        let (sched, store, _h) = build_hdd_with_config(
            &w,
            HddConfig {
                gc_interval,
                ..HddConfig::default()
            },
        );
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.serializable, Some(true), "gc={gc_interval}");
        counts.push((gc_interval, store.version_count()));
    }
    let versions_of = |g: u64| counts.iter().find(|(i, _)| *i == g).unwrap().1;
    assert!(versions_of(8) <= versions_of(64));
    assert!(versions_of(64) < versions_of(0));
}

#[test]
fn every_admission_window_serializes() {
    for window in [1usize, 4, 16, 64, 0 /* unlimited */] {
        let (w, programs) = inventory_batch(150, 43);
        let (sched, _store, _h) = build_hdd_with_config(&w, HddConfig::default());
        let cfg = DriverConfig {
            concurrency: window,
            ..DriverConfig::default()
        };
        let stats = run_interleaved(sched.as_ref(), programs, &cfg);
        assert_eq!(stats.serializable, Some(true), "window={window}");
        assert_eq!(stats.stalled, 0, "window={window}");
        assert_eq!(stats.committed + stats.gave_up, 150, "window={window}");
    }
}
