//! Small-model checks of the HDD workspace's lock-free/striped core.
//!
//! Each model routes *production* structures (routed through `mc::sync`)
//! through the checker and explores every interleaving at 2–3 threads.
//! Two families:
//!
//! * **Invariant models** — Protocol A's `I_old` immutability, time-wall
//!   monotonicity, schedule-log ticket density, gauge tear-freedom,
//!   span-ring accounting — must hold in every interleaving
//!   (`assert_clean`, `complete`).
//! * **Race regression models** — the two PR-1 Protocol A races
//!   (initiation/termination timestamps drawn *outside* the class lock)
//!   re-expressed against the public registry API. The checker must find
//!   the failing interleaving (`assert_fails`), proving it would have
//!   caught the original bugs; the fixed `begin_with`/`end_with` paths
//!   must be clean.
//!
//! Run with `RUSTFLAGS="--cfg mc" cargo test -p mc`.
#![cfg(mc)]

use hdd::activity::{ActivityFuncs, ActivityRegistry};
use hdd::{AccessSpec, Hierarchy, TimeWallService};
use mc::{check, Config};
use obs::{FlightRecorder, GaugeBoard, SpanEvent, TraceEvent, TraceRing};
use std::sync::Arc;
use txn_model::{ClassId, LogicalClock, ScheduleEvent, ScheduleLog, SegmentId, Timestamp, TxnId};

const C0: ClassId = ClassId(0);

/// Protocol A, begin side, **fixed logic** (`begin_with`: the initiation
/// timestamp is drawn inside the class lock): for any fixed `m ≤ now`,
/// two evaluations of `I_old(m)` racing a concurrent begin+end must
/// agree — `I_old` is an immutable function of `m`. Explored
/// exhaustively at 2 threads; the report must prove exhaustion and
/// count the interleavings (the ISSUE acceptance criterion).
#[test]
fn registry_i_old_immutable_at_fixed_m_with_begin_with() {
    let report = check(Config::exhaustive(), || {
        let clock = Arc::new(LogicalClock::new());
        let reg = Arc::new(ActivityRegistry::new(1));
        let (c2, r2) = (Arc::clone(&clock), Arc::clone(&reg));
        let t = mc::thread::spawn(move || {
            let s = r2.begin_with(C0, || c2.tick());
            r2.end_with(C0, s, true, || c2.tick());
        });
        // Fix an evaluation point at or below "now" and evaluate twice.
        let m = clock.tick();
        let first = reg.i_old(C0, m);
        let second = reg.i_old(C0, m);
        assert_eq!(first, second, "I_old shifted at fixed m={m}");
        t.join().unwrap();
        // After quiescence the history is exact: nothing can be active
        // at a time at or above every end.
        let late = Timestamp(clock.now().raw() + 1);
        assert_eq!(reg.i_old(C0, late), late);
    });
    report.assert_clean("i_old_immutable");
    assert!(report.complete, "2-thread registry model must exhaust");
    assert!(
        report.executions >= 2,
        "expected multiple interleavings, got {}",
        report.executions
    );
    println!(
        "registry I_old model: {} interleavings explored exhaustively (max depth {})",
        report.executions, report.max_depth
    );
}

/// PR-1 race regression, begin side: the **pre-fix logic** drew the
/// initiation timestamp *outside* the class lock (tick, then insert as
/// two separate steps). A bound evaluation between the tick and the
/// insert sees `I_old(m) = m`, then the insert surfaces a start below
/// `m` — the bound shifted. The checker must find that interleaving.
#[test]
fn registry_begin_racy_tick_outside_lock_is_caught() {
    let report = check(Config::exhaustive(), || {
        let clock = Arc::new(LogicalClock::new());
        let reg = Arc::new(ActivityRegistry::new(1));
        let (c2, r2) = (Arc::clone(&clock), Arc::clone(&reg));
        let t = mc::thread::spawn(move || {
            // Inverted fix: the tick escapes the class lock.
            let start = c2.tick();
            r2.begin(C0, start);
        });
        let m = clock.tick();
        let first = reg.i_old(C0, m);
        let second = reg.i_old(C0, m);
        assert_eq!(first, second, "I_old shifted at fixed m={m}");
        t.join().unwrap();
    });
    let f = report.assert_fails("begin_racy");
    assert!(f.message.contains("I_old shifted"), "wrong failure:\n{f}");
}

/// PR-1 race regression, end side: the pre-fix logic drew the
/// termination timestamp outside the class lock. In the race window the
/// transaction has ended (its end timestamp is below `m`) but the
/// registry still reports it running, so `I_old(m)` evaluates low, then
/// high once the end lands. `end_with` (tick under the lock) is the fix;
/// this double must fail.
#[test]
fn registry_end_racy_tick_outside_lock_is_caught() {
    let report = check(Config::exhaustive(), || {
        let clock = Arc::new(LogicalClock::new());
        let reg = Arc::new(ActivityRegistry::new(1));
        let start = reg.begin_with(C0, || clock.tick());
        let (c2, r2) = (Arc::clone(&clock), Arc::clone(&reg));
        let t = mc::thread::spawn(move || {
            // Inverted fix: the end tick escapes the class lock.
            let end = c2.tick();
            r2.commit(C0, start, end);
        });
        let m = clock.tick();
        let first = reg.i_old(C0, m);
        let second = reg.i_old(C0, m);
        assert_eq!(first, second, "I_old shifted at fixed m={m}");
        t.join().unwrap();
    });
    let f = report.assert_fails("end_racy");
    assert!(f.message.contains("I_old shifted"), "wrong failure:\n{f}");
}

/// The fixed end path (`end_with`) under the same schedule shape is
/// clean: drawing the end tick under the class lock closes the window.
#[test]
fn registry_end_with_is_clean() {
    let report = check(Config::exhaustive(), || {
        let clock = Arc::new(LogicalClock::new());
        let reg = Arc::new(ActivityRegistry::new(1));
        let start = reg.begin_with(C0, || clock.tick());
        let (c2, r2) = (Arc::clone(&clock), Arc::clone(&reg));
        let t = mc::thread::spawn(move || {
            r2.end_with(C0, start, true, || c2.tick());
        });
        let m = clock.tick();
        let first = reg.i_old(C0, m);
        let second = reg.i_old(C0, m);
        assert_eq!(first, second, "I_old shifted at fixed m={m}");
        t.join().unwrap();
    });
    report.assert_clean("end_with_clean");
    assert!(report.complete);
}

/// Time-wall service invariants under a concurrent update transaction:
/// every released wall's floor is at or above its anchor time
/// (`E_s^i(m) ≥ m` because `C_late(m) ≥ m`), release timestamps are
/// strictly monotone, and the reader contract
/// (`latest_released_before(start).released_at < start`) holds.
#[test]
fn timewall_floor_and_release_monotonicity() {
    let report = check(Config::exhaustive(), || {
        let h = Hierarchy::build(1, &[AccessSpec::new("c0", vec![SegmentId(0)], vec![])]).unwrap();
        let clock = Arc::new(LogicalClock::new());
        let reg = Arc::new(ActivityRegistry::new(1));
        let svc = Arc::new(TimeWallService::new());
        let (c2, r2) = (Arc::clone(&clock), Arc::clone(&reg));
        let t = mc::thread::spawn(move || {
            let s = r2.begin_with(C0, || c2.tick());
            r2.end_with(C0, s, true, || c2.tick());
        });
        let funcs = ActivityFuncs::new(&h, &reg);
        for _ in 0..2 {
            let now = clock.tick();
            if let Some(w) = svc.try_release(&h, &funcs, now, || clock.tick()) {
                assert!(
                    w.floor() >= w.anchor_time,
                    "wall floor {} below anchor {}",
                    w.floor(),
                    w.anchor_time
                );
            }
        }
        t.join().unwrap();
        let walls = svc.released_all();
        for pair in walls.windows(2) {
            assert!(
                pair[0].released_at < pair[1].released_at,
                "release timestamps must be strictly monotone"
            );
        }
        // Reader contract: the wall assigned to a reader starting now
        // was released strictly before that start.
        let start = clock.tick();
        if let Some(w) = svc.latest_released_before(start) {
            assert!(w.released_at < start);
        }
    });
    report.assert_clean("timewall");
    assert!(report.complete, "timewall model must exhaust");
}

/// Striped schedule log: concurrent appends never lose, duplicate or
/// tear a ticket — the quiescent merge is dense `0..n` in order.
#[test]
fn schedule_log_tickets_dense_after_concurrent_appends() {
    let report = check(Config::exhaustive(), || {
        let log = Arc::new(ScheduleLog::new());
        let l2 = Arc::clone(&log);
        let t = mc::thread::spawn(move || {
            l2.record(ScheduleEvent::Commit {
                txn: TxnId(1),
                commit_ts: Timestamp(1),
            });
            l2.record(ScheduleEvent::Commit {
                txn: TxnId(1),
                commit_ts: Timestamp(2),
            });
        });
        log.record(ScheduleEvent::Commit {
            txn: TxnId(2),
            commit_ts: Timestamp(3),
        });
        t.join().unwrap();
        let stamped = log.events_stamped();
        assert_eq!(stamped.len(), 3, "lost append");
        for (i, &(ticket, _)) in stamped.iter().enumerate() {
            assert_eq!(ticket, i as u64, "tickets must merge dense and sorted");
        }
    });
    report.assert_clean("schedule_log");
    assert!(report.complete);
}

/// Gauge board cells are tear-free: a sampler racing two publishers can
/// only ever observe values some `set_driver_progress` call actually
/// wrote — never a torn mix *within* one cell.
#[test]
fn gauge_board_cells_are_tear_free() {
    let report = check(Config::exhaustive(), || {
        let g = Arc::new(GaugeBoard::new());
        let g2 = Arc::clone(&g);
        let t = mc::thread::spawn(move || {
            g2.set_driver_progress(3, 30);
        });
        g.set_driver_progress(5, 50);
        let s = g.snapshot();
        assert!(
            matches!(s.driver_claimed, 0 | 3 | 5),
            "torn claimed cell: {}",
            s.driver_claimed
        );
        assert!(
            matches!(s.driver_offered, 0 | 30 | 50),
            "torn offered cell: {}",
            s.driver_offered
        );
        t.join().unwrap();
    });
    report.assert_clean("gauge_tear_free");
    assert!(report.complete);
}

/// Span-ring accounting: `recorded − dropped` equals exactly what a
/// quiescent drain returns, under concurrent pushes into a capacity-1
/// ring (every eviction must be counted, no record lost untallied).
#[test]
fn span_ring_accounting_balances() {
    let report = check(Config::exhaustive(), || {
        let fr = Arc::new(FlightRecorder::with_capacity(1));
        let f2 = Arc::clone(&fr);
        let t = mc::thread::spawn(move || {
            f2.push(SpanEvent::WallRelease {
                anchor: 1,
                at_ns: 0,
            });
            f2.push(SpanEvent::WallRelease {
                anchor: 2,
                at_ns: 0,
            });
        });
        fr.push(SpanEvent::WallRelease {
            anchor: 3,
            at_ns: 0,
        });
        t.join().unwrap();
        let drained = fr.drain();
        assert_eq!(
            fr.recorded() - fr.dropped(),
            drained.len() as u64,
            "ring accounting out of balance"
        );
        let mut tickets: Vec<u64> = drained.iter().map(|&(t, _)| t).collect();
        let sorted = tickets.windows(2).all(|w| w[0] < w[1]);
        assert!(sorted, "drain must be ticket-ordered");
        tickets.dedup();
        assert_eq!(tickets.len(), drained.len(), "duplicated record");
    });
    report.assert_clean("span_ring");
    assert!(report.complete);
}

/// Trace-ring accounting under the same schedule shape (the decision
/// ring and the flight ring share the stripe design but not state).
#[test]
fn trace_ring_accounting_balances() {
    let report = check(Config::exhaustive(), || {
        let ring = Arc::new(TraceRing::with_capacity(1));
        let r2 = Arc::clone(&ring);
        let t = mc::thread::spawn(move || {
            r2.push(TraceEvent::Backoff { nanos: 1 });
        });
        ring.push(TraceEvent::Backoff { nanos: 2 });
        t.join().unwrap();
        let drained = ring.drain();
        assert_eq!(ring.recorded() - ring.dropped(), drained.len() as u64);
    });
    report.assert_clean("trace_ring");
    assert!(report.complete);
}

/// The logical clock's uniqueness claim, model-checked: concurrent
/// ticks never repeat even under weak memory (fetch_add is atomic; no
/// ordering is needed for uniqueness — exactly what the `// ordering:`
/// annotation at the site claims).
#[test]
fn clock_ticks_unique_under_weak_memory() {
    let report = check(Config::exhaustive(), || {
        let clock = Arc::new(LogicalClock::new());
        let c2 = Arc::clone(&clock);
        let t = mc::thread::spawn(move || (c2.tick(), c2.tick()));
        let a = clock.tick();
        let (b, c) = t.join().unwrap();
        let mut all = [a.raw(), b.raw(), c.raw()];
        all.sort_unstable();
        assert!(
            all[0] < all[1] && all[1] < all[2],
            "duplicate tick: {all:?}"
        );
        assert!(b < c, "per-thread ticks must be ordered");
    });
    report.assert_clean("clock_unique");
    assert!(report.complete);
}
