//! Self-models for the checker: known-racy and known-clean protocols
//! the engine must classify correctly before the HDD models mean
//! anything. Run with `RUSTFLAGS="--cfg mc" cargo test -p mc`.
#![cfg(mc)]

use mc::sync::{AtomicBool, AtomicU64, Mutex, OnceLock, Ordering};
use mc::{check, check_ordering, Config};
use std::sync::Arc;

/// Two unsynchronized increments (load; add; store) lose an update in
/// some interleaving — the checker must find it.
#[test]
fn lost_update_is_found() {
    let report = check(Config::exhaustive(), || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = mc::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let f = report.assert_fails("lost_update");
    assert!(
        f.message.contains("lost update"),
        "wrong failure: {}",
        f.message
    );
}

/// The same counter bumped with `fetch_add` is atomic — every
/// interleaving passes, and the search terminates exhaustively.
#[test]
fn fetch_add_is_atomic() {
    let report = check(Config::exhaustive(), || {
        // ordering: Relaxed — the model under test: atomicity alone
        // must suffice for a pure counter, which the checker verifies.
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = mc::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed); // ordering: counter; atomicity is the property under test
        });
        c.fetch_add(1, Ordering::Relaxed); // ordering: counter; atomicity is the property under test
        t.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 2); // ordering: read after join
    });
    report.assert_clean("fetch_add_atomic");
    assert!(report.complete, "search must exhaust");
    assert!(report.executions >= 2, "must explore both orders");
}

/// Message passing with Relaxed flag/data: the reader may see the flag
/// set but stale data. Under SC the model is correct; under declared
/// orderings it fails — the definition of ordering-sensitive, and the
/// counterexample must blame the stale read.
#[test]
fn relaxed_message_passing_is_ordering_sensitive() {
    let model = || {
        // ordering: Relaxed — deliberately wrong: this is the broken
        // message-passing idiom the checker must convict.
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = mc::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed); // ordering: deliberately broken MP (under test)
            f2.store(true, Ordering::Relaxed); // ordering: deliberately broken MP (under test)
        });
        // ordering: deliberately broken MP (under test)
        if flag.load(Ordering::Relaxed) {
            // ordering: deliberately broken MP (under test)
            assert_eq!(data.load(Ordering::Relaxed), 42, "saw flag but stale data");
        }
        t.join().unwrap();
    };
    let verdict = check_ordering(Config::exhaustive(), model);
    assert!(
        verdict.ordering_sensitive(),
        "sc: {:?}, weak: {:?}",
        verdict.sc.failure.as_ref().map(|f| &f.message),
        verdict.weak.failure.as_ref().map(|f| &f.message)
    );
    let f = verdict.weak.failure.expect("weak failure");
    assert!(!f.stale_reads.is_empty(), "stale read must be blamed:\n{f}");
    assert!(
        f.trace.contains("STALE"),
        "trace must mark the stale load:\n{f}"
    );
}

/// The same handoff with Release store / Acquire load is clean in every
/// interleaving, including under weak memory.
#[test]
fn release_acquire_message_passing_is_clean() {
    let report = check(Config::exhaustive(), || {
        // ordering: Relaxed — the data cell rides on the Release store /
        // Acquire load of the flag; that edge orders the Relaxed accesses.
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = mc::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed); // ordering: data rides the Release/Acquire flag edge
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42); // ordering: ordered by the Acquire load above
        }
        t.join().unwrap();
    });
    report.assert_clean("release_acquire_mp");
    assert!(report.complete);
}

/// Mutexed read-modify-write never loses updates; also exercises lock
/// blocking/enabledness.
#[test]
fn mutex_protects_counter() {
    let report = check(Config::exhaustive(), || {
        let c = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&c);
        let t = mc::thread::spawn(move || {
            *c2.lock() += 1;
        });
        *c.lock() += 1;
        t.join().unwrap();
        assert_eq!(*c.lock(), 2);
    });
    report.assert_clean("mutex_counter");
    assert!(report.complete);
}

/// Classic AB/BA lock ordering deadlocks in some interleaving; the
/// checker must report it rather than hang.
#[test]
fn lock_order_deadlock_is_found() {
    let report = check(Config::exhaustive(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = mc::thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let f = report.assert_fails("ab_ba_deadlock");
    assert!(f.message.contains("deadlock"), "got: {}", f.message);
}

/// OnceLock: exactly one initializer runs, losers see the winner's
/// value, and a get racing the init never observes a half-built cell.
#[test]
fn once_lock_single_init() {
    let report = check(Config::exhaustive(), || {
        let cell: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        // ordering: Relaxed — init-count probe; the OnceLock itself
        // serializes the initializers, the counter only tallies them.
        let inits = Arc::new(AtomicU64::new(0));
        let (c2, i2) = (Arc::clone(&cell), Arc::clone(&inits));
        let t = mc::thread::spawn(move || {
            *c2.get_or_init(|| {
                i2.fetch_add(1, Ordering::Relaxed); // ordering: init-count probe; OnceLock serializes
                7
            })
        });
        let v = *cell.get_or_init(|| {
            // ordering: Relaxed — same init-count probe as above.
            inits.fetch_add(1, Ordering::Relaxed);
            7
        });
        let w = t.join().unwrap();
        assert_eq!((v, w), (7, 7));
        assert_eq!(inits.load(Ordering::Relaxed), 1, "double init"); // ordering: read after join
    });
    report.assert_clean("once_single_init");
    assert!(report.complete);
}

/// The preemption bound prunes the search (fewer executions than
/// exhaustive, bound_skips reported) while staying sound for bugs that
/// need few preemptions.
#[test]
fn preemption_bound_prunes_but_still_finds_shallow_bugs() {
    let racy = || {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = mc::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let bounded = check(Config::bounded(1), racy);
    bounded.assert_fails("bounded_lost_update");

    // A clean model under a tight bound reports the skips it made.
    let clean = check(Config::bounded(0), || {
        // ordering: Relaxed — pure counter, atomicity suffices.
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = mc::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed); // ordering: counter; atomicity suffices
        });
        c.fetch_add(1, Ordering::Relaxed); // ordering: counter; atomicity suffices
        t.join().unwrap();
    });
    assert!(clean.failure.is_none());
    assert!(
        clean.bound_skips > 0,
        "a 0-preemption budget must skip schedules"
    );
}

/// DPOR prunes independent operations: two threads touching disjoint
/// atomics need far fewer executions than the factorial interleaving
/// count, and still terminate exhaustively.
#[test]
fn dpor_prunes_independent_work() {
    let model = || {
        // ordering: Relaxed — the two threads touch disjoint atomics and
        // assert nothing across them; no ordering is needed at all.
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = mc::thread::spawn(move || {
            a2.store(1, Ordering::Relaxed); // ordering: disjoint atomics; nothing asserted across
            a2.store(2, Ordering::Relaxed); // ordering: disjoint atomics; nothing asserted across
        });
        b.store(1, Ordering::Relaxed); // ordering: disjoint atomics; nothing asserted across
        b.store(2, Ordering::Relaxed); // ordering: disjoint atomics; nothing asserted across
        t.join().unwrap();
    };
    let with_dpor = check(Config::exhaustive(), model);
    with_dpor.assert_clean("independent");
    assert!(with_dpor.complete);
    let mut cfg = Config::exhaustive();
    cfg.dpor = false;
    let without = check(cfg, model);
    without.assert_clean("independent_nodpor");
    assert!(
        with_dpor.executions < without.executions,
        "DPOR must prune: {} vs {}",
        with_dpor.executions,
        without.executions
    );
}

/// try_lock never blocks: both outcomes (acquired, busy) are explored.
#[test]
fn try_lock_explores_both_outcomes() {
    let report = check(Config::exhaustive(), || {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = mc::thread::spawn(move || {
            let _g = m2.lock();
        });
        // Whether this succeeds depends on scheduling; both must run.
        if let Some(mut g) = m.try_lock() {
            *g += 1;
        }
        t.join().unwrap();
    });
    report.assert_clean("try_lock");
    assert!(report.complete);
    assert!(report.executions >= 2, "both try_lock outcomes explored");
}
