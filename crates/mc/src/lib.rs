//! `mc` — a zero-dependency, loom-style interleaving model checker, plus
//! the [`sync`] facade the workspace's lock-free core routes through.
//!
//! # Why
//!
//! HDD's serializability argument rests on small lock-free protocols: the
//! activity registry's begin/end vs `I_old(m)` evaluation, the time-wall
//! release vs unregistered readers, ticket stamping in the striped
//! schedule log, gauge cells, and the span ring. Stress tests *sample*
//! interleavings of those protocols; the two real Protocol A races fixed
//! in PR 1 survived hundreds of seeds before being caught. This crate
//! *enumerates* the interleavings of small models of those protocols
//! instead, so an invariant that holds after a check holds for **every**
//! schedule the model can produce, not just the sampled ones.
//!
//! # How it plugs in
//!
//! Production code never imports `std::sync::atomic` or `parking_lot`
//! directly for the checked structures — it imports [`mc::sync`](sync):
//!
//! - In a **normal build**, `mc::sync` types are `#[inline]` newtypes over
//!   the std primitives. Zero cost, identical semantics (mutexes do not
//!   poison, matching the `parking_lot` shim they replace).
//! - Under **`RUSTFLAGS="--cfg mc"`**, the same names become instrumented
//!   model types. Code running inside `check` executes every atomic
//!   load/store/rmw, lock acquire/release and `OnceLock` init as a
//!   *scheduling point* of a deterministic scheduler, which explores the
//!   interleaving space by depth-first search with dynamic partial-order
//!   reduction and an optional bounded-preemption budget.
//!
//! The scheduler also models **declared memory orderings**: a `Relaxed`
//! load may observe any coherence-allowed earlier value, not just the
//! newest one, so an assertion that only fails when a stale value is
//! observed produces a counterexample trace pinpointing the exact load
//! (file:line) and the value it observed vs the newest. `check_ordering`
//! runs the same model under sequentially-consistent semantics and under
//! the declared orderings, and reports whether the declared orderings are
//! what makes the model fail.
//!
//! # Scope and approximations
//!
//! This is a *small-model* checker, not a proof of the full system:
//!
//! - Values flow through the model as `u64` (atomics); data protected by
//!   modeled mutexes is real memory, made race-free by the model's
//!   serialization of lock grants.
//! - Weak memory is the operational store-buffer-free approximation loom
//!   uses: a load may read any store already executed that coherence,
//!   happens-before and SC constraints allow. Load-buffering and OOTA
//!   behaviours are not generated.
//! - `compare_exchange_weak` never fails spuriously.
//! - SC is approximated per object (an SC load cannot observe anything
//!   older than the newest SC store of that object); the global SC order
//!   across distinct objects is not enforced.
//!
//! Those approximations are all on the *permissive* side for the
//! invariants checked here, and each model in `crates/mc/tests` states
//! which approximation it leans on.

pub mod sync;

#[cfg(not(mc))]
mod passthrough;

#[cfg(mc)]
mod model;
#[cfg(mc)]
mod rt;

#[cfg(mc)]
pub use rt::{check, check_ordering, Config, Failure, OrderingVerdict, Report};

pub mod thread;

/// True when this build of `mc` is the instrumented model runtime
/// (compiled under `--cfg mc`), false for the zero-cost passthrough.
#[must_use]
pub const fn model_build() -> bool {
    cfg!(mc)
}
