//! Instrumented facade types (only compiled under `--cfg mc`).
//!
//! Same API as `crate::passthrough`, but every operation on an object
//! created *inside* a model execution becomes a scheduling point of the
//! runtime in `crate::rt`. Objects created outside an execution fall
//! back to plain std behavior, so instrumented builds of the routed
//! crates still work when run normally (e.g. their own unit tests).

pub mod sync {
    //! Model-side sync primitives.

    use crate::rt::{self, Backing, Op, RmwKind};
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync::atomic::Ordering;
    use std::sync::PoisonError;

    /// Instrumented facade over `AtomicU64`.
    #[derive(Debug)]
    pub struct AtomicU64 {
        real: std::sync::atomic::AtomicU64,
        backing: Backing,
    }

    impl Default for AtomicU64 {
        fn default() -> Self {
            Self::new(0)
        }
    }

    impl AtomicU64 {
        /// A new atomic with initial value `v`.
        #[track_caller]
        #[must_use]
        pub fn new(v: u64) -> Self {
            AtomicU64 {
                real: std::sync::atomic::AtomicU64::new(v),
                backing: rt::register(rt::atomic_state(v), "AtomicU64", Location::caller()),
            }
        }

        /// Atomic load with the declared ordering.
        #[track_caller]
        pub fn load(&self, ord: Ordering) -> u64 {
            match rt::obj_op(
                &self.backing,
                |obj| Op::Load { obj, ord },
                Location::caller(),
            ) {
                Some(v) => v,
                None => self.real.load(ord),
            }
        }

        /// Atomic store with the declared ordering.
        #[track_caller]
        pub fn store(&self, v: u64, ord: Ordering) {
            if rt::obj_op(
                &self.backing,
                |obj| Op::Store { obj, ord, val: v },
                Location::caller(),
            )
            .is_none()
            {
                self.real.store(v, ord);
            }
        }

        #[track_caller]
        fn rmw(&self, rmw: RmwKind, ord: Ordering) -> Option<u64> {
            rt::obj_op(
                &self.backing,
                |obj| Op::Rmw { obj, ord, rmw },
                Location::caller(),
            )
        }

        /// Atomic add; returns the previous value.
        #[track_caller]
        pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
            self.rmw(RmwKind::Add(v), ord)
                .unwrap_or_else(|| self.real.fetch_add(v, ord))
        }

        /// Atomic minimum; returns the previous value.
        #[track_caller]
        pub fn fetch_min(&self, v: u64, ord: Ordering) -> u64 {
            self.rmw(RmwKind::Min(v), ord)
                .unwrap_or_else(|| self.real.fetch_min(v, ord))
        }

        /// Atomic maximum; returns the previous value.
        #[track_caller]
        pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
            self.rmw(RmwKind::Max(v), ord)
                .unwrap_or_else(|| self.real.fetch_max(v, ord))
        }

        /// Atomic swap; returns the previous value.
        #[track_caller]
        pub fn swap(&self, v: u64, ord: Ordering) -> u64 {
            self.rmw(RmwKind::Swap(v), ord)
                .unwrap_or_else(|| self.real.swap(v, ord))
        }

        /// Atomic compare-exchange.
        ///
        /// # Errors
        /// Returns the observed value if it differed from `current`.
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            match self.rmw(
                RmwKind::Cas {
                    expect: current,
                    new,
                },
                success,
            ) {
                Some(old) if old == current => Ok(old),
                Some(old) => Err(old),
                None => self.real.compare_exchange(current, new, success, failure),
            }
        }

        /// Atomic compare-exchange; the model never fails spuriously.
        ///
        /// # Errors
        /// Returns the observed value on failure.
        #[track_caller]
        pub fn compare_exchange_weak(
            &self,
            current: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            self.compare_exchange(current, new, success, failure)
        }
    }

    /// Instrumented facade over `AtomicUsize` (modeled as `u64`).
    ///
    /// Model values live in `u64`; every value crossing the API is
    /// truncated back to `usize`. Because the only operations exposed
    /// are load/store/`fetch_add`, truncation commutes with the
    /// arithmetic (`(a + b) mod 2^64 ≡ (a + b) mod 2^usize_bits` after
    /// truncation on any `usize` width ≤ 64), so on 32-bit targets this
    /// wraps at `usize::MAX` exactly like the passthrough build instead
    /// of panicking.
    #[derive(Debug)]
    pub struct AtomicUsize(AtomicU64);

    impl Default for AtomicUsize {
        fn default() -> Self {
            Self::new(0)
        }
    }

    #[allow(clippy::cast_possible_truncation)]
    impl AtomicUsize {
        /// A new atomic with initial value `v`.
        #[track_caller]
        #[must_use]
        pub fn new(v: usize) -> Self {
            AtomicUsize(AtomicU64::new(v as u64))
        }

        /// Atomic load with the declared ordering.
        #[track_caller]
        pub fn load(&self, ord: Ordering) -> usize {
            self.0.load(ord) as usize
        }

        /// Atomic store with the declared ordering.
        #[track_caller]
        pub fn store(&self, v: usize, ord: Ordering) {
            self.0.store(v as u64, ord);
        }

        /// Atomic add; returns the previous value (wrapping at `usize`
        /// width, like `std::sync::atomic::AtomicUsize::fetch_add`).
        #[track_caller]
        pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
            self.0.fetch_add(v as u64, ord) as usize
        }
    }

    /// Instrumented facade over `AtomicBool` (modeled as `u64` 0/1).
    #[derive(Debug)]
    pub struct AtomicBool(AtomicU64);

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl AtomicBool {
        /// A new atomic with initial value `v`.
        #[track_caller]
        #[must_use]
        pub fn new(v: bool) -> Self {
            AtomicBool(AtomicU64::new(u64::from(v)))
        }

        /// Atomic load with the declared ordering.
        #[track_caller]
        pub fn load(&self, ord: Ordering) -> bool {
            self.0.load(ord) != 0
        }

        /// Atomic store with the declared ordering.
        #[track_caller]
        pub fn store(&self, v: bool, ord: Ordering) {
            self.0.store(u64::from(v), ord);
        }

        /// Atomic swap; returns the previous value.
        #[track_caller]
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            self.0.swap(u64::from(v), ord) != 0
        }
    }

    /// Non-poisoning, model-scheduled mutex.
    #[derive(Debug)]
    pub struct Mutex<T> {
        real: std::sync::Mutex<T>,
        backing: Backing,
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl std::fmt::Debug for Backing {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Backing::Std => f.write_str("Std"),
                Backing::Model { id, .. } => write!(f, "Model#{id}"),
            }
        }
    }

    /// RAII guard for [`Mutex`].
    pub struct MutexGuard<'a, T> {
        real: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<&'a Backing>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.real.as_ref().expect("guard live")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.real.as_mut().expect("guard live")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock before the model unlock: the next
            // model-granted locker must find it uncontended.
            self.real.take();
            if let Some(b) = self.model {
                rt::obj_op(b, |obj| Op::Unlock { obj }, Location::caller());
            }
        }
    }

    impl<T> Mutex<T> {
        /// A new mutex protecting `value`.
        #[track_caller]
        pub fn new(value: T) -> Self {
            Mutex {
                real: std::sync::Mutex::new(value),
                backing: rt::register(rt::mutex_state(), "Mutex", Location::caller()),
            }
        }

        fn real_guard(&self) -> std::sync::MutexGuard<'_, T> {
            self.real.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Block until the lock is acquired.
        #[track_caller]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let model = rt::obj_op(&self.backing, |obj| Op::Lock { obj }, Location::caller());
            MutexGuard {
                real: Some(self.real_guard()),
                model: model.map(|_| &self.backing),
            }
        }

        /// Acquire the lock only if it is free right now.
        #[track_caller]
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match rt::obj_op(&self.backing, |obj| Op::TryLock { obj }, Location::caller()) {
                Some(1) => Some(MutexGuard {
                    real: Some(self.real_guard()),
                    model: Some(&self.backing),
                }),
                Some(_) => None,
                None => match self.real.try_lock() {
                    Ok(g) => Some(MutexGuard {
                        real: Some(g),
                        model: None,
                    }),
                    Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                        real: Some(p.into_inner()),
                        model: None,
                    }),
                    Err(std::sync::TryLockError::WouldBlock) => None,
                },
            }
        }

        /// Lock-free access through exclusive borrow.
        pub fn get_mut(&mut self) -> &mut T {
            self.real.get_mut().unwrap_or_else(PoisonError::into_inner)
        }

        /// Consume the mutex, returning the data.
        pub fn into_inner(self) -> T {
            self.real
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Shared-read RAII guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T> {
        real: Option<std::sync::RwLockReadGuard<'a, T>>,
        model: Option<&'a Backing>,
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.real.as_ref().expect("guard live")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.real.take();
            if let Some(b) = self.model {
                rt::obj_op(b, |obj| Op::RwUnlockRead { obj }, Location::caller());
            }
        }
    }

    /// Exclusive-write RAII guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        real: Option<std::sync::RwLockWriteGuard<'a, T>>,
        model: Option<&'a Backing>,
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.real.as_ref().expect("guard live")
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.real.as_mut().expect("guard live")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.real.take();
            if let Some(b) = self.model {
                rt::obj_op(b, |obj| Op::RwUnlockWrite { obj }, Location::caller());
            }
        }
    }

    /// Non-poisoning, model-scheduled reader-writer lock.
    #[derive(Debug)]
    pub struct RwLock<T> {
        real: std::sync::RwLock<T>,
        backing: Backing,
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T> RwLock<T> {
        /// A new lock protecting `value`.
        #[track_caller]
        pub fn new(value: T) -> Self {
            RwLock {
                real: std::sync::RwLock::new(value),
                backing: rt::register(rt::rw_state(), "RwLock", Location::caller()),
            }
        }

        /// Block until a shared read guard is acquired.
        #[track_caller]
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            let model = rt::obj_op(&self.backing, |obj| Op::RwRead { obj }, Location::caller());
            RwLockReadGuard {
                real: Some(self.real.read().unwrap_or_else(PoisonError::into_inner)),
                model: model.map(|_| &self.backing),
            }
        }

        /// Block until the exclusive write guard is acquired.
        #[track_caller]
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            let model = rt::obj_op(&self.backing, |obj| Op::RwWrite { obj }, Location::caller());
            RwLockWriteGuard {
                real: Some(self.real.write().unwrap_or_else(PoisonError::into_inner)),
                model: model.map(|_| &self.backing),
            }
        }

        /// Lock-free access through exclusive borrow.
        pub fn get_mut(&mut self) -> &mut T {
            self.real.get_mut().unwrap_or_else(PoisonError::into_inner)
        }

        /// Consume the lock, returning the data.
        pub fn into_inner(self) -> T {
            self.real
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Model-scheduled once cell.
    #[derive(Debug)]
    pub struct OnceLock<T> {
        real: std::sync::OnceLock<T>,
        backing: Backing,
    }

    impl<T> Default for OnceLock<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> OnceLock<T> {
        /// A new, uninitialized cell.
        #[track_caller]
        #[must_use]
        pub fn new() -> Self {
            OnceLock {
                real: std::sync::OnceLock::new(),
                backing: rt::register(rt::once_state(), "OnceLock", Location::caller()),
            }
        }

        /// The value, if initialized.
        #[track_caller]
        pub fn get(&self) -> Option<&T> {
            match rt::obj_op(&self.backing, |obj| Op::OnceGet { obj }, Location::caller()) {
                Some(1) => self.real.get(),
                Some(_) => None,
                None => self.real.get(),
            }
        }

        /// Initialize the cell if no other thread has; first write wins.
        ///
        /// # Errors
        /// Returns `value` back if the cell was already initialized.
        #[track_caller]
        pub fn set(&self, value: T) -> Result<(), T> {
            match rt::obj_op(
                &self.backing,
                |obj| Op::OnceAcquire { obj },
                Location::caller(),
            ) {
                Some(0) => {
                    let _ = self.real.set(value);
                    rt::obj_op(
                        &self.backing,
                        |obj| Op::OnceRelease { obj },
                        Location::caller(),
                    );
                    Ok(())
                }
                Some(_) => Err(value),
                None => self.real.set(value),
            }
        }

        /// The value, initializing it from `f` if the cell is empty.
        #[track_caller]
        pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
            match rt::obj_op(
                &self.backing,
                |obj| Op::OnceAcquire { obj },
                Location::caller(),
            ) {
                Some(0) => {
                    let v = f();
                    let _ = self.real.set(v);
                    rt::obj_op(
                        &self.backing,
                        |obj| Op::OnceRelease { obj },
                        Location::caller(),
                    );
                    self.real.get().expect("just set")
                }
                Some(_) => self.real.get().expect("once ready"),
                None => self.real.get_or_init(f),
            }
        }
    }

    /// Allocator of stable per-`(thread, instance)` stripe indices.
    ///
    /// Model threads get their deterministic thread id, so explored
    /// interleavings are replayable; outside an execution the behavior
    /// matches the passthrough build.
    #[derive(Debug, Default)]
    pub struct ThreadStripe {
        next: std::sync::atomic::AtomicUsize,
    }

    impl ThreadStripe {
        /// A new allocator (place it in a `static`).
        #[must_use]
        pub const fn new() -> Self {
            ThreadStripe {
                next: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        /// This thread's stripe index, masked to `mask`.
        pub fn index_for_thread(&self, mask: usize) -> usize {
            if let Some(tid) = rt::current_tid() {
                return tid & mask;
            }
            thread_local! {
                static ASSIGNED: std::cell::RefCell<Vec<(usize, usize)>> =
                    const { std::cell::RefCell::new(Vec::new()) };
            }
            let key = self as *const Self as usize;
            ASSIGNED.with(|a| {
                let mut a = a.borrow_mut();
                if let Some(&(_, v)) = a.iter().find(|&&(k, _)| k == key) {
                    return v & mask;
                }
                // ordering: Relaxed — round-robin ticket; uniqueness
                // comes from fetch_add atomicity, nothing is published.
                let v = self.next.fetch_add(1, Ordering::Relaxed);
                a.push((key, v));
                v & mask
            })
        }
    }
}

pub mod thread {
    //! Model-managed virtual threads.

    use crate::rt::{self, Op};
    use std::panic::Location;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Handle to a model virtual thread.
    pub struct JoinHandle<T> {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait (as a scheduling point) for the thread to finish and
        /// return its result. Model failures abort the execution before
        /// this returns, so the `Err` arm is never produced.
        ///
        /// # Errors
        /// Mirrors `std::thread::JoinHandle::join`'s signature.
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            rt::join_thread(self.tid);
            Ok(self
                .result
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .expect("joined thread stored its result"))
        }
    }

    /// Spawn a model virtual thread. Must be called inside a model
    /// execution.
    #[track_caller]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let r2 = Arc::clone(&result);
        let tid = rt::spawn_thread(Box::new(move || {
            let v = f();
            *r2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
        }));
        JoinHandle { tid, result }
    }

    /// Voluntary scheduling point (no-op outside a model execution).
    #[track_caller]
    pub fn yield_now() {
        rt::ctx_op(Op::Yield, Location::caller());
    }
}
