//! Thread facade: `std::thread` in normal builds; model-managed virtual
//! threads under `--cfg mc`.
//!
//! Model code (and only model code) spawns through this module so the
//! scheduler knows every participant. In a normal build the names resolve
//! straight to `std::thread`, so shared helpers compile both ways.

#[cfg(not(mc))]
pub use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(mc)]
pub use crate::model::thread::{spawn, yield_now, JoinHandle};
