//! The model-checker runtime (only compiled under `--cfg mc`).
//!
//! # Architecture
//!
//! Each *execution* runs the model closure on real OS threads, but every
//! instrumented operation (atomic access, lock, once-init, spawn, join)
//! parks the issuing thread and waits for a grant from the coordinator —
//! the thread that called [`check`]. The coordinator therefore sees, at
//! every step, the full set of runnable threads and each one's declared
//! next operation, and picks which thread moves via a DFS stack: the
//! first execution follows a default policy, and subsequent executions
//! replay a recorded prefix and then flip the deepest undone choice.
//!
//! Exploration is pruned by dynamic partial-order reduction (only
//! schedules that reorder *dependent* operations are distinguished) and
//! optionally by a bounded-preemption budget (Musuvathi/Qadeer-style:
//! context switches away from a still-runnable thread are rationed;
//! switches at blocking points are free).
//!
//! # Weak memory
//!
//! Atomics keep their full store history per execution. A load may
//! observe any store allowed by coherence (never older than something
//! the thread already read or wrote), happens-before (never older than a
//! store the thread provably knows is overwritten, via vector clocks),
//! and the per-object SC approximation (an `SeqCst` load cannot observe
//! anything older than the newest `SeqCst` store). Acquire loads of
//! release stores join vector clocks; RMWs always read the newest store
//! (atomicity) and continue release sequences. Reading anything but the
//! newest store marks the step *stale*, and failing executions render
//! every stale read with its source location — that is the
//! "`Relaxed` load changed the assertion outcome" evidence the audit
//! pairs with.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};

/// Hard cap on virtual threads per execution (vector clocks are fixed
/// arrays; small models need 2–4).
pub(crate) const MAX_THREADS: usize = 8;

pub(crate) type Tid = usize;
pub(crate) type ObjId = usize;
pub(crate) type VClock = [u64; MAX_THREADS];

fn vjoin(a: &mut VClock, b: &VClock) {
    for i in 0..MAX_THREADS {
        if b[i] > a[i] {
            a[i] = b[i];
        }
    }
}

fn acquire_like(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn release_like(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// Read-modify-write flavors the facade needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RmwKind {
    Add(u64),
    Min(u64),
    Max(u64),
    Swap(u64),
    Cas { expect: u64, new: u64 },
}

/// One instrumented operation — the unit the scheduler interleaves.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Op {
    Start,
    Load {
        obj: ObjId,
        ord: Ordering,
    },
    Store {
        obj: ObjId,
        ord: Ordering,
        val: u64,
    },
    Rmw {
        obj: ObjId,
        ord: Ordering,
        rmw: RmwKind,
    },
    Lock {
        obj: ObjId,
    },
    TryLock {
        obj: ObjId,
    },
    Unlock {
        obj: ObjId,
    },
    RwRead {
        obj: ObjId,
    },
    RwWrite {
        obj: ObjId,
    },
    RwUnlockRead {
        obj: ObjId,
    },
    RwUnlockWrite {
        obj: ObjId,
    },
    OnceAcquire {
        obj: ObjId,
    },
    OnceRelease {
        obj: ObjId,
    },
    OnceGet {
        obj: ObjId,
    },
    Yield,
    Spawn,
    Join {
        target: Tid,
    },
}

impl Op {
    fn obj(self) -> Option<ObjId> {
        match self {
            Op::Load { obj, .. }
            | Op::Store { obj, .. }
            | Op::Rmw { obj, .. }
            | Op::Lock { obj }
            | Op::TryLock { obj }
            | Op::Unlock { obj }
            | Op::RwRead { obj }
            | Op::RwWrite { obj }
            | Op::RwUnlockRead { obj }
            | Op::RwUnlockWrite { obj }
            | Op::OnceAcquire { obj }
            | Op::OnceRelease { obj }
            | Op::OnceGet { obj } => Some(obj),
            Op::Start | Op::Yield | Op::Spawn | Op::Join { .. } => None,
        }
    }

    /// Operations that commute with each other on the same object
    /// (pure observers: they change no object or cross-thread state).
    fn pure_read(self) -> bool {
        matches!(self, Op::Load { .. } | Op::OnceGet { .. })
    }
}

/// Do two operations conflict for partial-order reduction purposes?
fn dependent(a: Op, b: Op) -> bool {
    match (a.obj(), b.obj()) {
        (Some(x), Some(y)) if x == y => !(a.pure_read() && b.pure_read()),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Object and thread state
// ---------------------------------------------------------------------------

/// One store in an atomic's modification order.
#[derive(Clone, Debug)]
pub(crate) struct StoreRec {
    /// Position in this object's modification order (starts at 1).
    idx: u64,
    val: u64,
    writer: Tid,
    /// Writer's own clock component at store time: a thread with
    /// `vc[writer] >= writer_pos` provably knows this store happened.
    writer_pos: u64,
    /// Clock released with the store (None for relaxed stores, which
    /// also break release sequences; RMWs propagate it).
    rel_vc: Option<VClock>,
}

/// Model state of one instrumented object.
#[derive(Clone, Debug)]
pub(crate) enum ObjState {
    Atomic {
        stores: Vec<StoreRec>,
        next_idx: u64,
        /// Modification-order index of the newest `SeqCst` store (0 = none).
        last_sc_idx: u64,
    },
    Mutex {
        held: Option<Tid>,
        rel_vc: VClock,
    },
    Rw {
        writer: Option<Tid>,
        readers: Vec<Tid>,
        /// Released by any unlock (read or write): acquired by writers.
        rel_all: VClock,
        /// Released by write unlocks only: acquired by readers.
        rel_w: VClock,
    },
    Once {
        st: OnceSt,
        rel_vc: VClock,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OnceSt {
    Empty,
    Busy(Tid),
    Ready,
}

struct ObjInfo {
    state: ObjState,
    kind: &'static str,
    loc: &'static Location<'static>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Running,
    Parked,
    Finished,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    op: Op,
    loc: &'static Location<'static>,
}

/// Per-(thread, atomic) coherence bounds: a thread may never observe a
/// store older than one it already read or issued.
#[derive(Clone, Copy, Debug, Default)]
struct Coh {
    last_read_idx: u64,
    last_store_idx: u64,
}

struct TState {
    status: Status,
    pending: Option<Pending>,
    vc: VClock,
    coh: Vec<(ObjId, Coh)>,
    final_vc: VClock,
}

impl TState {
    fn new() -> Self {
        TState {
            status: Status::Running,
            pending: None,
            vc: [0; MAX_THREADS],
            coh: Vec::new(),
            final_vc: [0; MAX_THREADS],
        }
    }
}

fn coh_of(t: &TState, obj: ObjId) -> Coh {
    t.coh
        .iter()
        .find(|&&(o, _)| o == obj)
        .map_or(Coh::default(), |&(_, c)| c)
}

fn coh_mut(t: &mut TState, obj: ObjId) -> &mut Coh {
    if let Some(pos) = t.coh.iter().position(|&(o, _)| o == obj) {
        &mut t.coh[pos].1
    } else {
        t.coh.push((obj, Coh::default()));
        &mut t.coh.last_mut().expect("just pushed").1
    }
}

// ---------------------------------------------------------------------------
// Execution-shared state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Stale {
    newest: u64,
    behind: u64,
}

#[derive(Clone, Copy, Debug)]
struct StepTrace {
    tid: Tid,
    op: Op,
    result: u64,
    stale: Option<Stale>,
    loc: &'static Location<'static>,
}

struct Inner {
    threads: Vec<TState>,
    objects: Vec<ObjInfo>,
    /// Thread currently granted one step (None while the coordinator
    /// decides or the granted thread runs non-instrumented code).
    active: Option<Tid>,
    /// Which readable store the granted load should observe.
    value_choice: usize,
    abort: bool,
    failure: Option<String>,
    /// `file:line: message` captured by the panic hook.
    panic_info: Option<String>,
    steps: Vec<StepTrace>,
    weak: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
}

fn lock_inner(shared: &Shared) -> MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a facade object is backed: `Std` outside any model execution
/// (plain std behavior), `Model` when created inside one.
pub(crate) enum Backing {
    Std,
    Model { shared: Weak<Shared>, id: ObjId },
}

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    tid: Tid,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread is a model virtual thread.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// The calling model thread's id (used for deterministic stripe hints).
pub(crate) fn current_tid() -> Option<Tid> {
    current().map(|c| c.tid)
}

/// Panic payload used to tear an execution down without reporting.
struct AbortExec;

/// Unwind out of a torn-down execution — unless this thread is already
/// unwinding (ops issued by guard drops during a panic), where a second
/// panic would abort the process; those ops become silent no-ops.
fn abort_thread() {
    if !std::thread::panicking() {
        std::panic::panic_any(AbortExec);
    }
}

// ---------------------------------------------------------------------------
// Facade entry points (called by `crate::model`)
// ---------------------------------------------------------------------------

/// Register a new object. Outside an execution this returns
/// [`Backing::Std`] and the facade behaves like the passthrough build.
pub(crate) fn register(
    mut state: ObjState,
    kind: &'static str,
    loc: &'static Location<'static>,
) -> Backing {
    let Some(ctx) = current() else {
        return Backing::Std;
    };
    let mut g = lock_inner(&ctx.shared);
    let tid = ctx.tid;
    // Creation is a clock tick: anyone who inherits this clock (spawn,
    // acquire) provably knows the object and its initial value.
    g.threads[tid].vc[tid] += 1;
    let vc = g.threads[tid].vc;
    match &mut state {
        ObjState::Atomic { stores, .. } => {
            for s in stores.iter_mut() {
                s.writer = tid;
                s.writer_pos = vc[tid];
                s.rel_vc = Some(vc);
            }
        }
        ObjState::Mutex { rel_vc, .. } => *rel_vc = vc,
        ObjState::Rw { rel_all, rel_w, .. } => {
            *rel_all = vc;
            *rel_w = vc;
        }
        ObjState::Once { rel_vc, .. } => *rel_vc = vc,
    }
    let id = g.objects.len();
    g.objects.push(ObjInfo { state, kind, loc });
    Backing::Model {
        shared: Arc::downgrade(&ctx.shared),
        id,
    }
}

/// Fresh atomic object state with one initial store.
pub(crate) fn atomic_state(init: u64) -> ObjState {
    ObjState::Atomic {
        stores: vec![StoreRec {
            idx: 1,
            val: init,
            writer: 0,
            writer_pos: 0,
            rel_vc: None,
        }],
        next_idx: 2,
        last_sc_idx: 0,
    }
}

/// Fresh mutex object state.
pub(crate) fn mutex_state() -> ObjState {
    ObjState::Mutex {
        held: None,
        rel_vc: [0; MAX_THREADS],
    }
}

/// Fresh rwlock object state.
pub(crate) fn rw_state() -> ObjState {
    ObjState::Rw {
        writer: None,
        readers: Vec::new(),
        rel_all: [0; MAX_THREADS],
        rel_w: [0; MAX_THREADS],
    }
}

/// Fresh once-cell object state.
pub(crate) fn once_state() -> ObjState {
    ObjState::Once {
        st: OnceSt::Empty,
        rel_vc: [0; MAX_THREADS],
    }
}

/// Run one instrumented operation on a backed object. Returns `None`
/// for std-backed objects (caller falls through to the std primitive).
///
/// Panics if a model-backed object outlives its execution or is touched
/// from a non-model thread — both are model-harness bugs worth failing
/// loudly on.
pub(crate) fn obj_op(
    backing: &Backing,
    mk: impl FnOnce(ObjId) -> Op,
    loc: &'static Location<'static>,
) -> Option<u64> {
    let Backing::Model { shared, id } = backing else {
        return None;
    };
    let shared = shared
        .upgrade()
        .expect("mc: model object used after its execution ended");
    let ctx = current().expect("mc: model object touched from a non-model thread");
    assert!(
        Arc::ptr_eq(&shared, &ctx.shared),
        "mc: model object touched from a different execution"
    );
    Some(exec_op(&shared, ctx.tid, mk(*id), loc))
}

/// Run a context operation (yield) for the calling model thread; no-op
/// outside a model execution.
pub(crate) fn ctx_op(op: Op, loc: &'static Location<'static>) {
    if let Some(ctx) = current() {
        exec_op(&ctx.shared, ctx.tid, op, loc);
    }
}

/// Park at `op`, wait for the coordinator's grant, apply it.
fn exec_op(shared: &Arc<Shared>, tid: Tid, op: Op, loc: &'static Location<'static>) -> u64 {
    let mut g = lock_inner(shared);
    if g.abort {
        drop(g);
        abort_thread();
        return 0;
    }
    g.threads[tid].pending = Some(Pending { op, loc });
    g.threads[tid].status = Status::Parked;
    shared.cv.notify_all();
    loop {
        if g.abort {
            g.threads[tid].status = Status::Running;
            g.threads[tid].pending = None;
            drop(g);
            abort_thread();
            return 0;
        }
        if g.active == Some(tid) {
            break;
        }
        g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    g.active = None;
    g.threads[tid].status = Status::Running;
    g.threads[tid].pending = None;
    let choice = g.value_choice;
    apply(&mut g, tid, op, choice, loc)
}

// ---------------------------------------------------------------------------
// Operation semantics
// ---------------------------------------------------------------------------

/// Is `op` by thread `t` currently runnable?
fn op_enabled(g: &Inner, t: Tid, op: Op) -> bool {
    match op {
        Op::Lock { obj } => matches!(g.objects[obj].state, ObjState::Mutex { held: None, .. }),
        Op::RwRead { obj } => {
            matches!(g.objects[obj].state, ObjState::Rw { writer: None, .. })
        }
        Op::RwWrite { obj } => {
            if let ObjState::Rw {
                writer, readers, ..
            } = &g.objects[obj].state
            {
                writer.is_none() && readers.is_empty()
            } else {
                false
            }
        }
        Op::OnceAcquire { obj } => {
            !matches!(g.objects[obj].state, ObjState::Once { st: OnceSt::Busy(o), .. } if o != t)
        }
        Op::Join { target } => g.threads[target].status == Status::Finished,
        _ => true,
    }
}

/// The modification-order positions a load of `obj` by `t` may observe.
fn readable_indices(g: &Inner, t: Tid, obj: ObjId, ord: Ordering) -> Vec<usize> {
    let ObjState::Atomic {
        stores,
        last_sc_idx,
        ..
    } = &g.objects[obj].state
    else {
        unreachable!("load on non-atomic object");
    };
    if !g.weak {
        return vec![stores.len() - 1];
    }
    let vc = &g.threads[t].vc;
    let coh = coh_of(&g.threads[t], obj);
    let mut out = Vec::new();
    for (p, s) in stores.iter().enumerate() {
        if s.idx < coh.last_read_idx || s.idx < coh.last_store_idx {
            continue; // coherence: never travel backwards
        }
        if ord == Ordering::SeqCst && s.idx < *last_sc_idx {
            continue; // per-object SC: can't observe past the newest SC store
        }
        // happens-before: if t provably knows a newer store exists, the
        // older one is no longer observable.
        if stores[p + 1..]
            .iter()
            .any(|s2| s2.writer_pos > 0 && s2.writer_pos <= vc[s2.writer])
        {
            continue;
        }
        out.push(p);
    }
    debug_assert!(!out.is_empty(), "newest store must always be readable");
    out
}

fn apply(g: &mut Inner, t: Tid, op: Op, choice: usize, loc: &'static Location<'static>) -> u64 {
    let mut result = 0u64;
    let mut stale = None;
    match op {
        Op::Start | Op::Yield | Op::Spawn => {}
        Op::Join { target } => {
            let fv = g.threads[target].final_vc;
            vjoin(&mut g.threads[t].vc, &fv);
        }
        Op::Load { obj, ord } => {
            let list = readable_indices(g, t, obj, ord);
            let pick = list[choice.min(list.len() - 1)];
            let (val, idx, rel, n_stores, newest_val) = {
                let ObjState::Atomic { stores, .. } = &g.objects[obj].state else {
                    unreachable!()
                };
                let s = &stores[pick];
                (
                    s.val,
                    s.idx,
                    s.rel_vc,
                    stores.len(),
                    stores.last().expect("nonempty").val,
                )
            };
            let c = coh_mut(&mut g.threads[t], obj);
            c.last_read_idx = c.last_read_idx.max(idx);
            if acquire_like(ord) {
                if let Some(rv) = rel {
                    vjoin(&mut g.threads[t].vc, &rv);
                }
            }
            if pick + 1 != n_stores {
                stale = Some(Stale {
                    newest: newest_val,
                    behind: (n_stores - 1 - pick) as u64,
                });
            }
            result = val;
        }
        Op::Store { obj, ord, val } => {
            atomic_store(g, t, obj, ord, val, None);
        }
        Op::Rmw { obj, ord, rmw } => {
            let (old, old_idx, old_rel) = {
                let ObjState::Atomic { stores, .. } = &g.objects[obj].state else {
                    unreachable!()
                };
                let s = stores.last().expect("nonempty");
                (s.val, s.idx, s.rel_vc)
            };
            let c = coh_mut(&mut g.threads[t], obj);
            c.last_read_idx = c.last_read_idx.max(old_idx);
            if acquire_like(ord) {
                if let Some(rv) = old_rel {
                    vjoin(&mut g.threads[t].vc, &rv);
                }
            }
            result = old;
            let new = match rmw {
                RmwKind::Add(n) => Some(old.wrapping_add(n)),
                RmwKind::Min(n) => Some(old.min(n)),
                RmwKind::Max(n) => Some(old.max(n)),
                RmwKind::Swap(n) => Some(n),
                RmwKind::Cas { expect, new } => (old == expect).then_some(new),
            };
            if let Some(new) = new {
                // RMWs continue release sequences: propagate the clock the
                // read store released even if this RMW is relaxed.
                atomic_store(g, t, obj, ord, new, old_rel);
            }
        }
        Op::Lock { obj } => {
            let ObjState::Mutex { held, rel_vc } = &mut g.objects[obj].state else {
                unreachable!()
            };
            debug_assert!(held.is_none(), "lock granted while held");
            *held = Some(t);
            let rv = *rel_vc;
            vjoin(&mut g.threads[t].vc, &rv);
        }
        Op::TryLock { obj } => {
            let (free, rv) = {
                let ObjState::Mutex { held, rel_vc } = &mut g.objects[obj].state else {
                    unreachable!()
                };
                if held.is_none() {
                    *held = Some(t);
                    (true, *rel_vc)
                } else {
                    (false, [0; MAX_THREADS])
                }
            };
            if free {
                vjoin(&mut g.threads[t].vc, &rv);
                result = 1;
            }
        }
        Op::Unlock { obj } => {
            g.threads[t].vc[t] += 1;
            let tv = g.threads[t].vc;
            let ObjState::Mutex { held, rel_vc } = &mut g.objects[obj].state else {
                unreachable!()
            };
            debug_assert_eq!(*held, Some(t), "unlock by non-holder");
            *held = None;
            vjoin(rel_vc, &tv);
        }
        Op::RwRead { obj } => {
            let rv = {
                let ObjState::Rw {
                    writer,
                    readers,
                    rel_w,
                    ..
                } = &mut g.objects[obj].state
                else {
                    unreachable!()
                };
                debug_assert!(writer.is_none());
                readers.push(t);
                *rel_w
            };
            vjoin(&mut g.threads[t].vc, &rv);
        }
        Op::RwWrite { obj } => {
            let rv = {
                let ObjState::Rw {
                    writer,
                    readers,
                    rel_all,
                    ..
                } = &mut g.objects[obj].state
                else {
                    unreachable!()
                };
                debug_assert!(writer.is_none() && readers.is_empty());
                *writer = Some(t);
                *rel_all
            };
            vjoin(&mut g.threads[t].vc, &rv);
        }
        Op::RwUnlockRead { obj } => {
            g.threads[t].vc[t] += 1;
            let tv = g.threads[t].vc;
            let ObjState::Rw {
                readers, rel_all, ..
            } = &mut g.objects[obj].state
            else {
                unreachable!()
            };
            if let Some(pos) = readers.iter().position(|&r| r == t) {
                readers.swap_remove(pos);
            }
            vjoin(rel_all, &tv);
        }
        Op::RwUnlockWrite { obj } => {
            g.threads[t].vc[t] += 1;
            let tv = g.threads[t].vc;
            let ObjState::Rw {
                writer,
                rel_all,
                rel_w,
                ..
            } = &mut g.objects[obj].state
            else {
                unreachable!()
            };
            debug_assert_eq!(*writer, Some(t));
            *writer = None;
            vjoin(rel_all, &tv);
            vjoin(rel_w, &tv);
        }
        Op::OnceAcquire { obj } => {
            let (r, rv) = {
                let ObjState::Once { st, rel_vc } = &mut g.objects[obj].state else {
                    unreachable!()
                };
                match *st {
                    OnceSt::Empty => {
                        *st = OnceSt::Busy(t);
                        (0, None)
                    }
                    OnceSt::Ready => (1, Some(*rel_vc)),
                    OnceSt::Busy(_) => unreachable!("granted while busy"),
                }
            };
            if let Some(rv) = rv {
                vjoin(&mut g.threads[t].vc, &rv);
            }
            result = r;
        }
        Op::OnceRelease { obj } => {
            g.threads[t].vc[t] += 1;
            let tv = g.threads[t].vc;
            let ObjState::Once { st, rel_vc } = &mut g.objects[obj].state else {
                unreachable!()
            };
            *st = OnceSt::Ready;
            vjoin(rel_vc, &tv);
        }
        Op::OnceGet { obj } => {
            let rv = {
                let ObjState::Once { st, rel_vc } = &g.objects[obj].state else {
                    unreachable!()
                };
                (*st == OnceSt::Ready).then_some(*rel_vc)
            };
            if let Some(rv) = rv {
                vjoin(&mut g.threads[t].vc, &rv);
                result = 1;
            }
        }
    }
    g.steps.push(StepTrace {
        tid: t,
        op,
        result,
        stale,
        loc,
    });
    result
}

/// Push a store, optionally continuing a release sequence (`carry` is
/// the clock released by the store an RMW read).
fn atomic_store(g: &mut Inner, t: Tid, obj: ObjId, ord: Ordering, val: u64, carry: Option<VClock>) {
    g.threads[t].vc[t] += 1;
    let vc = g.threads[t].vc;
    let wpos = vc[t];
    let rel_vc = if release_like(ord) {
        let mut r = vc;
        if let Some(c) = carry {
            vjoin(&mut r, &c);
        }
        Some(r)
    } else {
        carry
    };
    let ObjState::Atomic {
        stores,
        next_idx,
        last_sc_idx,
    } = &mut g.objects[obj].state
    else {
        unreachable!()
    };
    let idx = *next_idx;
    *next_idx += 1;
    if ord == Ordering::SeqCst {
        *last_sc_idx = idx;
    }
    stores.push(StoreRec {
        idx,
        val,
        writer: t,
        writer_pos: wpos,
        rel_vc,
    });
    coh_mut(&mut g.threads[t], obj).last_store_idx = idx;
}

// ---------------------------------------------------------------------------
// Virtual threads
// ---------------------------------------------------------------------------

fn install_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                // Model panics are reported through the coordinator with a
                // rendered interleaving; keep stderr quiet. Capture the
                // location+message std formats for us (try_lock: never
                // deadlock inside a hook).
                if info.payload().downcast_ref::<AbortExec>().is_none() {
                    if let Some(ctx) = current() {
                        if let Ok(mut g) = ctx.shared.inner.try_lock() {
                            if g.panic_info.is_none() {
                                g.panic_info = Some(info.to_string());
                            }
                        }
                    }
                }
            } else {
                prev(info);
            }
        }));
    });
}

fn payload_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Body run by every model OS thread.
///
/// The thread was registered `Parked` at `Op::Start` before this OS
/// thread existed, and the coordinator treats that registration as a
/// promise: nothing runs until `Start` is granted. So the first thing
/// the body path does is genuinely park at `Start` via [`exec_op`] —
/// otherwise the closure would race to its first instrumented op while
/// the coordinator may already have granted the `Start` it saw pending
/// (recording `step_op = Start` for the real op, which defeats DPOR's
/// dependence check and skips load value-option enumeration).
fn run_thread(
    shared: &Arc<Shared>,
    tid: Tid,
    start_loc: &'static Location<'static>,
    body: Box<dyn FnOnce() + Send>,
) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            shared: Arc::clone(shared),
            tid,
        });
    });
    IN_MODEL.with(|f| f.set(true));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec_op(shared, tid, Op::Start, start_loc);
        body();
    }));
    IN_MODEL.with(|f| f.set(false));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut g = lock_inner(shared);
    match r {
        Ok(()) => {
            g.threads[tid].final_vc = g.threads[tid].vc;
        }
        Err(p) => {
            if p.downcast_ref::<AbortExec>().is_none() {
                let msg = g
                    .panic_info
                    .take()
                    .unwrap_or_else(|| payload_msg(p.as_ref()));
                if g.failure.is_none() {
                    g.failure = Some(format!("thread T{tid} {msg}"));
                }
                g.abort = true;
            }
        }
    }
    g.threads[tid].status = Status::Finished;
    g.threads[tid].pending = None;
    shared.cv.notify_all();
}

/// Spawn a virtual thread (used by `mc::thread::spawn`); returns its id.
#[track_caller]
pub(crate) fn spawn_thread(body: Box<dyn FnOnce() + Send>) -> Tid {
    let loc = Location::caller();
    let ctx = current().expect("mc::thread::spawn outside a model execution");
    exec_op(&ctx.shared, ctx.tid, Op::Spawn, loc);
    let child = {
        let mut g = lock_inner(&ctx.shared);
        let child = g.threads.len();
        assert!(
            child < MAX_THREADS,
            "mc: model exceeds {MAX_THREADS} threads"
        );
        g.threads[ctx.tid].vc[ctx.tid] += 1;
        let vc = g.threads[ctx.tid].vc;
        let mut t = TState::new();
        t.vc = vc; // spawn edge: the child knows everything the parent did
        t.status = Status::Parked;
        t.pending = Some(Pending { op: Op::Start, loc });
        g.threads.push(t);
        child
    };
    let sh = Arc::clone(&ctx.shared);
    let handle = std::thread::Builder::new()
        .name(format!("mc-T{child}"))
        .spawn(move || run_thread(&sh, child, loc, body))
        .expect("mc: OS thread spawn failed");
    lock_inner(&ctx.shared).os_handles.push(handle);
    ctx.shared.cv.notify_all();
    child
}

/// Join a virtual thread (used by `mc::thread::JoinHandle::join`).
#[track_caller]
pub(crate) fn join_thread(target: Tid) {
    let loc = Location::caller();
    let ctx = current().expect("mc: join outside a model execution");
    exec_op(&ctx.shared, ctx.tid, Op::Join { target }, loc);
}

// ---------------------------------------------------------------------------
// Public API: Config / Report / check
// ---------------------------------------------------------------------------

/// Exploration limits and semantics switches.
#[derive(Clone, Debug)]
pub struct Config {
    /// Max context switches away from a still-runnable thread per
    /// execution (`None` = unbounded: full exhaustive exploration).
    pub preemption_bound: Option<u32>,
    /// Stop after this many executions and report `complete: false`.
    pub max_executions: u64,
    /// Fail an execution that exceeds this many steps (livelock guard).
    pub max_steps: usize,
    /// Model declared orderings (weak memory). `false` = every load
    /// observes the newest store (sequential consistency).
    pub weak_memory: bool,
    /// Dynamic partial-order reduction (disable to force enumeration of
    /// every thread choice — mainly for testing the checker itself).
    pub dpor: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: None,
            max_executions: 500_000,
            max_steps: 20_000,
            weak_memory: true,
            dpor: true,
        }
    }
}

impl Config {
    /// Exhaustive exploration under declared (weak) orderings.
    #[must_use]
    pub fn exhaustive() -> Self {
        Config::default()
    }

    /// Exploration bounded to `k` preemptions per execution.
    #[must_use]
    pub fn bounded(k: u32) -> Self {
        Config {
            preemption_bound: Some(k),
            ..Config::default()
        }
    }

    /// Same exploration with sequentially-consistent memory.
    #[must_use]
    pub fn sequentially_consistent(mut self) -> Self {
        self.weak_memory = false;
        self
    }

    /// Cap the number of executions.
    #[must_use]
    pub fn with_max_executions(mut self, n: u64) -> Self {
        self.max_executions = n;
        self
    }
}

/// A failing interleaving, rendered for humans.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic/assertion message (with source location when known).
    pub message: String,
    /// The full interleaving, one line per scheduled operation.
    pub trace: String,
    /// The stale (non-newest) atomic reads in the failing execution —
    /// the smoking gun when a relaxed load changes an assertion outcome.
    pub stale_reads: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        if !self.stale_reads.is_empty() {
            writeln!(f, "stale reads in this execution:")?;
            for s in &self.stale_reads {
                writeln!(f, "  {s}")?;
            }
        }
        write!(f, "{}", self.trace)
    }
}

/// Outcome of a [`check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of executions explored.
    pub executions: u64,
    /// True when the DFS exhausted the (reduced, bounded) space.
    pub complete: bool,
    /// Choices suppressed by the preemption bound (0 under exhaustive
    /// configs; nonzero means `complete` is relative to the bound).
    pub bound_skips: u64,
    /// Deepest execution seen, in scheduling points.
    pub max_depth: usize,
    /// The first failing interleaving, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Assert no interleaving failed; panics with the rendered
    /// counterexample otherwise.
    pub fn assert_clean(&self, model: &str) {
        if let Some(f) = &self.failure {
            panic!(
                "model `{model}` failed (execution {} of the search):\n{f}",
                self.executions
            );
        }
    }

    /// Assert some interleaving failed (for known-bug regression
    /// models); returns the counterexample.
    pub fn assert_fails(&self, model: &str) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "model `{model}` expected a failing interleaving but {} executions passed (complete: {})",
                self.executions, self.complete
            )
        })
    }
}

/// Verdict of [`check_ordering`]: the same model under SC and under the
/// declared orderings.
#[derive(Clone, Debug)]
pub struct OrderingVerdict {
    /// Result with every load forced to observe the newest store.
    pub sc: Report,
    /// Result under the declared (possibly relaxed) orderings.
    pub weak: Report,
}

impl OrderingVerdict {
    /// True when the model is correct under SC but fails under the
    /// declared orderings — i.e. a declared `Relaxed` (or missing
    /// acquire/release pairing) is what breaks it.
    #[must_use]
    pub fn ordering_sensitive(&self) -> bool {
        self.sc.failure.is_none() && self.weak.failure.is_some()
    }
}

/// Explore every schedule of `f` (up to DPOR equivalence and the
/// configured bounds). `f` is re-run once per execution and must be
/// deterministic apart from scheduling.
pub fn check<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new(config, Arc::new(f)).run()
}

/// Run `f` under sequential consistency and under declared orderings,
/// reporting both (see [`OrderingVerdict::ordering_sensitive`]).
///
/// `config.weak_memory` is ignored: the comparison is only meaningful
/// between the two fixed semantics, so the first leg always forces
/// `weak_memory = false` and the second always forces `true` (a config
/// built via [`Config::sequentially_consistent`] is overridden on the
/// weak leg). Everything else in `config` (bounds, limits, DPOR)
/// applies to both legs. Use [`check`] to explore a single semantics.
pub fn check_ordering<F>(config: Config, f: F) -> OrderingVerdict
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let sc = Checker::new(config.clone().sequentially_consistent(), Arc::clone(&f)).run();
    let mut weak_cfg = config;
    weak_cfg.weak_memory = true;
    let weak = Checker::new(weak_cfg, f).run();
    OrderingVerdict { sc, weak }
}

// ---------------------------------------------------------------------------
// The DFS coordinator
// ---------------------------------------------------------------------------

/// One decision point in the DFS stack. `enabled`, `prev_tid`,
/// `preempt_in` and `opts` are replay-stable; `backtrack` grows as later
/// executions discover dependent operations (DPOR).
struct Node {
    chosen: (Tid, usize),
    done: BTreeSet<(Tid, usize)>,
    backtrack: BTreeSet<Tid>,
    enabled: Vec<Tid>,
    /// Discovered value-option counts per tried thread (loads with
    /// multiple readable stores).
    opts: Vec<(Tid, usize)>,
    /// Preemptions consumed before this node's choice.
    preempt_in: u32,
    prev_tid: Option<Tid>,
    /// The operation the chosen thread executed here (for DPOR lookback).
    step_op: Op,
}

struct Checker {
    config: Config,
    f: Arc<dyn Fn() + Send + Sync>,
    stack: Vec<Node>,
    bound_skips: u64,
    max_depth: usize,
}

enum ExecOutcome {
    Passed,
    Failed(Failure),
}

impl Checker {
    fn new(config: Config, f: Arc<dyn Fn() + Send + Sync>) -> Self {
        Checker {
            config,
            f,
            stack: Vec::new(),
            bound_skips: 0,
            max_depth: 0,
        }
    }

    fn run(&mut self) -> Report {
        install_hook();
        assert!(
            !in_model(),
            "mc::check cannot be nested inside a model execution"
        );
        let mut executions = 0u64;
        let mut failure = None;
        let mut exhausted = false;
        loop {
            executions += 1;
            match self.run_execution() {
                ExecOutcome::Failed(f) => {
                    failure = Some(f);
                    break;
                }
                ExecOutcome::Passed => {}
            }
            // Backtrack: flip the deepest node with an untried candidate.
            let mut advanced = false;
            while let Some(i) = self.stack.len().checked_sub(1) {
                if let Some(c) = self.pick_next(i) {
                    let n = &mut self.stack[i];
                    n.chosen = c;
                    n.done.insert(c);
                    advanced = true;
                    break;
                }
                self.stack.pop();
            }
            if !advanced {
                exhausted = true;
                break;
            }
            if executions >= self.config.max_executions {
                break;
            }
        }
        Report {
            executions,
            complete: exhausted && failure.is_none(),
            bound_skips: self.bound_skips,
            max_depth: self.max_depth,
            failure,
        }
    }

    /// Next untried (thread, value) candidate at node `i`, respecting
    /// DPOR backtrack sets and the preemption bound.
    fn pick_next(&mut self, i: usize) -> Option<(Tid, usize)> {
        let cand_tids: Vec<Tid> = {
            let n = &self.stack[i];
            if self.config.dpor {
                let mut s: BTreeSet<Tid> = n
                    .backtrack
                    .iter()
                    .copied()
                    .filter(|t| n.enabled.contains(t))
                    .collect();
                for &(t, _) in &n.done {
                    s.insert(t);
                }
                s.into_iter().collect()
            } else {
                n.enabled.clone()
            }
        };
        for t in cand_tids {
            let vmax = {
                let n = &self.stack[i];
                n.opts
                    .iter()
                    .find(|&&(t2, _)| t2 == t)
                    .map_or(1, |&(_, k)| k)
            };
            for v in 0..vmax {
                if self.stack[i].done.contains(&(t, v)) {
                    continue;
                }
                if let Some(b) = self.config.preemption_bound {
                    let n = &self.stack[i];
                    let cost = u32::from(
                        n.prev_tid
                            .is_some_and(|pt| pt != t && n.enabled.contains(&pt)),
                    );
                    if n.preempt_in + cost > b {
                        self.bound_skips += 1;
                        self.stack[i].done.insert((t, v));
                        continue;
                    }
                }
                return Some((t, v));
            }
        }
        None
    }

    /// DPOR: the pending op of enabled thread `p` at depth `d` conflicts
    /// with an earlier step by another thread → that earlier decision
    /// point must also try `p`.
    ///
    /// When `p` was not enabled at the conflicting point (e.g. the
    /// conflict is a mutex unlock and `p` was blocked on the lock), keep
    /// scanning to older dependent steps until one where `p` *was*
    /// enabled: that is where scheduling `p` earlier can actually change
    /// the order of the dependent pair (stopping at the first conflict
    /// would dead-end the backtrack chain on lock hand-offs).
    fn dpor_update(&mut self, d: usize, p: Tid, pop: Op) {
        for j in (0..d).rev() {
            let n = &self.stack[j];
            if n.chosen.0 != p && dependent(n.step_op, pop) {
                if n.enabled.contains(&p) {
                    self.stack[j].backtrack.insert(p);
                    break;
                }
                let en = n.enabled.clone();
                self.stack[j].backtrack.extend(en);
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_execution(&mut self) -> ExecOutcome {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                objects: Vec::new(),
                active: None,
                value_choice: 0,
                abort: false,
                failure: None,
                panic_info: None,
                steps: Vec::new(),
                weak: self.config.weak_memory,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        let t0_loc = Location::caller();
        {
            let mut g = lock_inner(&shared);
            let mut t0 = TState::new();
            t0.status = Status::Parked;
            t0.pending = Some(Pending {
                op: Op::Start,
                loc: t0_loc,
            });
            g.threads.push(t0);
        }
        let f = Arc::clone(&self.f);
        let sh = Arc::clone(&shared);
        let h = std::thread::Builder::new()
            .name("mc-T0".to_owned())
            .spawn(move || run_thread(&sh, 0, t0_loc, Box::new(move || f())))
            .expect("mc: OS thread spawn failed");
        lock_inner(&shared).os_handles.push(h);

        let mut depth = 0usize;
        loop {
            let mut g = lock_inner(&shared);
            loop {
                let quiescent =
                    g.active.is_none() && !g.threads.iter().any(|t| t.status == Status::Running);
                if quiescent || g.abort {
                    break;
                }
                g = shared.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            if g.abort || g.failure.is_some() {
                drop(g);
                break;
            }
            if g.threads.iter().all(|t| t.status == Status::Finished) {
                drop(g);
                break;
            }
            let enabled: Vec<Tid> = (0..g.threads.len())
                .filter(|&t| {
                    g.threads[t].status == Status::Parked
                        && g.threads[t]
                            .pending
                            .is_some_and(|p| op_enabled(&g, t, p.op))
                })
                .collect();
            if enabled.is_empty() {
                g.failure = Some(render_deadlock(&g));
                drop(g);
                break;
            }
            if depth >= self.config.max_steps {
                g.failure = Some(format!(
                    "execution exceeded max_steps ({}): livelock or model too large",
                    self.config.max_steps
                ));
                drop(g);
                break;
            }
            if self.config.dpor {
                for &p in &enabled {
                    let pop = g.threads[p].pending.expect("parked has pending").op;
                    self.dpor_update(depth, p, pop);
                }
            }
            let prev_tid = depth.checked_sub(1).map(|d| self.stack[d].chosen.0);
            if depth >= self.stack.len() {
                // Fresh node: default to the previous thread (fewest
                // preemptions), else the lowest enabled tid.
                let dflt = prev_tid
                    .filter(|p| enabled.contains(p))
                    .unwrap_or(enabled[0]);
                let preempt_in = depth.checked_sub(1).map_or(0, |d| {
                    let par = &self.stack[d];
                    par.preempt_in
                        + u32::from(
                            par.prev_tid
                                .is_some_and(|pt| pt != par.chosen.0 && par.enabled.contains(&pt)),
                        )
                });
                let mut done = BTreeSet::new();
                done.insert((dflt, 0));
                self.stack.push(Node {
                    chosen: (dflt, 0),
                    done,
                    backtrack: BTreeSet::new(),
                    enabled,
                    opts: Vec::new(),
                    preempt_in,
                    prev_tid,
                    step_op: Op::Start,
                });
            }
            let (tid, vchoice) = self.stack[depth].chosen;
            let pending = g.threads[tid].pending.expect("chosen thread parked");
            assert!(
                op_enabled(&g, tid, pending.op),
                "mc: replay divergence — model is nondeterministic beyond scheduling"
            );
            self.stack[depth].step_op = pending.op;
            if let Op::Load { obj, ord } = pending.op {
                let k = readable_indices(&g, tid, obj, ord).len();
                let n = &mut self.stack[depth];
                if !n.opts.iter().any(|&(t2, _)| t2 == tid) {
                    n.opts.push((tid, k));
                }
            }
            g.active = Some(tid);
            g.value_choice = vchoice;
            depth += 1;
            shared.cv.notify_all();
            drop(g);
        }
        self.max_depth = self.max_depth.max(depth);
        // Teardown: release every surviving thread, reap OS threads.
        let (failure, steps, labels) = {
            let mut g = lock_inner(&shared);
            g.abort = true;
            shared.cv.notify_all();
            let failure = g.failure.take();
            let steps = std::mem::take(&mut g.steps);
            let labels: Vec<String> = g
                .objects
                .iter()
                .map(|o| format!("{}@{}:{}", o.kind, o.loc.file(), o.loc.line()))
                .collect();
            (failure, steps, labels)
        };
        loop {
            let hs: Vec<_> = {
                let mut g = lock_inner(&shared);
                g.os_handles.drain(..).collect()
            };
            if hs.is_empty() {
                break;
            }
            shared.cv.notify_all();
            for h in hs {
                let _ = h.join();
            }
        }
        match failure {
            Some(msg) => ExecOutcome::Failed(render_failure(&msg, &steps, &labels)),
            None => ExecOutcome::Passed,
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn short_file(loc: &Location<'_>) -> String {
    let f = loc.file();
    let tail: Vec<&str> = f.rsplit('/').take(2).collect();
    let short: Vec<&str> = tail.into_iter().rev().collect();
    format!("{}:{}", short.join("/"), loc.line())
}

fn op_line(step: &StepTrace, labels: &[String]) -> String {
    let obj = step.op.obj().map_or(String::new(), |o| {
        labels.get(o).cloned().unwrap_or_else(|| format!("obj#{o}"))
    });
    let body = match step.op {
        Op::Start => "start".to_owned(),
        Op::Yield => "yield".to_owned(),
        Op::Spawn => "spawn".to_owned(),
        Op::Join { target } => format!("join T{target}"),
        Op::Load { ord, .. } => format!("load {obj} [{ord:?}] -> {}", step.result),
        Op::Store { ord, val, .. } => format!("store {obj} := {val} [{ord:?}]"),
        Op::Rmw { ord, rmw, .. } => {
            let r = match rmw {
                RmwKind::Add(n) => format!("fetch_add({n})"),
                RmwKind::Min(n) => format!("fetch_min({n})"),
                RmwKind::Max(n) => format!("fetch_max({n})"),
                RmwKind::Swap(n) => format!("swap({n})"),
                RmwKind::Cas { expect, new } => format!("cas({expect} -> {new})"),
            };
            format!("{r} {obj} [{ord:?}] -> {}", step.result)
        }
        Op::Lock { .. } => format!("lock {obj}"),
        Op::TryLock { .. } => format!(
            "try_lock {obj} -> {}",
            if step.result == 1 { "acquired" } else { "busy" }
        ),
        Op::Unlock { .. } => format!("unlock {obj}"),
        Op::RwRead { .. } => format!("read-lock {obj}"),
        Op::RwWrite { .. } => format!("write-lock {obj}"),
        Op::RwUnlockRead { .. } => format!("read-unlock {obj}"),
        Op::RwUnlockWrite { .. } => format!("write-unlock {obj}"),
        Op::OnceAcquire { .. } => format!(
            "once-acquire {obj} -> {}",
            if step.result == 1 { "ready" } else { "init" }
        ),
        Op::OnceRelease { .. } => format!("once-release {obj}"),
        Op::OnceGet { .. } => format!(
            "once-get {obj} -> {}",
            if step.result == 1 { "ready" } else { "empty" }
        ),
    };
    let stale = step.stale.map_or(String::new(), |s| {
        format!(
            "   ** STALE: newest is {}, read {} store(s) behind",
            s.newest, s.behind
        )
    });
    format!("T{} {body}  at {}{stale}", step.tid, short_file(step.loc))
}

fn render_failure(msg: &str, steps: &[StepTrace], labels: &[String]) -> Failure {
    let mut trace = String::new();
    trace.push_str(&format!("interleaving ({} steps):\n", steps.len()));
    for (i, s) in steps.iter().enumerate() {
        trace.push_str(&format!("  {:3}. {}\n", i + 1, op_line(s, labels)));
    }
    let stale_reads: Vec<String> = steps
        .iter()
        .filter(|s| s.stale.is_some())
        .map(|s| op_line(s, labels))
        .collect();
    Failure {
        message: msg.to_owned(),
        trace,
        stale_reads,
    }
}

fn render_deadlock(g: &Inner) -> String {
    let mut out = String::from("deadlock: no runnable thread\n");
    for (t, ts) in g.threads.iter().enumerate() {
        if ts.status == Status::Parked {
            if let Some(p) = ts.pending {
                out.push_str(&format!(
                    "  T{t} blocked on {:?} at {}\n",
                    p.op,
                    short_file(p.loc)
                ));
            }
        }
    }
    out
}
