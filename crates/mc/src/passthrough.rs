//! Normal-build side of the facade: `#[inline]` newtypes over `std`
//! primitives with identical semantics (mutexes do not poison — a
//! panicking holder simply releases, matching the `parking_lot` shim the
//! routed code used before).
//!
//! Everything here must stay API-compatible with the instrumented types
//! in `crate::model::sync`; the routed crates compile against whichever
//! side `--cfg mc` selects.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::PoisonError;

/// Facade over [`std::sync::atomic::AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicU64(std::sync::atomic::AtomicU64);

impl AtomicU64 {
    /// A new atomic with initial value `v`.
    #[must_use]
    pub const fn new(v: u64) -> Self {
        AtomicU64(std::sync::atomic::AtomicU64::new(v))
    }

    /// Atomic load with the declared ordering.
    #[inline]
    pub fn load(&self, ord: Ordering) -> u64 {
        self.0.load(ord)
    }

    /// Atomic store with the declared ordering.
    #[inline]
    pub fn store(&self, v: u64, ord: Ordering) {
        self.0.store(v, ord);
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.0.fetch_add(v, ord)
    }

    /// Atomic minimum; returns the previous value.
    #[inline]
    pub fn fetch_min(&self, v: u64, ord: Ordering) -> u64 {
        self.0.fetch_min(v, ord)
    }

    /// Atomic maximum; returns the previous value.
    #[inline]
    pub fn fetch_max(&self, v: u64, ord: Ordering) -> u64 {
        self.0.fetch_max(v, ord)
    }

    /// Atomic swap; returns the previous value.
    #[inline]
    pub fn swap(&self, v: u64, ord: Ordering) -> u64 {
        self.0.swap(v, ord)
    }

    /// Atomic compare-exchange.
    ///
    /// # Errors
    /// Returns the observed value if it differed from `current`.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Atomic compare-exchange that may fail spuriously.
    ///
    /// # Errors
    /// Returns the observed value on failure (possibly equal to `current`).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange_weak(current, new, success, failure)
    }
}

/// Facade over [`std::sync::atomic::AtomicUsize`].
#[derive(Debug, Default)]
pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

impl AtomicUsize {
    /// A new atomic with initial value `v`.
    #[must_use]
    pub const fn new(v: usize) -> Self {
        AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
    }

    /// Atomic load with the declared ordering.
    #[inline]
    pub fn load(&self, ord: Ordering) -> usize {
        self.0.load(ord)
    }

    /// Atomic store with the declared ordering.
    #[inline]
    pub fn store(&self, v: usize, ord: Ordering) {
        self.0.store(v, ord);
    }

    /// Atomic add; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.0.fetch_add(v, ord)
    }
}

/// Facade over [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// A new atomic with initial value `v`.
    #[must_use]
    pub const fn new(v: bool) -> Self {
        AtomicBool(std::sync::atomic::AtomicBool::new(v))
    }

    /// Atomic load with the declared ordering.
    #[inline]
    pub fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord)
    }

    /// Atomic store with the declared ordering.
    #[inline]
    pub fn store(&self, v: bool, ord: Ordering) {
        self.0.store(v, ord);
    }

    /// Atomic swap; returns the previous value.
    #[inline]
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.0.swap(v, ord)
    }
}

/// RAII guard for [`Mutex`]; derefs to the protected data.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Non-poisoning facade over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Block until the lock is acquired.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Lock-free access through exclusive borrow.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the data.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared-read RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning facade over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Block until a shared read guard is acquired.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until the exclusive write guard is acquired.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock-free access through exclusive borrow.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the data.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Facade over [`std::sync::OnceLock`].
#[derive(Debug)]
pub struct OnceLock<T>(std::sync::OnceLock<T>);

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> OnceLock<T> {
    /// A new, uninitialized cell.
    #[must_use]
    pub const fn new() -> Self {
        OnceLock(std::sync::OnceLock::new())
    }

    /// The value, if initialized.
    #[inline]
    pub fn get(&self) -> Option<&T> {
        self.0.get()
    }

    /// Initialize the cell if no other thread has; first write wins.
    ///
    /// # Errors
    /// Returns `value` back if the cell was already initialized.
    #[inline]
    pub fn set(&self, value: T) -> Result<(), T> {
        self.0.set(value)
    }

    /// The value, initializing it from `f` if the cell is empty.
    #[inline]
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        self.0.get_or_init(f)
    }
}

/// Allocator of stable per-`(thread, instance)` stripe indices.
///
/// Replaces the `static NEXT_STRIPE: AtomicUsize` + `thread_local!`
/// pattern the striped rings used: each instance hands every thread a
/// round-robin index on first use and the same index afterwards, and
/// distinct instances spread threads independently. Under the model
/// runtime the index is the deterministic model thread id instead, so
/// explored interleavings are replayable.
#[derive(Debug, Default)]
pub struct ThreadStripe {
    next: std::sync::atomic::AtomicUsize,
}

impl ThreadStripe {
    /// A new allocator (place it in a `static`).
    #[must_use]
    pub const fn new() -> Self {
        ThreadStripe {
            next: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// This thread's stripe index, masked to `mask` (stripe count − 1;
    /// stripe counts are powers of two).
    pub fn index_for_thread(&self, mask: usize) -> usize {
        thread_local! {
            static ASSIGNED: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
        }
        let key = self as *const Self as usize;
        ASSIGNED.with(|a| {
            let mut a = a.borrow_mut();
            if let Some(&(_, v)) = a.iter().find(|&&(k, _)| k == key) {
                return v & mask;
            }
            // ordering: Relaxed — round-robin ticket; uniqueness comes from
            // fetch_add atomicity, no other memory is published with it.
            let v = self.next.fetch_add(1, Ordering::Relaxed);
            a.push((key, v));
            v & mask
        })
    }
}
