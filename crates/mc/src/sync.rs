//! The sync facade: `std` newtypes in normal builds, instrumented model
//! types under `--cfg mc`.
//!
//! Routed crates (`hdd`, `txn-model`, `obs`) import *only* this module for
//! the checked structures; the cfg switch lives here, never in the routed
//! code. The API surface is exactly what the routed structures use — if a
//! structure needs a new primitive or method, add it to **both** sides.

#[cfg(not(mc))]
pub use crate::passthrough::*;

#[cfg(mc)]
pub use crate::model::sync::*;

pub use std::sync::atomic::Ordering;
