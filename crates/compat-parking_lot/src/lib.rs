//! Std-backed stand-in for the subset of the `parking_lot` API used by
//! this workspace (`Mutex`, `RwLock` with panic-free, non-poisoning
//! guards).
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by in-workspace shims. Semantics match
//! `parking_lot` for the calls we use: `lock()` / `read()` / `write()`
//! return guards directly (a poisoned std lock is recovered rather than
//! propagated, mirroring parking_lot's absence of poisoning).

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (non-poisoning `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning `read()` / `write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
