//! Build any scheduler over a freshly seeded store for a workload.

use baselines::sdd1::{Sdd1Class, Sdd1Pipeline};
use baselines::tso::TsoConfig;
use baselines::two_pl::TwoPlConfig;
use baselines::{BasicTso, Mv2pl, Mvto, NoControl, TwoPhaseLocking};
use hdd::protocol::{HddConfig, HddScheduler};
use hdd::Hierarchy;
use mvstore::{MvStore, StorageBackend};
use std::sync::Arc;
use txn_model::{LogicalClock, Scheduler};
use workloads::Workload;

/// Scheduler selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The paper's contribution.
    Hdd,
    /// Strict two-phase locking.
    TwoPl,
    /// 2PL without cross-segment read locks (Figure 3's broken variant).
    TwoPlNoCrossReadLocks,
    /// Basic timestamp ordering.
    Tso,
    /// TSO without cross-segment read timestamps (Figure 4's broken
    /// variant).
    TsoNoCrossReadTs,
    /// Multi-version timestamp ordering (Reed), uniform.
    Mvto,
    /// Multiversion 2PL (Chan-style).
    Mv2pl,
    /// Simplified SDD-1 pipelining.
    Sdd1,
    /// No concurrency control (Figure 1).
    NoControl,
}

impl SchedulerKind {
    /// Display name (matches `Scheduler::name`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Hdd => "hdd",
            SchedulerKind::TwoPl => "2pl",
            SchedulerKind::TwoPlNoCrossReadLocks => "2pl-no-cross-read-locks",
            SchedulerKind::Tso => "tso",
            SchedulerKind::TsoNoCrossReadTs => "tso-no-cross-read-ts",
            SchedulerKind::Mvto => "mvto",
            SchedulerKind::Mv2pl => "mv2pl",
            SchedulerKind::Sdd1 => "sdd1",
            SchedulerKind::NoControl => "nocontrol",
        }
    }
}

/// The sound schedulers compared in experiment E10 (Figure 10 plus the
/// classical baselines).
pub const ALL_KINDS: &[SchedulerKind] = &[
    SchedulerKind::Hdd,
    SchedulerKind::TwoPl,
    SchedulerKind::Tso,
    SchedulerKind::Mvto,
    SchedulerKind::Mv2pl,
    SchedulerKind::Sdd1,
];

/// Build `kind` over a fresh store seeded by `workload`. Returns the
/// scheduler and the store (for post-run value inspection).
pub fn build_scheduler(
    kind: SchedulerKind,
    workload: &dyn Workload,
) -> (Box<dyn Scheduler>, Arc<MvStore>) {
    let store = Arc::new(MvStore::new());
    workload.seed(store.as_ref());
    let clock = Arc::new(LogicalClock::new());
    let sched: Box<dyn Scheduler> = match kind {
        SchedulerKind::Hdd => {
            let hierarchy = Arc::new(workload.hierarchy());
            let backend: Arc<dyn StorageBackend> = store.clone();
            Box::new(HddScheduler::new(
                hierarchy,
                backend,
                clock,
                HddConfig::default(),
            ))
        }
        SchedulerKind::TwoPl => Box::new(TwoPhaseLocking::new(
            Arc::clone(&store),
            clock,
            TwoPlConfig::default(),
        )),
        SchedulerKind::TwoPlNoCrossReadLocks => Box::new(TwoPhaseLocking::new(
            Arc::clone(&store),
            clock,
            TwoPlConfig {
                cross_segment_read_locks: false,
            },
        )),
        SchedulerKind::Tso => Box::new(BasicTso::new(
            Arc::clone(&store),
            clock,
            TsoConfig::default(),
        )),
        SchedulerKind::TsoNoCrossReadTs => Box::new(BasicTso::new(
            Arc::clone(&store),
            clock,
            TsoConfig {
                register_cross_segment_reads: false,
            },
        )),
        SchedulerKind::Mvto => Box::new(Mvto::new(Arc::clone(&store), clock)),
        SchedulerKind::Mv2pl => Box::new(Mv2pl::new(Arc::clone(&store), clock)),
        SchedulerKind::Sdd1 => {
            let classes: Vec<Sdd1Class> = workload
                .specs()
                .iter()
                .map(|spec| Sdd1Class {
                    writes: spec.writes.clone(),
                    reads: spec.reads.clone(),
                })
                .collect();
            Box::new(Sdd1Pipeline::new(Arc::clone(&store), clock, classes))
        }
        SchedulerKind::NoControl => Box::new(NoControl::new(Arc::clone(&store), clock)),
    };
    (sched, store)
}

/// Build an HDD scheduler with a custom config (bench sweeps).
pub fn build_hdd_with_config(
    workload: &dyn Workload,
    config: HddConfig,
) -> (Arc<HddScheduler>, Arc<MvStore>, Arc<Hierarchy>) {
    let store = Arc::new(MvStore::new());
    workload.seed(store.as_ref());
    let hierarchy = Arc::new(workload.hierarchy());
    let backend: Arc<dyn StorageBackend> = store.clone();
    let sched = Arc::new(HddScheduler::new(
        Arc::clone(&hierarchy),
        backend,
        Arc::new(LogicalClock::new()),
        config,
    ));
    (sched, store, hierarchy)
}

/// Build an HDD scheduler over a caller-supplied storage backend (the
/// durable-tier experiments hand in a `FileBackend`), seeding it with
/// the workload's initial image first.
pub fn build_hdd_on(
    backend: Arc<dyn StorageBackend>,
    workload: &dyn Workload,
    config: HddConfig,
) -> (Arc<HddScheduler>, Arc<Hierarchy>) {
    workload.seed(backend.as_ref());
    let hierarchy = Arc::new(workload.hierarchy());
    let sched = Arc::new(HddScheduler::new(
        Arc::clone(&hierarchy),
        backend,
        Arc::new(LogicalClock::new()),
        config,
    ));
    (sched, hierarchy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::banking::Banking;

    #[test]
    fn every_kind_builds_over_banking() {
        let w = Banking::new(4);
        for kind in [
            SchedulerKind::Hdd,
            SchedulerKind::TwoPl,
            SchedulerKind::TwoPlNoCrossReadLocks,
            SchedulerKind::Tso,
            SchedulerKind::TsoNoCrossReadTs,
            SchedulerKind::Mvto,
            SchedulerKind::Mv2pl,
            SchedulerKind::Sdd1,
            SchedulerKind::NoControl,
        ] {
            let (sched, store) = build_scheduler(kind, &w);
            assert_eq!(sched.name(), kind.name());
            assert_eq!(w.total_balance(store.as_ref()), 4 * 100);
        }
    }
}
