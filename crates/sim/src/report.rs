//! ASCII tables for experiment output.

use std::fmt;

/// A titled table of string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "Figure 10 — scheduler comparison").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies each cell).
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        let row: Vec<String> = cells.iter().map(ToString::to_string).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Look up a cell by row key (first column) and header name
    /// (tests use this to assert on measured values).
    pub fn cell(&self, row_key: &str, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows
            .iter()
            .find(|r| r[0] == row_key)
            .map(|r| r[col].as_str())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "\n== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 2 decimals (table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("demo", &["scheduler", "commits"]);
        t.row(&["hdd", "10"]);
        t.row(&["2pl", "9"]);
        let s = format!("{t}");
        assert!(s.contains("demo"));
        assert!(s.contains("hdd"));
        assert_eq!(t.cell("hdd", "commits"), Some("10"));
        assert_eq!(t.cell("nope", "commits"), None);
        assert_eq!(t.cell("hdd", "nope"), None);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one"]);
    }
}
