//! The deterministic interleaved driver.
//!
//! Executes a batch of transaction programs against any scheduler, one
//! logical step at a time, picking the next live transaction with a
//! seeded RNG. Uniform semantics across schedulers:
//!
//! * `Block` — the step is retried the next time the transaction is
//!   picked (lock released, pipeline cleared, wall published, ...);
//! * `Abort` (or a failed commit) — the transaction is aborted and
//!   *restarted as a fresh transaction* with a new timestamp, up to a
//!   retry budget;
//! * every `maintenance_every` steps the scheduler's maintenance hook
//!   runs (time-wall release, GC).
//!
//! After the run, the schedule log is handed to the Section 2 dependency
//! graph and checked for acyclicity — the paper's correctness criterion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txn_model::program::ReadCtx;
use txn_model::{
    CommitOutcome, DependencyGraph, MetricsSnapshot, ReadOutcome, Scheduler, Step, TxnHandle,
    TxnId, TxnProgram, WriteOutcome,
};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// RNG seed for the interleaving.
    pub seed: u64,
    /// Restart budget per program (aborts beyond this give up).
    pub max_restarts: usize,
    /// Run scheduler maintenance every this many driver steps.
    pub maintenance_every: u64,
    /// Hard step limit (guards against scheduler livelock).
    pub max_steps: u64,
    /// Verify serializability from the schedule log after the run.
    pub verify: bool,
    /// Admission window: at most this many transactions are open at
    /// once (0 = unlimited). A bounded window models a closed-loop
    /// multiprogramming level; unlimited leaves the earliest transaction
    /// open for the whole run, which pins `I_old` and stops garbage
    /// collection from advancing.
    pub concurrency: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            seed: 0x0D15_EA5E,
            max_restarts: 50,
            maintenance_every: 8,
            max_steps: 10_000_000,
            verify: true,
            concurrency: 16,
        }
    }
}

/// Result of a driver run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Programs that committed.
    pub committed: usize,
    /// Abort-and-restart events.
    pub restarts: usize,
    /// Programs that exhausted their restart budget.
    pub gave_up: usize,
    /// Programs abandoned because they ran past the driver's
    /// per-transaction deadline (concurrent driver only; the
    /// deterministic driver has no wall clock and leaves this 0).
    pub deadline_exceeded: usize,
    /// Programs still live when the step limit was hit.
    pub stalled: usize,
    /// Driver steps executed.
    pub steps: u64,
    /// Scheduler metrics at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Serializability verdict (None when verification was off).
    pub serializable: Option<bool>,
    /// A dependency cycle, if one was found.
    pub cycle: Option<Vec<TxnId>>,
}

struct Execution {
    program: TxnProgram,
    handle: Option<TxnHandle>,
    pc: usize,
    ctx: ReadCtx,
    restarts: usize,
    committing: bool,
}

impl Execution {
    fn new(program: TxnProgram) -> Self {
        Execution {
            program,
            handle: None,
            pc: 0,
            ctx: ReadCtx::default(),
            restarts: 0,
            committing: false,
        }
    }

    fn restart(&mut self) {
        self.handle = None;
        self.pc = 0;
        self.ctx = ReadCtx::default();
        self.restarts += 1;
        self.committing = false;
    }
}

/// Run `programs` to completion under `scheduler`.
pub fn run_interleaved(
    scheduler: &dyn Scheduler,
    programs: Vec<TxnProgram>,
    cfg: &DriverConfig,
) -> RunStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut pending: std::collections::VecDeque<TxnProgram> = programs.into();
    let mut live: Vec<Execution> = Vec::new();
    let window = if cfg.concurrency == 0 {
        usize::MAX
    } else {
        cfg.concurrency
    };
    let mut stats = RunStats {
        committed: 0,
        restarts: 0,
        gave_up: 0,
        deadline_exceeded: 0,
        stalled: 0,
        steps: 0,
        metrics: MetricsSnapshot::default(),
        serializable: None,
        cycle: None,
    };

    while (!live.is_empty() || !pending.is_empty()) && stats.steps < cfg.max_steps {
        while live.len() < window {
            match pending.pop_front() {
                Some(p) => live.push(Execution::new(p)),
                None => break,
            }
        }
        stats.steps += 1;
        if stats.steps.is_multiple_of(cfg.maintenance_every) {
            scheduler.maintenance();
        }
        let i = rng.gen_range(0..live.len());
        let exec = &mut live[i];

        // Lazily begin.
        if exec.handle.is_none() {
            exec.handle = Some(scheduler.begin(&exec.program.profile));
        }
        let handle = exec.handle.clone().expect("just set");

        enum Next {
            Continue,
            Finished,
            Restart,
            GiveUp,
        }

        let next = if exec.committing || exec.pc >= exec.program.steps.len() {
            exec.committing = true;
            match scheduler.commit(&handle) {
                CommitOutcome::Committed(_) => Next::Finished,
                CommitOutcome::Block => Next::Continue,
                CommitOutcome::Aborted => {
                    if exec.restarts >= cfg.max_restarts {
                        Next::GiveUp
                    } else {
                        Next::Restart
                    }
                }
            }
        } else {
            match &exec.program.steps[exec.pc] {
                Step::Read(g) => match scheduler.read(&handle, *g) {
                    ReadOutcome::Value(v) => {
                        exec.ctx.record(*g, v);
                        exec.pc += 1;
                        Next::Continue
                    }
                    ReadOutcome::Block => Next::Continue,
                    ReadOutcome::Abort => {
                        scheduler.abort(&handle);
                        if exec.restarts >= cfg.max_restarts {
                            Next::GiveUp
                        } else {
                            Next::Restart
                        }
                    }
                },
                Step::Write(g, src) => {
                    let v = src.resolve(&exec.ctx);
                    match scheduler.write(&handle, *g, v) {
                        WriteOutcome::Done => {
                            exec.pc += 1;
                            Next::Continue
                        }
                        WriteOutcome::Block => Next::Continue,
                        WriteOutcome::Abort => {
                            scheduler.abort(&handle);
                            if exec.restarts >= cfg.max_restarts {
                                Next::GiveUp
                            } else {
                                Next::Restart
                            }
                        }
                    }
                }
            }
        };

        match next {
            Next::Continue => {}
            Next::Finished => {
                stats.committed += 1;
                live.swap_remove(i);
            }
            Next::Restart => {
                stats.restarts += 1;
                exec.restart();
            }
            Next::GiveUp => {
                stats.gave_up += 1;
                live.swap_remove(i);
            }
        }
    }

    stats.stalled = live.len();
    // Abort whatever is still live so the log is clean.
    for exec in &live {
        if let Some(h) = &exec.handle {
            scheduler.abort(h);
        }
    }

    stats.metrics = scheduler.metrics().snapshot();
    if cfg.verify {
        let dg = DependencyGraph::from_log(scheduler.log());
        stats.cycle = dg.find_cycle();
        stats.serializable = Some(stats.cycle.is_none());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_scheduler, SchedulerKind};
    use workloads::banking::{Banking, INITIAL_BALANCE};
    use workloads::Workload;

    fn banking_batch(n: usize, seed: u64) -> (Banking, Vec<TxnProgram>) {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(seed);
        let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
        (w, programs)
    }

    #[test]
    fn hdd_banking_run_is_serializable_and_balanced() {
        let (w, programs) = banking_batch(60, 7);
        let (sched, store) = build_scheduler(SchedulerKind::Hdd, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.gave_up, 0);
        assert_eq!(stats.stalled, 0);
        assert_eq!(stats.serializable, Some(true));
        // Balance invariant: sum of deltas of committed labels. The
        // driver restarts aborted programs until committed, so exactly
        // `committed` programs applied their delta — but we don't know
        // which labels committed; with equal ±50 the check is done in
        // experiment E1 instead. Here: committed == all.
        assert_eq!(stats.committed, 60);
        let total = w.total_balance(store.as_ref());
        assert_eq!(total % 50, 0);
    }

    #[test]
    fn all_sound_schedulers_serialize_banking() {
        for kind in crate::factory::ALL_KINDS {
            let (w, programs) = banking_batch(40, 11);
            let (sched, _store) = build_scheduler(*kind, &w);
            let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
            assert_eq!(
                stats.serializable,
                Some(true),
                "{} produced a non-serializable schedule: {:?}",
                kind.name(),
                stats.cycle
            );
            assert_eq!(stats.stalled, 0, "{} stalled", kind.name());
            assert!(stats.committed > 0, "{} committed nothing", kind.name());
        }
    }

    #[test]
    fn nocontrol_loses_updates() {
        let mut w = Banking::new(1); // one hot account
        w.deposit_prob = 1.0; // deposits only
        let mut rng = StdRng::seed_from_u64(3);
        let programs: Vec<TxnProgram> = (0..30).map(|_| w.generate(&mut rng)).collect();
        let (sched, store) = build_scheduler(SchedulerKind::NoControl, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.committed, 30);
        let expected = INITIAL_BALANCE + 30 * 50;
        let actual = w.total_balance(store.as_ref());
        assert!(
            actual < expected,
            "interleaved no-control deposits must lose money ({actual} vs {expected})"
        );
    }

    #[test]
    fn step_limit_reports_stall() {
        // A scheduler that blocks forever would stall; emulate with a
        // tiny max_steps over a real run.
        let (w, programs) = banking_batch(50, 5);
        let (sched, _store) = build_scheduler(SchedulerKind::TwoPl, &w);
        let cfg = DriverConfig {
            max_steps: 10,
            verify: false,
            ..DriverConfig::default()
        };
        let stats = run_interleaved(sched.as_ref(), programs, &cfg);
        assert!(stats.stalled > 0);
        assert_eq!(stats.serializable, None);
    }

    #[test]
    fn window_of_one_is_serial_even_without_control() {
        // With an admission window of 1 the driver runs transactions
        // back to back; even the no-control scheduler is then correct —
        // a direct check that the window bounds concurrency.
        let mut w = Banking::new(1);
        w.deposit_prob = 1.0;
        let mut rng = StdRng::seed_from_u64(17);
        let programs: Vec<TxnProgram> = (0..25).map(|_| w.generate(&mut rng)).collect();
        let (sched, store) = build_scheduler(SchedulerKind::NoControl, &w);
        let cfg = DriverConfig {
            concurrency: 1,
            ..DriverConfig::default()
        };
        let stats = run_interleaved(sched.as_ref(), programs, &cfg);
        assert_eq!(stats.committed, 25);
        assert_eq!(
            w.total_balance(store.as_ref()),
            INITIAL_BALANCE + 25 * 50,
            "serial no-control must not lose updates"
        );
    }
}
