//! **E4 (Figure 4)** — the same anomaly under timestamp ordering.
//!
//! Replays the Figure 4 timing against basic TSO, TSO without
//! cross-segment read timestamps, and HDD. The broken variant closes the
//! cycle; correct TSO prevents it *by rejecting* the oldest transaction
//! (a cost HDD does not pay: its type-3 transaction commits with no
//! registration, no block, no rejection).

use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::Table;
use crate::scripts::{run_script, TxnStatus};
use workloads::anomalies::{figure4_script, AnomalyWorkload};

/// Run E4.
pub fn run() -> Table {
    let mut table = Table::new(
        "E4 / Figure 4 — TSO without read timestamps breaks serializability",
        &[
            "scheduler",
            "committed",
            "aborted",
            "read_regs",
            "rejections",
            "serializable",
            "cycle_len",
        ],
    );
    for kind in [
        SchedulerKind::TsoNoCrossReadTs,
        SchedulerKind::Tso,
        SchedulerKind::Hdd,
    ] {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(kind, &w);
        let out = run_script(sched.as_ref(), &figure4_script());
        let m = sched.metrics().snapshot();
        let committed = out
            .statuses
            .iter()
            .filter(|s| matches!(s, TxnStatus::Committed))
            .count();
        table.row(&[
            kind.name().to_string(),
            committed.to_string(),
            (out.statuses.len() - committed).to_string(),
            m.read_registrations.to_string(),
            m.rejections.to_string(),
            out.serializable.to_string(),
            out.cycle.map_or(0, |c| c.len()).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_shape_holds() {
        let t = run();
        assert_eq!(
            t.cell("tso-no-cross-read-ts", "serializable"),
            Some("false")
        );
        assert_eq!(t.cell("tso-no-cross-read-ts", "cycle_len"), Some("3"));
        assert_eq!(t.cell("tso", "serializable"), Some("true"));
        // Correct TSO pays with a rejection (the oldest txn aborts).
        let rej: u64 = t.cell("tso", "rejections").unwrap().parse().unwrap();
        assert!(rej >= 1);
        assert_eq!(t.cell("tso", "committed"), Some("2"));
        // HDD: all three commit, nothing registered, nothing rejected.
        assert_eq!(t.cell("hdd", "committed"), Some("3"));
        assert_eq!(t.cell("hdd", "read_regs"), Some("0"));
        assert_eq!(t.cell("hdd", "rejections"), Some("0"));
        assert_eq!(t.cell("hdd", "serializable"), Some("true"));
    }
}
