//! **E5 (Figure 5)** — transitive semi-trees.
//!
//! Figure 5 exhibits a TST; the cost of *recognizing* one (transitive
//! reduction + semi-tree check) is what a database administrator pays at
//! decomposition time. This experiment sweeps graph size over three
//! families — guaranteed TSTs (a random tree plus transitively induced
//! arcs), random DAGs, and dense DAGs — and reports recognition time and
//! acceptance rate.

use crate::report::{f2, Table};
use hdd::graph::{is_transitive_semi_tree, Digraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Random tree (arcs child → parent) with extra transitively induced
/// arcs: always a TST.
pub fn random_tst(n: usize, rng: &mut StdRng) -> Digraph {
    let mut g = Digraph::new(n);
    let mut parent = vec![usize::MAX; n];
    for (v, slot) in parent.iter_mut().enumerate().skip(1) {
        let p = rng.gen_range(0..v);
        *slot = p;
        g.add_arc(v, p);
    }
    // Induced arcs to random ancestors.
    for v in 2..n {
        if rng.gen_bool(0.5) {
            let mut a = parent[v];
            while parent[a] != usize::MAX && rng.gen_bool(0.5) {
                a = parent[a];
            }
            g.add_arc(v, a);
        }
    }
    g
}

/// Random DAG with arc probability `p` (arcs from higher to lower index).
pub fn random_dag(n: usize, p: f64, rng: &mut StdRng) -> Digraph {
    let mut g = Digraph::new(n);
    for u in 0..n {
        for v in 0..u {
            if rng.gen_bool(p) {
                g.add_arc(u, v);
            }
        }
    }
    g
}

/// Run E5.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[8, 16]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let trials = if quick { 50 } else { 200 };
    let mut table = Table::new(
        "E5 / Figure 5 — TST recognition over random graphs",
        &["family", "n", "trials", "accepted_frac", "us_per_check"],
    );
    let mut rng = StdRng::seed_from_u64(0x00F1_6005);

    for &n in sizes {
        for (family, gen) in [
            (
                "tree+induced",
                Box::new(|rng: &mut StdRng| random_tst(n, rng))
                    as Box<dyn Fn(&mut StdRng) -> Digraph>,
            ),
            ("sparse-dag(p=2/n)", {
                let p = (2.0 / n as f64).min(1.0);
                Box::new(move |rng: &mut StdRng| random_dag(n, p, rng))
            }),
            (
                "dense-dag(p=0.3)",
                Box::new(move |rng: &mut StdRng| random_dag(n, 0.3, rng)),
            ),
        ] {
            let graphs: Vec<Digraph> = (0..trials).map(|_| gen(&mut rng)).collect();
            let start = Instant::now();
            let accepted = graphs.iter().filter(|g| is_transitive_semi_tree(g)).count();
            let elapsed = start.elapsed();
            table.row(&[
                family.to_string(),
                n.to_string(),
                trials.to_string(),
                f2(accepted as f64 / trials as f64),
                f2(elapsed.as_micros() as f64 / trials as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_family_always_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(is_transitive_semi_tree(&random_tst(20, &mut rng)));
        }
    }

    #[test]
    fn dense_dags_mostly_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let rejected = (0..50)
            .filter(|_| !is_transitive_semi_tree(&random_dag(20, 0.3, &mut rng)))
            .count();
        assert!(rejected > 40, "dense DAGs are almost never TSTs");
    }

    #[test]
    fn table_shape() {
        let t = run(true);
        assert_eq!(t.cell("tree+induced", "accepted_frac"), Some("1.00"));
        assert!(t.rows.len() >= 6);
    }
}
