//! **E13 — hot-path throughput trajectory** (no paper figure; ours).
//!
//! Wall-clock committed-transactions-per-second for HDD vs. MVTO vs.
//! 2PL on the inventory workload at 1/2/4/8/16/32 worker threads
//! (16/32 oversubscribe most machines — the point is that throughput
//! degrades gracefully under contention, not that it scales), driven by
//! the concurrent driver. Emits `BENCH_hotpath.json` next to the
//! terminal tables so every future change has a perf trajectory to
//! compare against:
//!
//! ```text
//! cargo run --release -p sim --bin experiments -- hotpath
//! ```

use crate::concurrent::{capped_workers, run_concurrent, ConcurrentConfig};
use crate::experiments::e02_inventory::batch;
use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::{f2, Table};

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct HotpathPoint {
    /// Scheduler measured.
    pub scheduler: &'static str,
    /// Worker threads.
    pub workers: usize,
    /// Programs offered.
    pub offered: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Committed transactions per second.
    pub commits_per_sec: f64,
    /// Operation attempts per second (reads+writes+commit attempts).
    pub ops_per_sec: f64,
    /// Post-hoc dependency-graph verdict.
    pub serializable: bool,
    /// Versions reclaimed by GC during the run (hdd only).
    pub versions_gced: u64,
    /// Time walls released during the run (hdd only).
    pub timewalls_released: u64,
}

const SCHEDULERS: &[SchedulerKind] = &[
    SchedulerKind::Hdd,
    SchedulerKind::Mvto,
    SchedulerKind::TwoPl,
];

/// Run the sweep and return the raw points.
pub fn sweep(quick: bool) -> Vec<HotpathPoint> {
    let n_txns = if quick { 200 } else { 20_000 };
    let worker_counts: &[usize] = if quick {
        &[1, 2]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    let mut points = Vec::new();
    for &kind in SCHEDULERS {
        for &workers in worker_counts {
            if capped_workers(workers).is_none() {
                eprintln!(
                    "hotpath: skipping {workers}-worker leg \
                     (beyond 8x available parallelism on this host)"
                );
                continue;
            }
            let (w, programs) = batch(n_txns, 0x00F1_6011);
            let (sched, _store) = build_scheduler(kind, &w);
            let cfg = ConcurrentConfig {
                workers,
                ..ConcurrentConfig::default()
            };
            let out = run_concurrent(sched.as_ref(), programs, &cfg);
            points.push(HotpathPoint {
                scheduler: kind.name(),
                workers,
                offered: n_txns,
                committed: out.stats.committed,
                elapsed_s: out.elapsed.as_secs_f64(),
                commits_per_sec: out.throughput,
                ops_per_sec: out.stats.steps as f64 / out.elapsed.as_secs_f64().max(1e-9),
                serializable: out.stats.serializable.unwrap_or(false),
                versions_gced: out.stats.metrics.versions_gced,
                timewalls_released: out.stats.metrics.timewalls_released,
            });
        }
    }
    points
}

/// Serialize the sweep as JSON (hand-rolled; no serde in this build).
pub fn to_json(points: &[HotpathPoint]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"hotpath\",\n  \"workload\": \"inventory\",\n  \"results\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"workers\": {}, \"offered\": {}, \"committed\": {}, \
             \"elapsed_s\": {:.6}, \"commits_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
             \"serializable\": {}}}{}\n",
            p.scheduler,
            p.workers,
            p.offered,
            p.committed,
            p.elapsed_s,
            p.commits_per_sec,
            p.ops_per_sec,
            p.serializable,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run E13 and return the table. Full runs write `BENCH_hotpath.json`
/// into the current directory; quick (smoke) runs leave the canonical
/// artifact alone.
pub fn run(quick: bool) -> Table {
    let points = sweep(quick);
    if !quick {
        if let Err(e) = std::fs::write("BENCH_hotpath.json", to_json(&points)) {
            eprintln!("warning: could not write BENCH_hotpath.json: {e}");
        }
    }
    let mut table = Table::new(
        "E13 — hot-path throughput (inventory, concurrent driver)",
        &[
            "scheduler",
            "workers",
            "committed",
            "commits_per_sec",
            "ops_per_sec",
            "serializable",
            "versions_gced",
            "walls_released",
        ],
    );
    for p in &points {
        table.row(&[
            p.scheduler.to_string(),
            p.workers.to_string(),
            p.committed.to_string(),
            f2(p.commits_per_sec),
            f2(p.ops_per_sec),
            format!("{:?}", p.serializable),
            p.versions_gced.to_string(),
            p.timewalls_released.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_serializes_and_emits_json() {
        let points = sweep(true);
        assert_eq!(points.len(), SCHEDULERS.len() * 2);
        for p in &points {
            assert!(p.serializable, "{} at {} workers", p.scheduler, p.workers);
            assert!(p.committed > 0);
            assert!(p.commits_per_sec > 0.0);
        }
        let json = to_json(&points);
        assert!(json.contains("\"scheduler\": \"hdd\""));
        assert!(json.contains("\"workers\": 2"));
    }
}
