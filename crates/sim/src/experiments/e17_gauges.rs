//! **E17 — hierarchy observatory: cross-read staleness by (reader,
//! segment)** (no paper figure; ours).
//!
//! Runs each bundled workload under HDD with the `obs` sidecar and the
//! gauge board enabled, and reports the signal Protocols A and C trade
//! away freshness for: on every unregistered read the scheduler records
//! `read_ts − version_ts` into the `(reader class, source segment)`
//! staleness cell ([`obs::GaugeBoard::record_staleness`]). Class
//! readers are Protocol A (activity-link bounds); the synthetic `wall`
//! reader row is Protocol C (time-wall reads by off-chain ad-hoc
//! read-only transactions). Banking decomposes into a single class, so
//! it rides along as the no-cross-read control (its staleness table is
//! legitimately empty). Staleness is strictly positive by protocol
//! correctness — served version < bound ≤ reader start (DESIGN.md §10)
//! — so every cell's minimum is at least 1 tick.
//!
//! Like E14, each cell runs a warmup batch and reports the measured
//! interval only. Full runs emit `BENCH_e17.json`:
//!
//! ```text
//! cargo run --release -p sim --bin experiments -- e17
//! ```

use crate::concurrent::{run_concurrent, ConcurrentConfig};
use crate::factory::build_hdd_with_config;
use crate::report::{f2, Table};
use hdd::protocol::HddConfig;
use obs::GaugeSnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::{MetricsSnapshot, Scheduler};
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

/// One workload's measured interval under the gauge board.
#[derive(Debug, Clone)]
pub struct GaugePoint {
    /// Workload name.
    pub workload: &'static str,
    /// Worker threads.
    pub workers: usize,
    /// Transactions committed in the measured interval.
    pub committed: usize,
    /// Committed transactions per second (measured interval).
    pub commits_per_sec: f64,
    /// Gauge board after a forced full refresh at end of run; its
    /// staleness cells cover the measured interval (the warmup's
    /// samples are cleared by the pre-interval reset).
    pub gauges: GaugeSnapshot,
    /// Segment display names, indexed by segment id.
    pub segment_names: Vec<String>,
    /// Counter deltas over the measured interval.
    pub interval: MetricsSnapshot,
}

/// Run one workload: warmup batch, reset, measured batch, full gauge
/// refresh, snapshot.
fn run_one<W: Workload>(mut w: W, quick: bool, seed: u64) -> GaugePoint {
    let n_txns = if quick { 250 } else { 12_000 };
    let workers = if quick { 2 } else { 4 };
    let mut rng = StdRng::seed_from_u64(seed);
    let warmup: Vec<_> = (0..n_txns / 10).map(|_| w.generate(&mut rng)).collect();
    let programs: Vec<_> = (0..n_txns).map(|_| w.generate(&mut rng)).collect();
    let (sched, _store, _hierarchy) = build_hdd_with_config(&w, HddConfig::default());
    let cfg = ConcurrentConfig {
        workers,
        obs: true,
        verify: false,
        capture_log: false,
        ..ConcurrentConfig::default()
    };
    run_concurrent(sched.as_ref(), warmup, &cfg);
    let before = sched.metrics().snapshot();
    sched.metrics().obs.reset(); // clears warmup staleness; board stays configured
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    sched.refresh_gauges_now();
    GaugePoint {
        workload: w.name(),
        workers,
        committed: out.stats.committed,
        commits_per_sec: out.throughput,
        gauges: sched.metrics().obs.gauges.snapshot(),
        segment_names: w.segment_names(),
        interval: sched.metrics().snapshot().delta(&before),
    }
}

/// Run the three bundled workloads and return the raw points.
pub fn sweep(quick: bool) -> Vec<GaugePoint> {
    vec![
        run_one(
            Inventory::new(InventoryConfig {
                items: 32,
                ..InventoryConfig::default()
            }),
            quick,
            0x0E17_0001,
        ),
        run_one(Banking::new(16), quick, 0x0E17_0002),
        run_one(
            Synthetic::new(SyntheticConfig::default()),
            quick,
            0x0E17_0003,
        ),
    ]
}

/// Serialize the sweep as JSON (hand-rolled; no serde in this build).
pub fn to_json(points: &[GaugePoint]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"gauges\",\n  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"workers\": {}, \"committed\": {}, \
             \"commits_per_sec\": {:.1}, \"cross_class_reads\": {}, \"wall_reads\": {},\n     \
             \"gauges\": {}}}{}\n",
            p.workload,
            p.workers,
            p.committed,
            p.commits_per_sec,
            p.interval.cross_class_reads,
            p.interval.wall_reads,
            p.gauges.to_json(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The headline staleness table: one row per non-empty
/// (reader, source segment) cell, staleness in clock ticks.
pub fn staleness_table(points: &[GaugePoint]) -> Table {
    let mut t = Table::new(
        "E17 — cross-read staleness by (reader, source segment), clock ticks",
        &[
            "cell", "workload", "reader", "segment", "reads", "p50", "p99", "max",
        ],
    );
    for p in points {
        for cell in &p.gauges.staleness {
            let seg = p
                .segment_names
                .get(cell.segment as usize)
                .cloned()
                .unwrap_or_else(|| format!("s{}", cell.segment));
            t.row(&[
                format!("{}:{}:{}", p.workload, cell.reader_label(), seg),
                p.workload.to_string(),
                cell.reader_label(),
                seg,
                cell.hist.count.to_string(),
                cell.hist.p50().to_string(),
                cell.hist.p99().to_string(),
                cell.hist.max.to_string(),
            ]);
        }
    }
    t
}

/// The gauge-board summary table (one row per workload).
pub fn gauges_table(points: &[GaugePoint]) -> Table {
    let mut t = Table::new(
        "E17 — gauge board at end of measured interval",
        &[
            "workload",
            "commits_per_sec",
            "wall_floor",
            "wall_lag",
            "registry_intervals",
            "settled_lag",
            "store_versions",
            "max_chain",
            "gc_backlog",
            "cross_reads",
            "wall_reads",
        ],
    );
    for p in points {
        let g = &p.gauges;
        t.row(&[
            p.workload.to_string(),
            f2(p.commits_per_sec),
            g.wall_floor.to_string(),
            g.wall_lag.to_string(),
            g.registry_intervals.to_string(),
            g.registry_settled_lag.to_string(),
            g.store_versions.to_string(),
            g.store_max_chain.to_string(),
            g.gc_backlog.to_string(),
            p.interval.cross_class_reads.to_string(),
            p.interval.wall_reads.to_string(),
        ]);
    }
    t
}

/// Run E17 and return the staleness table (the gauge summary is printed
/// to stdout alongside). Full runs write the JSON artifact to
/// `json_path`; quick runs leave the canonical artifact alone.
pub fn run_with_path(quick: bool, json_path: &str) -> Table {
    let points = sweep(quick);
    if !quick {
        if let Err(e) = std::fs::write(json_path, to_json(&points)) {
            eprintln!("warning: could not write {json_path}: {e}");
        }
    }
    println!("{}", gauges_table(&points));
    staleness_table(&points)
}

/// Run E17 with the default artifact path.
pub fn run(quick: bool) -> Table {
    run_with_path(quick, "BENCH_e17.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::WALL_READER;

    #[test]
    fn quick_sweep_fills_staleness_cells_for_every_workload() {
        let points = sweep(true);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.committed > 0, "{}", p.workload);
            assert!(p.gauges.configured, "{}: board dimensioned", p.workload);
            if p.workload == "banking" {
                // Control: a single-class decomposition has no cross
                // reads, so its staleness table is legitimately empty.
                assert!(p.gauges.staleness.is_empty(), "banking cannot cross-read");
                assert_eq!(p.interval.cross_class_reads + p.interval.wall_reads, 0);
            } else {
                assert!(
                    !p.gauges.staleness.is_empty(),
                    "{}: no cross-read staleness recorded",
                    p.workload
                );
            }
            for cell in &p.gauges.staleness {
                // Strict positivity is a Protocol A guarantee: the
                // activity-link bound never exceeds the reader's start.
                // Wall rows are only non-negative — a reader that
                // begins before the first wall release adopts a wall
                // from its future (the `earliest()` fallback), and a
                // `B`/`C_late` step can push a component past the
                // reader's start, so `start − version` saturates to 0
                // on those startup-transient reads (DESIGN.md §10).
                if cell.reader != obs::gauges::WALL_READER {
                    assert!(
                        cell.hist.min >= 1 && cell.hist.p50() >= 1,
                        "{}: Protocol A staleness must be strictly positive ({} seg {}: min {})",
                        p.workload,
                        cell.reader_label(),
                        cell.segment,
                        cell.hist.min
                    );
                }
            }
            // One staleness sample per *served* Protocol A/C read: the
            // counters bump per attempt, and the only attempt that is
            // counted but not served is the defensive wall-violation
            // block (zero in a sound run).
            let recorded: u64 = p.gauges.staleness.iter().map(|c| c.hist.count).sum();
            assert_eq!(
                recorded + p.interval.wall_violations,
                p.interval.cross_class_reads + p.interval.wall_reads,
                "{}: one staleness sample per served Protocol A/C read",
                p.workload
            );
        }
        // The synthetic workload's off-chain read-only transactions ride
        // Protocol C, so it must populate the wall-reader row.
        let synth = points.iter().find(|p| p.workload == "synthetic").unwrap();
        assert!(
            synth
                .gauges
                .staleness
                .iter()
                .any(|c| c.reader == WALL_READER),
            "synthetic workload produced no wall-reader staleness"
        );
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"gauges\""));
        assert!(json.contains("\"reader\": \"wall\""));
        let t = staleness_table(&points);
        assert!(!t.rows.is_empty());
    }
}
