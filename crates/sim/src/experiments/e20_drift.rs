//! **E20 — workload drift observatory: detection latency and online
//! advice vs offline lint** (no paper figure; ours).
//!
//! The paper's decomposition is chosen *a-priori* from declared
//! transaction shapes (Section 3); Section 7.1.1 only sketches dynamic
//! restructuring. This experiment closes the loop empirically: a
//! four-segment workload whose grouped hierarchy `T0={D0,D1}`,
//! `T1={D2}`, `T2={D3}` is driven through HDD with the drift sketch
//! ([`obs::DriftBoard`]) enabled, and mid-run the class/segment mix
//! shifts — the cycle-closing `b` shape (writes `D1`, reads `D0`)
//! goes from absent to dominant. We measure:
//!
//! 1. **Detection latency**: folds from the shift until the drift
//!    score trips its threshold (bounded; quick CI asserts ≤ 3).
//! 2. **Online = offline**: after the shift, the advisor's suggested
//!    repartition over the *observed* co-access DHG must equal the
//!    offline `repartition_to_tst` / `hdd-lint` repair for the
//!    post-shift spec set (merge `D0+D1` — which is exactly the
//!    grouping the hierarchy already runs, so the advisor reports
//!    *optimal*); before the shift the same machinery suggests the
//!    *split* of `{D0,D1}`.
//! 3. **Negative control**: the steady phase never trips.
//! 4. **Overhead**: hot-path throughput with the sketch enabled must
//!    hold ≥ 90% of the obs-only baseline (enforced in release mode by
//!    the `drift-smoke` CI stage, reported here).
//!
//! Full runs emit `BENCH_e20.json`:
//!
//! ```text
//! cargo run --release -p sim --bin experiments -- e20
//! ```

use crate::concurrent::{run_concurrent, ConcurrentConfig};
use crate::factory::build_hdd_with_config;
use crate::report::{f2, Table};
use certify::{advise, canonical_labels, lint_specs, DEFAULT_MIN_EDGE};
use hdd::analysis::{build_dhg, AccessSpec, Hierarchy};
use hdd::decompose::repartition_to_tst;
use hdd::protocol::HddConfig;
use mvstore::StorageBackend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txn_model::{ClassId, GranuleId, Scheduler, SegmentId, TxnProfile, TxnProgram, Value};
use workloads::Workload;

fn s(i: u32) -> SegmentId {
    SegmentId(i)
}

/// The phased workload: four segments under the grouped hierarchy
/// `T0={D0,D1} ← T1={D2} ← T2={D3}`. Shapes:
///
/// * `a` — writes `D0`, reads `D1` (class 0);
/// * `b` — writes `D1`, reads `D0` (class 0; the cycle-closer at the
///   segment level — absent in the steady phase, dominant after the
///   shift);
/// * `c` — writes `D2`, reads `D0` (class 1);
/// * `d` — writes `D3`, reads `D2`,`D0` (class 2);
/// * `ro` — ad-hoc read-only over `D0`,`D3` (one critical path →
///   Protocol A cross-reads feeding the access sketch).
#[derive(Debug, Clone)]
pub struct Phased {
    /// False = steady phase (no `b`); true = shifted phase (`b` is
    /// half the mix).
    pub shifted: bool,
    granules: u64,
}

impl Phased {
    /// A steady-phase instance with the given granules per segment.
    pub fn new(granules: u64) -> Self {
        Phased {
            shifted: false,
            granules,
        }
    }

    fn granule(&self, seg: u32, rng: &mut StdRng) -> GranuleId {
        GranuleId::new(s(seg), rng.gen_range(0..self.granules))
    }

    /// An update transaction writing `write_seg` in `class`, reading
    /// `reads` (cross or intra) plus its own write granule.
    fn update(
        &self,
        name: &str,
        class: u32,
        write_seg: u32,
        reads: &[u32],
        rng: &mut StdRng,
    ) -> TxnProgram {
        let mut b = TxnProgram::builder(name.to_string());
        for &r in reads {
            b = b.read(self.granule(r, rng));
        }
        let own = self.granule(write_seg, rng);
        b = b.read(own);
        b = b.write_computed(own, move |ctx| Value::Int(ctx.int(own) + 1));
        let mut segs: Vec<SegmentId> = reads.iter().map(|&r| s(r)).collect();
        segs.push(s(write_seg));
        // The grouped hierarchy breaks the identity class↔segment map,
        // so declare the written segment explicitly rather than relying
        // on `TxnProfile::update`'s root-segment convention.
        b.build(TxnProfile {
            class: Some(ClassId(class)),
            read_segments: segs,
            write_segments: vec![s(write_seg)],
        })
    }

    fn read_only(&self, rng: &mut StdRng) -> TxnProgram {
        let mut b = TxnProgram::builder("ro");
        b = b.read(self.granule(0, rng));
        b = b.read(self.granule(3, rng));
        b.build(TxnProfile::read_only(vec![s(0), s(3)]))
    }
}

impl Workload for Phased {
    fn name(&self) -> &'static str {
        "phased-drift"
    }

    fn segments(&self) -> usize {
        4
    }

    fn specs(&self) -> Vec<AccessSpec> {
        // The declared shapes include `b`: the hierarchy was designed
        // for the full mix, which is why {D0,D1} share a class.
        observed_specs(true)
    }

    fn hierarchy(&self) -> Hierarchy {
        Hierarchy::build_grouped(
            4,
            &self.specs(),
            vec![ClassId(0), ClassId(0), ClassId(1), ClassId(2)],
            3,
        )
        .expect("the phased grouping is a legal TST")
        .with_segment_names(self.segment_names())
    }

    fn seed(&self, store: &dyn StorageBackend) {
        for seg in 0..4u32 {
            for key in 0..self.granules {
                store.seed(GranuleId::new(s(seg), key), Value::Int(0));
            }
        }
    }

    fn generate(&mut self, rng: &mut StdRng) -> TxnProgram {
        let u: f64 = rng.gen();
        if self.shifted {
            // b-heavy: the cycle-closer is half the mix.
            if u < 0.50 {
                self.update("b", 0, 1, &[0], rng)
            } else if u < 0.70 {
                self.update("a", 0, 0, &[1], rng)
            } else if u < 0.80 {
                self.update("c", 1, 2, &[0], rng)
            } else if u < 0.90 {
                self.update("d", 2, 3, &[2, 0], rng)
            } else {
                self.read_only(rng)
            }
        } else if u < 0.45 {
            self.update("a", 0, 0, &[1], rng)
        } else if u < 0.65 {
            self.update("c", 1, 2, &[0], rng)
        } else if u < 0.85 {
            self.update("d", 2, 3, &[2, 0], rng)
        } else {
            self.read_only(rng)
        }
    }
}

/// The identity-segment spec set a linter would see for one phase:
/// the steady mix omits `b`; the shifted mix includes it (closing the
/// `D0 ↔ D1` cycle).
pub fn observed_specs(shifted: bool) -> Vec<AccessSpec> {
    let mut v = vec![
        AccessSpec::new("a", vec![s(0)], vec![s(1)]),
        AccessSpec::new("c", vec![s(2)], vec![s(0)]),
        AccessSpec::new("d", vec![s(3)], vec![s(2), s(0)]),
    ];
    if shifted {
        v.push(AccessSpec::new("b", vec![s(1)], vec![s(0)]));
    }
    v
}

/// Everything E20 measured.
#[derive(Debug, Clone)]
pub struct DriftOutcome {
    /// Transactions committed across both phases (main leg).
    pub committed: usize,
    /// Highest combined drift score over the steady post-seed folds.
    pub steady_max_score_milli: u64,
    /// Did the negative control trip? (Must be false.)
    pub steady_tripped: bool,
    /// Advisor quality for the steady phase (grouping is stale there:
    /// the observed DHG is a TST without merging `{D0,D1}`).
    pub phase_a_quality_milli: u64,
    /// First advisor suggestion in the steady phase (the split).
    pub phase_a_advice: String,
    /// Folds from the mix shift until the board tripped (None = never,
    /// within the sub-batch budget).
    pub detection_folds: Option<u64>,
    /// Combined score at (or after) the trip.
    pub trip_score_milli: u64,
    /// Threshold in force.
    pub threshold_milli: u64,
    /// Advisor quality after the shift (1000: the running grouping IS
    /// the post-shift repair).
    pub post_quality_milli: u64,
    /// Advisor verdict after the shift.
    pub post_optimal: bool,
    /// Online advised partition == offline `repartition_to_tst` of the
    /// post-shift spec DHG.
    pub online_matches_offline: bool,
    /// The offline linter's repair text for the post-shift specs.
    pub offline_merge_help: String,
    /// Did the trace ring carry a `drift-trip` instant (the Perfetto
    /// marker)?
    pub trace_has_trip_instant: bool,
    /// Steady-mix throughput, obs on + drift off.
    pub obs_only_cps: f64,
    /// Steady-mix throughput, obs on + drift on.
    pub obs_drift_cps: f64,
    /// `obs_drift_cps / obs_only_cps` (drift-smoke enforces ≥ 0.9 in
    /// release).
    pub overhead_ratio: f64,
}

/// Drive the phased run and both overhead legs.
pub fn measure(quick: bool) -> DriftOutcome {
    let sub_txns = if quick { 400 } else { 4_000 };
    let workers = if quick { 2 } else { 4 };
    let mut w = Phased::new(64);
    // drift_interval 0: folds happen only at our phase boundaries, so
    // detection latency is deterministic in folds, not racy in ticks.
    let (sched, _store, hierarchy) = build_hdd_with_config(
        &w,
        HddConfig {
            drift_interval: 0,
            ..HddConfig::default()
        },
    );
    let obs = &sched.metrics().obs;
    obs.set_enabled(true);
    obs.drift.set_enabled(true);
    let cfg = ConcurrentConfig {
        workers,
        obs: true,
        verify: false,
        capture_log: false,
        ..ConcurrentConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0x0E20_0001);
    let mut committed = 0usize;

    // Steady phase: 4 sub-batches. The first fold seeds the EWMA
    // baselines; the remaining three are the negative control.
    let mut steady_max_score = 0u64;
    for sub in 0..4 {
        let programs: Vec<_> = (0..sub_txns).map(|_| w.generate(&mut rng)).collect();
        committed += run_concurrent(sched.as_ref(), programs, &cfg)
            .stats
            .committed;
        sched.refresh_gauges_now();
        sched.refresh_drift_now();
        if sub > 0 {
            steady_max_score = steady_max_score.max(obs.drift.score_milli());
        }
    }
    let steady_tripped = obs.drift.tripped();
    let phase_a = advise(&hierarchy, &obs.drift.snapshot(), DEFAULT_MIN_EDGE);

    // Shift: the b-heavy mix. Fold after every sub-batch until the
    // board trips (budget: 6 folds).
    w.shifted = true;
    let mut detection_folds = None;
    for sub in 0..6u64 {
        let programs: Vec<_> = (0..sub_txns).map(|_| w.generate(&mut rng)).collect();
        committed += run_concurrent(sched.as_ref(), programs, &cfg)
            .stats
            .committed;
        sched.refresh_gauges_now();
        sched.refresh_drift_now();
        if obs.drift.tripped() {
            detection_folds = Some(sub + 1);
            break;
        }
    }
    let post_snap = obs.drift.snapshot();
    let post = advise(&hierarchy, &post_snap, DEFAULT_MIN_EDGE);

    // Offline ground truth for the post-shift workload.
    let offline_plan = repartition_to_tst(&build_dhg(4, &observed_specs(true)));
    let offline_labels = canonical_labels(
        &offline_plan
            .group_of
            .iter()
            .map(|c| c.index())
            .collect::<Vec<_>>(),
    );
    let lint = lint_specs(4, &observed_specs(true), None, "post-shift phase");
    let offline_merge_help = lint
        .diagnostics
        .iter()
        .find_map(|d| d.help.clone())
        .unwrap_or_default();

    let trace_has_trip_instant = obs
        .trace
        .drain()
        .iter()
        .any(|(_, e)| e.kind() == "drift-trip");

    // Overhead legs: same steady mix, fresh schedulers, obs on in both;
    // the sketch's own switch is the only difference. Best-of-3 per leg
    // (the repo's smoke idiom) so scheduler jitter doesn't dominate the
    // single-digit-percent cost being measured.
    let over_txns = if quick { 1_500 } else { 12_000 };
    let leg = |drift_on: bool, seed: u64| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let mut w = Phased::new(64);
            let mut rng = StdRng::seed_from_u64(seed);
            let programs: Vec<_> = (0..over_txns).map(|_| w.generate(&mut rng)).collect();
            let (sched, _store, _h) = build_hdd_with_config(&w, HddConfig::default());
            sched.metrics().obs.set_enabled(true);
            sched.metrics().obs.drift.set_enabled(drift_on);
            best = best.max(run_concurrent(sched.as_ref(), programs, &cfg).throughput);
        }
        best
    };
    let obs_only_cps = leg(false, 0x0E20_00FF);
    let obs_drift_cps = leg(true, 0x0E20_00FF);

    DriftOutcome {
        committed,
        steady_max_score_milli: steady_max_score,
        steady_tripped,
        phase_a_quality_milli: phase_a.quality_milli,
        phase_a_advice: phase_a
            .suggestions
            .first()
            .map(|a| phase_a.advice_text(a))
            .unwrap_or_default(),
        detection_folds,
        trip_score_milli: post_snap.score_milli,
        threshold_milli: post_snap.threshold_milli,
        post_quality_milli: post.quality_milli,
        post_optimal: post.hierarchy_is_optimal(),
        online_matches_offline: post.advised_labels == offline_labels,
        offline_merge_help,
        trace_has_trip_instant,
        obs_only_cps,
        obs_drift_cps,
        overhead_ratio: if obs_only_cps > 0.0 {
            obs_drift_cps / obs_only_cps
        } else {
            0.0
        },
    }
}

/// Serialize the outcome as JSON (hand-rolled; no serde in this build).
pub fn to_json(o: &DriftOutcome) -> String {
    format!(
        "{{\n  \"experiment\": \"drift\",\n  \"committed\": {},\n  \
         \"steady_max_score_milli\": {},\n  \"steady_tripped\": {},\n  \
         \"phase_a_quality_milli\": {},\n  \"phase_a_advice\": \"{}\",\n  \
         \"detection_folds\": {},\n  \"trip_score_milli\": {},\n  \
         \"threshold_milli\": {},\n  \"post_quality_milli\": {},\n  \
         \"post_optimal\": {},\n  \"online_matches_offline\": {},\n  \
         \"offline_merge_help\": \"{}\",\n  \"trace_has_trip_instant\": {},\n  \
         \"obs_only_commits_per_sec\": {:.1},\n  \
         \"obs_drift_commits_per_sec\": {:.1},\n  \"overhead_ratio\": {:.3}\n}}\n",
        o.committed,
        o.steady_max_score_milli,
        o.steady_tripped,
        o.phase_a_quality_milli,
        certify::diag::json_escape(&o.phase_a_advice),
        o.detection_folds
            .map_or("null".to_string(), |f| f.to_string()),
        o.trip_score_milli,
        o.threshold_milli,
        o.post_quality_milli,
        o.post_optimal,
        o.online_matches_offline,
        certify::diag::json_escape(&o.offline_merge_help),
        o.trace_has_trip_instant,
        o.obs_only_cps,
        o.obs_drift_cps,
        o.overhead_ratio,
    )
}

/// The headline table.
pub fn table(o: &DriftOutcome) -> Table {
    let mut t = Table::new(
        "E20 — workload drift: detection latency, online vs offline advice, overhead",
        &["metric", "value", "expectation"],
    );
    t.row(&[
        "steady-max-score".to_string(),
        format!("{}‰", o.steady_max_score_milli),
        format!("< {}‰ (no trip)", o.threshold_milli),
    ]);
    t.row(&[
        "steady-tripped".to_string(),
        o.steady_tripped.to_string(),
        "false".to_string(),
    ]);
    t.row(&[
        "phase-a-advice".to_string(),
        format!("quality {}‰: {}", o.phase_a_quality_milli, o.phase_a_advice),
        "split of {D0,D1}".to_string(),
    ]);
    t.row(&[
        "detection-folds".to_string(),
        o.detection_folds
            .map_or("never".to_string(), |f| f.to_string()),
        "<= 3".to_string(),
    ]);
    t.row(&[
        "trip-score".to_string(),
        format!("{}‰ / {}‰", o.trip_score_milli, o.threshold_milli),
        "over threshold".to_string(),
    ]);
    t.row(&[
        "post-shift-advice".to_string(),
        format!(
            "quality {}‰, optimal={}",
            o.post_quality_milli, o.post_optimal
        ),
        "optimal (grouping = repair)".to_string(),
    ]);
    t.row(&[
        "online-vs-offline".to_string(),
        o.online_matches_offline.to_string(),
        "true".to_string(),
    ]);
    t.row(&[
        "offline-merge-help".to_string(),
        o.offline_merge_help.clone(),
        "merge D0+D1".to_string(),
    ]);
    t.row(&[
        "trip-instant".to_string(),
        o.trace_has_trip_instant.to_string(),
        "in Perfetto trace".to_string(),
    ]);
    t.row(&[
        "overhead".to_string(),
        format!(
            "{} vs {} c/s (ratio {})",
            f2(o.obs_drift_cps),
            f2(o.obs_only_cps),
            f2(o.overhead_ratio)
        ),
        ">= 0.9 (release)".to_string(),
    ]);
    t
}

/// Run E20; full runs write the JSON artifact to `json_path`.
pub fn run_with_path(quick: bool, json_path: &str) -> Table {
    let o = measure(quick);
    if !quick {
        if let Err(e) = std::fs::write(json_path, to_json(&o)) {
            eprintln!("warning: could not write {json_path}: {e}");
        }
    }
    table(&o)
}

/// Run E20 with the default artifact path.
pub fn run(quick: bool) -> Table {
    run_with_path(quick, "BENCH_e20.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phased_workload_is_legal_and_both_phases_generate_every_shape() {
        let mut w = Phased::new(16);
        let h = w.hierarchy();
        assert_eq!(h.class_count(), 3);
        assert_eq!(h.class_of(s(0)), h.class_of(s(1)), "D0,D1 share a class");
        let mut rng = StdRng::seed_from_u64(7);
        for shifted in [false, true] {
            w.shifted = shifted;
            let mut names = std::collections::BTreeSet::new();
            for _ in 0..300 {
                let p = w.generate(&mut rng);
                h.validate_profile(&p.profile)
                    .expect("every generated profile is hierarchy-legal");
                names.insert(p.label.clone());
            }
            assert_eq!(
                names.contains("b"),
                shifted,
                "the cycle-closer only appears after the shift"
            );
            for required in ["a", "c", "d", "ro"] {
                assert!(names.contains(required), "{required} missing");
            }
        }
    }

    #[test]
    fn offline_ground_truth_merges_d0_d1_only_after_the_shift() {
        let steady = repartition_to_tst(&build_dhg(4, &observed_specs(false)));
        assert!(steady.is_identity(), "steady observed DHG is already a TST");
        let shifted = repartition_to_tst(&build_dhg(4, &observed_specs(true)));
        assert_eq!(shifted.merges, vec![(0, 1)]);
        assert_eq!(shifted.n_classes, 3);
        let lint = lint_specs(4, &observed_specs(true), None, "shifted");
        assert!(!lint.ok(), "the shifted spec set has a directed cycle");
        let help = lint
            .diagnostics
            .iter()
            .find_map(|d| d.help.as_deref())
            .unwrap();
        assert!(help.contains("merge segments D0+D1"), "{help}");
    }

    #[test]
    fn quick_run_detects_the_shift_and_matches_offline_advice() {
        let o = measure(true);
        assert!(o.committed > 0);
        // Negative control: the steady phase must stay silent.
        assert!(!o.steady_tripped, "steady phase tripped the board");
        assert!(
            o.steady_max_score_milli < o.threshold_milli,
            "steady score {}‰ reached the {}‰ threshold",
            o.steady_max_score_milli,
            o.threshold_milli
        );
        // Steady-phase advice: the observed DHG needs no merge, so the
        // running {D0,D1} grouping is stale — a split suggestion.
        assert!(o.phase_a_quality_milli < 1000);
        assert!(
            o.phase_a_advice.contains("split segments D0 / D1"),
            "{}",
            o.phase_a_advice
        );
        // Detection: bounded latency after the mix shift.
        let folds = o.detection_folds.expect("the shift was never detected");
        assert!(folds <= 3, "detection took {folds} folds");
        assert!(o.trip_score_milli >= o.threshold_milli);
        assert!(o.trace_has_trip_instant, "no drift-trip trace instant");
        // Online advice == offline lint for the post-shift workload.
        assert!(o.post_optimal, "post-shift grouping must be optimal");
        assert_eq!(o.post_quality_milli, 1000);
        assert!(o.online_matches_offline);
        assert!(
            o.offline_merge_help.contains("merge segments D0+D1"),
            "{}",
            o.offline_merge_help
        );
        // Overhead legs ran; the ≥0.9 floor is enforced in release by
        // drift-smoke (debug-mode ratios are too noisy to gate here).
        assert!(o.obs_only_cps > 0.0 && o.obs_drift_cps > 0.0);
        let json = to_json(&o);
        assert!(json.contains("\"experiment\": \"drift\""));
        assert!(json.contains("\"online_matches_offline\": true"));
        let t = table(&o);
        assert_eq!(t.rows.len(), 10);
    }
}
