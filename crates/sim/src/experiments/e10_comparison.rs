//! **E10 (Figure 10)** — the scheduler comparison table, quantified.
//!
//! Figure 10 compares HDD, SDD-1 and MV2PL qualitatively (inter-class
//! synchronization: "never reject or block a read request" vs "may cause
//! read requests to be rejected or blocked"; read-only handling; etc.).
//! This experiment measures those claims on the paper's own inventory
//! application and on a deeper synthetic hierarchy, for all six sound
//! schedulers.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::{build_scheduler, ALL_KINDS};
use crate::report::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::TxnProgram;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

fn inventory_batch(n: usize) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 32,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x00F1_6010);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

fn synthetic_batch(n: usize) -> (Synthetic, Vec<TxnProgram>) {
    let mut w = Synthetic::new(SyntheticConfig {
        depth: 4,
        fanout: 2,
        granules_per_segment: 64,
        ..SyntheticConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x00F1_6011);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

/// Run E10.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 120 } else { 700 };
    let mut table = Table::new(
        "E10 / Figure 10 — HDD vs SDD-1 vs MV2PL (and classical baselines)",
        &[
            "row",
            "workload",
            "scheduler",
            "commits",
            "regs_per_commit",
            "blocks_per_commit",
            "rejections",
            "rej_breakdown",
            "restarts",
            "serializable",
        ],
    );
    for (workload_name, make) in [("inventory", true), ("synthetic-d4", false)] {
        for &kind in ALL_KINDS {
            let stats = if make {
                let (w, programs) = inventory_batch(n_txns);
                let (sched, _store) = build_scheduler(kind, &w);
                run_interleaved(sched.as_ref(), programs, &DriverConfig::default())
            } else {
                let (w, programs) = synthetic_batch(n_txns);
                let (sched, _store) = build_scheduler(kind, &w);
                run_interleaved(sched.as_ref(), programs, &DriverConfig::default())
            };
            let m = &stats.metrics;
            let bpc = if stats.committed == 0 {
                0.0
            } else {
                m.blocks as f64 / stats.committed as f64
            };
            table.row(&[
                format!("{workload_name}/{}", kind.name()),
                workload_name.to_string(),
                kind.name().to_string(),
                stats.committed.to_string(),
                f2(m.read_registrations_per_commit()),
                f2(bpc),
                m.rejections.to_string(),
                m.rejection_breakdown(),
                stats.restarts.to_string(),
                format!("{:?}", stats.serializable.unwrap_or(false)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_claims_hold() {
        let t = run(true);
        let get = |row: &str, col: &str| t.cell(row, col).unwrap().to_string();
        let f = |row: &str, col: &str| get(row, col).parse::<f64>().unwrap();

        for wl in ["inventory", "synthetic-d4"] {
            for k in ["hdd", "2pl", "tso", "mvto", "mv2pl", "sdd1"] {
                assert_eq!(
                    get(&format!("{wl}/{k}"), "serializable"),
                    "true",
                    "{wl}/{k}"
                );
            }
            // HDD registers the least among registration-based schemes.
            let hdd = f(&format!("{wl}/hdd"), "regs_per_commit");
            for k in ["2pl", "tso", "mvto", "mv2pl"] {
                assert!(
                    hdd < f(&format!("{wl}/{k}"), "regs_per_commit"),
                    "{wl}: hdd ({hdd}) must register less than {k}"
                );
            }
            // SDD-1 registers nothing but blocks more than HDD.
            assert_eq!(f(&format!("{wl}/sdd1"), "regs_per_commit"), 0.0);
            assert!(
                f(&format!("{wl}/sdd1"), "blocks_per_commit")
                    > f(&format!("{wl}/hdd"), "blocks_per_commit"),
                "{wl}: SDD-1 pipelining must block more than HDD"
            );
        }
    }
}
