//! **E18 — flight-recorder blame profile** (no paper figure; ours).
//!
//! For each worker count, two hdd runs over the same inventory batch:
//! one with the flight recorder **off** (the tracing-disabled
//! throughput, which must track `BENCH_hotpath.json`) and one with it
//! sampling every 4th transaction. The traced run's span stream is
//! assembled into flight trees and reduced to the two headline
//! artifacts of the recorder:
//!
//! * a [`BlameReport`] — measured block time bucketed by *cause edge*
//!   (which transaction class, or which pending time wall, the waiter
//!   was blocked on), with the attribution coverage fraction;
//! * a committed-flight [`PhaseBreakdown`] — read/write/commit service
//!   vs. blocked vs. driver-other time across every sampled commit.
//!
//! Full runs emit `BENCH_e18.json` so the blame profile has a recorded
//! trajectory, like `BENCH_hotpath.json` for raw throughput:
//!
//! ```text
//! cargo run --release -p sim --bin experiments -- e18
//! ```

use crate::baseline::recorded_commits_per_sec;
use crate::concurrent::{run_concurrent, ConcurrentConfig};
use crate::experiments::e02_inventory::batch;
use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::{f2, Table};
use obs::{assemble, BlameReport, PhaseBreakdown};

/// Sampling stride for the traced leg: every 4th transaction gets a
/// full span tree, the rest stay counter-only.
pub const SAMPLE_EVERY: u64 = 4;

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct BlamePoint {
    /// Worker threads.
    pub workers: usize,
    /// Commits/sec with the flight recorder (and obs) disabled.
    pub disabled_cps: f64,
    /// Commits/sec with obs on and the recorder sampling 1-in-4.
    pub traced_cps: f64,
    /// Recorded `BENCH_hotpath.json` hdd baseline for this worker
    /// count, when present.
    pub baseline_cps: Option<f64>,
    /// Wait-cause blame over the sampled flights.
    pub blame: BlameReport,
    /// Phase profile over the sampled committed flights.
    pub phases: PhaseBreakdown,
    /// Sampled flights assembled (terminated + open).
    pub flights: usize,
    /// Flights still open after the run — must be zero.
    pub open: usize,
}

/// Run the sweep and return the raw points.
pub fn sweep(quick: bool) -> Vec<BlamePoint> {
    let n_txns = if quick { 300 } else { 8_000 };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8, 16] };
    let mut points = Vec::new();
    for &workers in worker_counts {
        // Leg 1: tracing disabled — the throughput the recorder must
        // not disturb.
        let (w, programs) = batch(n_txns, 0x00F1_8011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let disabled = run_concurrent(sched.as_ref(), programs, &cfg);

        // Leg 2: same batch, recorder sampling every 4th transaction.
        let (w, programs) = batch(n_txns, 0x00F1_8011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers,
            obs: true,
            flight_sample: SAMPLE_EVERY,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let traced = run_concurrent(sched.as_ref(), programs, &cfg);
        let log = assemble(&sched.metrics().obs.flight.drain());
        points.push(BlamePoint {
            workers,
            disabled_cps: disabled.throughput,
            traced_cps: traced.throughput,
            baseline_cps: recorded_commits_per_sec("BENCH_hotpath.json", "hdd", workers),
            blame: BlameReport::build(&log),
            phases: PhaseBreakdown::of_commits(&log),
            flights: log.flights.len() + log.open,
            open: log.open,
        });
    }
    points
}

/// Serialize the sweep as JSON (hand-rolled; no serde in this build).
pub fn to_json(points: &[BlamePoint]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"blame\",\n  \"workload\": \"inventory\",\n  \
         \"scheduler\": \"hdd\",\n  \"sample_every\": 4,\n  \"results\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"disabled_commits_per_sec\": {:.1}, \
             \"traced_commits_per_sec\": {:.1}, \"baseline_commits_per_sec\": {}, \
             \"coverage\": {:.4},\n     \"phases\": {},\n     \"blame\": {}}}{}\n",
            p.workers,
            p.disabled_cps,
            p.traced_cps,
            p.baseline_cps
                .map_or("null".to_string(), |b| format!("{b:.1}")),
            p.blame.coverage(),
            p.phases.to_json(),
            p.blame.to_json(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run E18 and return the table. Full runs write `BENCH_e18.json` into
/// the current directory; quick runs leave the artifact alone.
pub fn run(quick: bool) -> Table {
    let points = sweep(quick);
    if !quick {
        if let Err(e) = std::fs::write("BENCH_e18.json", to_json(&points)) {
            eprintln!("warning: could not write BENCH_e18.json: {e}");
        }
    }
    let mut table = Table::new(
        "E18 — flight-recorder blame profile (inventory, hdd, sample 1-in-4)",
        &[
            "workers",
            "disabled-cps",
            "traced-cps",
            "flights",
            "open",
            "coverage-pct",
            "wait-share-pct",
            "top-cause",
        ],
    );
    for p in &points {
        let wait_share = p
            .phases
            .shares()
            .iter()
            .find(|(l, _)| *l == "wait")
            .map_or(0.0, |(_, s)| *s);
        table.row(&[
            p.workers.to_string(),
            f2(p.disabled_cps),
            f2(p.traced_cps),
            p.flights.to_string(),
            p.open.to_string(),
            f2(p.blame.coverage() * 100.0),
            f2(wait_share * 100.0),
            p.blame
                .by_cause
                .first()
                .map_or("-".to_string(), |b| b.label.clone()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_attributes_waits_and_leaks_no_spans() {
        let points = sweep(true);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.disabled_cps > 0.0);
            assert!(p.traced_cps > 0.0);
            assert_eq!(p.open, 0, "no open flights at {} workers", p.workers);
            assert!(
                p.flights > 0,
                "the 1-in-4 stride must sample flights at {} workers",
                p.workers
            );
            assert!(
                p.phases.flights > 0,
                "sampled commits must exist at {} workers",
                p.workers
            );
            assert!(
                p.blame.coverage() >= 0.95,
                "attribution coverage {:.3} < 0.95 at {} workers",
                p.blame.coverage(),
                p.workers
            );
        }
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"blame\""));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"phases\": {\"flights\""));
    }
}
