//! One experiment per figure of the paper (see DESIGN.md §4).
//!
//! Every experiment returns a [`Table`] whose rows
//! are what the corresponding figure claims; `quick = true` shrinks the
//! workload sizes for tests and CI.

pub mod e01_lost_update;
pub mod e02_inventory;
pub mod e03_2pl_anomaly;
pub mod e04_tso_anomaly;
pub mod e05_tst_recognition;
pub mod e06_activity_link;
pub mod e07_follows;
pub mod e08_readonly_cp;
pub mod e09_timewall;
pub mod e10_comparison;
pub mod e11_cross_read_sweep;
pub mod e12_dbc_messages;
pub mod e13_hotpath;
pub mod e14_obs_profile;
pub mod e15_certify;
pub mod e16_chaos;
pub mod e17_gauges;
pub mod e18_blame;
pub mod e19_durability;
pub mod e20_drift;

use crate::report::Table;

/// Run every experiment (E1–E10 per figure, plus the E11 sweep, the
/// E12 message analysis, the E13 hot-path throughput trajectory, the
/// E14 observability profile, the E15 certification sweep, the E16
/// chaos soak, the E17 staleness-gauge observatory, the E18
/// flight-recorder blame profile, the E19 durability suite and the E20
/// workload-drift observatory) and return the tables in order.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e01_lost_update::run(quick),
        e02_inventory::run(quick),
        e03_2pl_anomaly::run(),
        e04_tso_anomaly::run(),
        e05_tst_recognition::run(quick),
        e06_activity_link::run(quick),
        e07_follows::run(quick),
        e08_readonly_cp::run(quick),
        e09_timewall::run(quick),
        e10_comparison::run(quick),
        e11_cross_read_sweep::run(quick),
        e12_dbc_messages::run(quick),
        e13_hotpath::run(quick),
        e14_obs_profile::run(quick),
        e15_certify::run(quick),
        e16_chaos::run(quick),
        e17_gauges::run(quick),
        e18_blame::run(quick),
        e19_durability::run(quick),
        e20_drift::run(quick),
    ]
}
