//! E15 — offline certification conformance sweep.
//!
//! Every scheduler (the six sound ones, the two deliberately broken
//! variants, and no-control) replays the same seeded battery: randomly
//! generated hierarchy-legal scripts plus the hand-built anomaly
//! scripts. Each drained schedule log then goes through the offline
//! certifier. The claim being measured:
//!
//! * sound schedulers certify clean on every log (HDD additionally
//!   passes the stronger partition-synchronization check);
//! * the broken variants and no-control produce violations, and the
//!   shrinker reduces each first violation to a single-digit
//!   counterexample.

use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::Table;
use crate::scripts::run_script;
use certify::certifier::certify_log;
use certify::conformance::{generate_scripts, ConformanceConfig};
use workloads::anomalies::{
    dirty_read_script, figure3_script, figure4_script, lost_update_script, write_skew_script,
    AnomalyWorkload,
};
use workloads::script::Script;
use workloads::Workload;

/// All kinds swept by the conformance harness: sound, broken, and none.
const SWEEP: &[SchedulerKind] = &[
    SchedulerKind::Hdd,
    SchedulerKind::TwoPl,
    SchedulerKind::Tso,
    SchedulerKind::Mvto,
    SchedulerKind::Mv2pl,
    SchedulerKind::Sdd1,
    SchedulerKind::TwoPlNoCrossReadLocks,
    SchedulerKind::TsoNoCrossReadTs,
    SchedulerKind::NoControl,
];

/// Whether this kind is one of the sound schedulers (expected clean).
fn is_sound(kind: SchedulerKind) -> bool {
    !matches!(
        kind,
        SchedulerKind::TwoPlNoCrossReadLocks
            | SchedulerKind::TsoNoCrossReadTs
            | SchedulerKind::NoControl
    )
}

/// Replay `script` on a fresh `kind` scheduler and certify the log.
/// Returns (ok, shrunk counterexample size if any).
fn certify_one(kind: SchedulerKind, script: &Script) -> (bool, Option<usize>) {
    let w = AnomalyWorkload;
    let (sched, store) = build_scheduler(kind, &w);
    for (g, v) in &script.setup {
        store.seed(*g, v.clone());
    }
    let _ = run_script(sched.as_ref(), script);
    // The partition-synchronization rule only applies to the scheduler
    // that enforces the hierarchy.
    let hierarchy = (kind == SchedulerKind::Hdd).then(|| w.hierarchy());
    let cert = certify_log(kind.name(), sched.log(), hierarchy.as_ref());
    (cert.ok(), cert.counterexample.map(|c| c.events.len()))
}

/// The scripted battery for `kind`: generated conformance scripts plus
/// the anomaly constructions. Write-skew is excluded for HDD because
/// its profiles are illegal under the anomaly hierarchy (the linter
/// rejects them a priori; the scheduler would refuse them at `begin`).
fn battery(kind: SchedulerKind, quick: bool) -> Vec<Script> {
    let cfg = ConformanceConfig {
        scripts: if quick { 6 } else { 24 },
        txns: 4,
        ops: 4,
        ..ConformanceConfig::default()
    };
    let mut scripts = generate_scripts(&AnomalyWorkload.hierarchy(), &cfg);
    scripts.push(figure3_script());
    scripts.push(figure4_script());
    scripts.push(lost_update_script());
    scripts.push(dirty_read_script());
    if kind != SchedulerKind::Hdd {
        scripts.push(write_skew_script());
    }
    scripts
}

/// Run the sweep.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E15 — offline certification sweep (conformance scripts + anomalies)",
        &[
            "scheduler",
            "scripts",
            "certified-ok",
            "violations",
            "min-counterexample",
            "expected",
        ],
    );
    for &kind in SWEEP {
        let scripts = battery(kind, quick);
        let mut ok = 0usize;
        let mut bad = 0usize;
        let mut min_cx: Option<usize> = None;
        for script in &scripts {
            let (clean, cx) = certify_one(kind, script);
            if clean {
                ok += 1;
            } else {
                bad += 1;
                if let Some(n) = cx {
                    min_cx = Some(min_cx.map_or(n, |m| m.min(n)));
                }
            }
        }
        let expected = if is_sound(kind) {
            "clean"
        } else {
            "violations"
        };
        table.row(&[
            kind.name().to_string(),
            scripts.len().to_string(),
            ok.to_string(),
            bad.to_string(),
            min_cx.map_or_else(|| "-".to_string(), |n| n.to_string()),
            expected.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_schedulers_certify_clean_and_broken_do_not() {
        let t = run(true);
        for &kind in SWEEP {
            let name = kind.name();
            let violations: usize = t.cell(name, "violations").unwrap().parse().unwrap();
            if is_sound(kind) {
                assert_eq!(violations, 0, "{name} must certify clean on every script");
            }
        }
        // The no-control log over the anomaly battery must be caught.
        let nc: usize = t.cell("nocontrol", "violations").unwrap().parse().unwrap();
        assert!(nc >= 1, "nocontrol must produce at least one violation");
        // And its first counterexample shrinks to single digits.
        let cx: usize = t
            .cell("nocontrol", "min-counterexample")
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            cx <= 10,
            "shrunk counterexample must be ≤10 events, got {cx}"
        );
    }

    #[test]
    fn broken_tso_variant_is_caught_on_figure4() {
        let (clean, cx) = certify_one(SchedulerKind::TsoNoCrossReadTs, &figure4_script());
        assert!(!clean, "figure 4 must violate under tso-no-cross-read-ts");
        assert!(cx.unwrap() <= 10);
    }
}
