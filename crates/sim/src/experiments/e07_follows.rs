//! **E7 (Figure 7)** — the `⇒` (*topologically follows*) relation.
//!
//! Figure 7 draws the three defining cases; Properties 1.1 and 1.2 prove
//! anti-symmetry and critical-path transitivity. This experiment
//! machine-checks both properties exhaustively over a grid of
//! initiation times against a live activity history, and measures the
//! evaluation rate of the relation.

use crate::experiments::e06_activity_link::chain_hierarchy;
use crate::report::{f2, Table};
use hdd::activity::{topologically_follows, ActivityFuncs, ActivityRegistry, TxnCoord};
use std::time::Instant;
use txn_model::{ClassId, Timestamp};

/// Run E7.
pub fn run(quick: bool) -> Table {
    let grid = if quick { 12u64 } else { 30 };
    let mut table = Table::new(
        "E7 / Figure 7 — the ⇒ relation: property checks and cost",
        &["check", "cases", "violations", "ns_per_eval"],
    );

    let h = chain_hierarchy(3);
    let registry = ActivityRegistry::new(3);
    // A mixed history: overlapping committed and running transactions.
    registry.begin(ClassId(1), Timestamp(5));
    registry.commit(ClassId(1), Timestamp(5), Timestamp(9));
    registry.begin(ClassId(1), Timestamp(12));
    registry.begin(ClassId(0), Timestamp(3));
    registry.commit(ClassId(0), Timestamp(3), Timestamp(14));
    registry.begin(ClassId(0), Timestamp(11));
    let funcs = ActivityFuncs::new(&h, &registry);

    // Anti-symmetry (Property 1.1) over all class pairs on the chain.
    let mut cases = 0u64;
    let mut violations = 0u64;
    let start = Instant::now();
    let mut evals = 0u64;
    for c1 in 0..3u32 {
        for c2 in 0..3u32 {
            for i1 in 1..=grid {
                for i2 in 1..=grid {
                    let a = TxnCoord::new(ClassId(c1), Timestamp(i1));
                    let b = TxnCoord::new(ClassId(c2), Timestamp(i2));
                    if a == b {
                        continue;
                    }
                    let ab = topologically_follows(&funcs, a, b).expect("chain classes");
                    let ba = topologically_follows(&funcs, b, a).expect("chain classes");
                    evals += 2;
                    cases += 1;
                    if ab && ba {
                        violations += 1;
                    }
                }
            }
        }
    }
    let anti_elapsed = start.elapsed();
    table.row(&[
        "anti-symmetry".to_string(),
        cases.to_string(),
        violations.to_string(),
        f2(anti_elapsed.as_nanos() as f64 / evals as f64),
    ]);

    // Critical-path transitivity (Property 1.2) over class triples
    // (2,1,0) and same-class triples.
    let mut cases = 0u64;
    let mut violations = 0u64;
    let start = Instant::now();
    let mut evals = 0u64;
    for i1 in 1..=grid {
        for i2 in 1..=grid {
            for i3 in 1..=grid {
                let t1 = TxnCoord::new(ClassId(2), Timestamp(i1));
                let t2 = TxnCoord::new(ClassId(1), Timestamp(i2));
                let t3 = TxnCoord::new(ClassId(0), Timestamp(i3));
                let ab = topologically_follows(&funcs, t1, t2).expect("chain");
                let bc = topologically_follows(&funcs, t2, t3).expect("chain");
                evals += 2;
                if ab && bc {
                    evals += 1;
                    cases += 1;
                    if !topologically_follows(&funcs, t1, t3).expect("chain") {
                        violations += 1;
                    }
                }
            }
        }
    }
    let trans_elapsed = start.elapsed();
    table.row(&[
        "transitivity".to_string(),
        cases.to_string(),
        violations.to_string(),
        f2(trans_elapsed.as_nanos() as f64 / evals.max(1) as f64),
    ]);

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_hold_with_zero_violations() {
        let t = run(true);
        assert_eq!(t.cell("anti-symmetry", "violations"), Some("0"));
        assert_eq!(t.cell("transitivity", "violations"), Some("0"));
        let cases: u64 = t.cell("transitivity", "cases").unwrap().parse().unwrap();
        assert!(cases > 0, "the grid must exercise real transitive cases");
    }
}
