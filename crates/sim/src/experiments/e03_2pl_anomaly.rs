//! **E3 (Figure 3)** — "If read locks are not used, an anomaly may
//! occur."
//!
//! Replays the paper's exact three-transaction timing against strict
//! 2PL, 2PL without cross-segment read locks (the shortcut Figure 3
//! warns about), and HDD. The broken variant must close the dependency
//! cycle `t2 → t1 → t3 → t2`; correct 2PL avoids it by blocking; HDD
//! avoids it *without* any read lock by serving the type-3 transaction
//! activity-link-bounded versions.

use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::Table;
use crate::scripts::run_script;
use workloads::anomalies::{figure3_script, AnomalyWorkload};

/// Run E3.
pub fn run() -> Table {
    let mut table = Table::new(
        "E3 / Figure 3 — 2PL without read locks breaks serializability",
        &[
            "scheduler",
            "committed",
            "aborted",
            "read_regs",
            "blocks",
            "serializable",
            "cycle_len",
        ],
    );
    for kind in [
        SchedulerKind::TwoPlNoCrossReadLocks,
        SchedulerKind::TwoPl,
        SchedulerKind::Hdd,
    ] {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(kind, &w);
        let out = run_script(sched.as_ref(), &figure3_script());
        let m = sched.metrics().snapshot();
        let committed = out
            .statuses
            .iter()
            .filter(|s| matches!(s, crate::scripts::TxnStatus::Committed))
            .count();
        table.row(&[
            kind.name().to_string(),
            committed.to_string(),
            (out.statuses.len() - committed).to_string(),
            m.read_registrations.to_string(),
            m.blocks.to_string(),
            out.serializable.to_string(),
            out.cycle.map_or(0, |c| c.len()).to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_holds() {
        let t = run();
        assert_eq!(
            t.cell("2pl-no-cross-read-locks", "serializable"),
            Some("false")
        );
        assert_eq!(t.cell("2pl-no-cross-read-locks", "cycle_len"), Some("3"));
        assert_eq!(t.cell("2pl", "serializable"), Some("true"));
        assert_eq!(t.cell("hdd", "serializable"), Some("true"));
        // HDD achieves it with zero read registrations and zero blocks.
        assert_eq!(t.cell("hdd", "read_regs"), Some("0"));
        assert_eq!(t.cell("hdd", "blocks"), Some("0"));
        // Correct 2PL pays: registrations and at least one block.
        let regs: u64 = t.cell("2pl", "read_regs").unwrap().parse().unwrap();
        assert!(regs >= 3);
    }
}
