//! **E9 (Figure 9)** — the `E` function as a time wall.
//!
//! Figure 9 draws the wall: per-class bounds across which no dependency
//! can point old → new. This experiment runs the inventory application
//! with off-chain audits (which must use Protocol C) while sweeping the
//! wall-release interval, and reports: walls released, the audits'
//! waiting (only ever for the *first* wall), the wall computation lag
//! (release time − anchor time — how long `C_late` computability took),
//! and the serializability verdict that Theorem 2 promises.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::build_hdd_with_config;
use crate::report::{f2, Table};
use hdd::protocol::HddConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::TxnProgram;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Audit-heavy inventory mix.
pub fn batch(n: usize, seed: u64) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 32,
        w_type1: 30,
        w_type2: 10,
        w_type3: 5,
        w_type4: 3,
        w_type5: 10,
        w_report: 0,
        w_audit: 40,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

/// Run E9.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 120 } else { 600 };
    let intervals: &[u64] = if quick { &[2, 16] } else { &[2, 8, 32, 128] };
    let mut table = Table::new(
        "E9 / Figure 9 — time walls: release interval sweep",
        &[
            "wall_interval",
            "commits",
            "walls_released",
            "wall_reads",
            "read_regs",
            "blocks",
            "avg_release_lag",
            "serializable",
        ],
    );
    for &interval in intervals {
        let (w, programs) = batch(n_txns, 0x00F1_6009);
        let (sched, _store, _h) = build_hdd_with_config(
            &w,
            HddConfig {
                wall_interval: interval,
                gc_interval: 0, // keep walls retained for lag measurement
                ..HddConfig::default()
            },
        );
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        let walls = sched.walls().released_all();
        let lag: f64 = if walls.is_empty() {
            0.0
        } else {
            walls
                .iter()
                .map(|w| (w.released_at.raw() - w.anchor_time.raw()) as f64)
                .sum::<f64>()
                / walls.len() as f64
        };
        let m = &stats.metrics;
        table.row(&[
            interval.to_string(),
            stats.committed.to_string(),
            walls.len().to_string(),
            m.wall_reads.to_string(),
            m.read_registrations.to_string(),
            m.blocks.to_string(),
            f2(lag),
            format!("{:?}", stats.serializable.unwrap_or(false)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walls_work_and_schedules_serialize() {
        let t = run(true);
        for row in &t.rows {
            let serial = &row[t.headers.iter().position(|h| h == "serializable").unwrap()];
            assert_eq!(serial, "true");
        }
        let walls = |k: &str| t.cell(k, "walls_released").unwrap().parse::<u64>().unwrap();
        // Shorter interval → more walls.
        assert!(walls("2") > walls("16"));
        // Audits actually used the walls.
        let wr: u64 = t.cell("2", "wall_reads").unwrap().parse().unwrap();
        assert!(wr > 0);
    }
}
