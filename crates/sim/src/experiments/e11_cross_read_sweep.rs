//! **E11 (beyond the paper)** — where does HDD pay off?
//!
//! The paper argues qualitatively that the technique's benefit is the
//! eliminated registration of *cross-class* reads; it follows that the
//! advantage should grow with the share of such reads per transaction.
//! This sweep varies `reads_per_ancestor` on the depth-4 synthetic
//! hierarchy and reports registrations per commit for HDD vs MVTO (the
//! protocol HDD degenerates to when *every* read must register) — the
//! ratio is the measured saving.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::TxnProgram;
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

fn batch(reads_per_ancestor: usize, n: usize) -> (Synthetic, Vec<TxnProgram>) {
    let mut w = Synthetic::new(SyntheticConfig {
        depth: 4,
        fanout: 2,
        granules_per_segment: 64,
        reads_per_ancestor,
        read_only_share: 0.2,
        ..SyntheticConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0x00F1_6012);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

/// Run E11.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 120 } else { 500 };
    let sweeps: &[usize] = if quick { &[0, 2, 6] } else { &[0, 1, 2, 4, 8] };
    let mut table = Table::new(
        "E11 — HDD saving vs cross-class read share (synthetic depth 4)",
        &[
            "reads_per_ancestor",
            "hdd_regs_per_commit",
            "mvto_regs_per_commit",
            "saving_ratio",
            "hdd_serializable",
        ],
    );
    for &rpa in sweeps {
        let mut cells: Vec<String> = vec![rpa.to_string()];
        let mut hdd_regs = 0.0;
        for kind in [SchedulerKind::Hdd, SchedulerKind::Mvto] {
            let (w, programs) = batch(rpa, n_txns);
            let (sched, _store) = build_scheduler(kind, &w);
            let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
            assert_eq!(stats.serializable, Some(true), "{}", kind.name());
            let regs = stats.metrics.read_registrations_per_commit();
            if kind == SchedulerKind::Hdd {
                hdd_regs = regs;
            } else {
                let ratio = if hdd_regs > 0.0 {
                    regs / hdd_regs
                } else {
                    f64::INFINITY
                };
                cells.push(f2(hdd_regs));
                cells.push(f2(regs));
                cells.push(if ratio.is_finite() {
                    f2(ratio)
                } else {
                    "∞".to_string()
                });
                cells.push("true".to_string());
            }
        }
        table.row(&cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_grows_with_cross_read_share() {
        let t = run(true);
        let ratio = |rpa: &str| -> f64 {
            let c = t.cell(rpa, "saving_ratio").unwrap();
            if c == "∞" {
                f64::INFINITY
            } else {
                c.parse().unwrap()
            }
        };
        // More ancestor reads → bigger multiplicative saving.
        assert!(
            ratio("6") > ratio("0"),
            "saving must grow with cross-read share: {} vs {}",
            ratio("6"),
            ratio("0")
        );
        // Even at 0 ancestor reads HDD never registers MORE than MVTO.
        let hdd0: f64 = t.cell("0", "hdd_regs_per_commit").unwrap().parse().unwrap();
        let mvto0: f64 = t
            .cell("0", "mvto_regs_per_commit")
            .unwrap()
            .parse()
            .unwrap();
        assert!(hdd0 <= mvto0);
    }
}
