//! **E1 (Figure 1)** — the lost-update anomaly.
//!
//! Figure 1 interleaves a deposit and a withdrawal so that one update is
//! lost. We run a deposits-only banking workload over a single hot
//! account: after `n` committed deposits of $50, any serializable
//! scheduler leaves `initial + 50·n` in the account; `nocontrol` loses
//! money. The table reports the shortfall per scheduler.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::TxnProgram;
use workloads::banking::{Banking, DEPOSIT, INITIAL_BALANCE};
use workloads::Workload;

/// Schedulers demonstrated in E1.
pub const KINDS: &[SchedulerKind] = &[
    SchedulerKind::NoControl,
    SchedulerKind::TwoPl,
    SchedulerKind::Tso,
    SchedulerKind::Mvto,
    SchedulerKind::Mv2pl,
    SchedulerKind::Sdd1,
    SchedulerKind::Hdd,
];

/// Run E1.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 40 } else { 300 };
    let mut table = Table::new(
        "E1 / Figure 1 — lost updates on one hot account",
        &[
            "scheduler",
            "committed",
            "restarts",
            "expected",
            "actual",
            "lost",
            "serializable",
        ],
    );

    for &kind in KINDS {
        let mut w = Banking::new(1);
        w.deposit_prob = 1.0; // deposits only, like Figure 1's t1
        let mut rng = StdRng::seed_from_u64(0x00F1_6001);
        let programs: Vec<TxnProgram> = (0..n_txns).map(|_| w.generate(&mut rng)).collect();
        let (sched, store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());

        let expected = INITIAL_BALANCE + DEPOSIT * stats.committed as i64;
        let actual = w.total_balance(store.as_ref());
        table.row(&[
            kind.name().to_string(),
            stats.committed.to_string(),
            stats.restarts.to_string(),
            expected.to_string(),
            actual.to_string(),
            (expected - actual).to_string(),
            format!("{:?}", stats.serializable.unwrap_or(false)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nocontrol_loses_everyone_else_does_not() {
        let t = run(true);
        let lost = |k: &str| t.cell(k, "lost").unwrap().parse::<i64>().unwrap();
        assert!(lost("nocontrol") > 0, "no-control must lose updates");
        for k in ["2pl", "tso", "mvto", "mv2pl", "sdd1", "hdd"] {
            assert_eq!(lost(k), 0, "{k} must not lose updates");
            assert_eq!(t.cell(k, "serializable"), Some("true"));
        }
    }
}
