//! **E14 — observability profile of the hot path** (no paper figure;
//! ours).
//!
//! Re-runs the E13 worker sweep (HDD vs. MVTO vs. 2PL, inventory
//! workload, concurrent driver) with the `obs` sidecar **enabled** and
//! reports *distributions* instead of flat counters: commit-latency and
//! block-wait percentiles, Protocol A registry scan lengths, the
//! per-reason rejection breakdown, and the GC / time-wall maintenance
//! counters. Each cell runs a warmup batch first and reports the
//! measured interval via [`MetricsSnapshot::delta`], so steady-state
//! numbers are not polluted by cold chains.
//!
//! Full runs emit `BENCH_obs.json` (path overridable with
//! `--obs-json <path>`):
//!
//! ```text
//! cargo run --release -p sim --bin experiments -- e14
//! ```
//!
//! The interesting read is the hdd/mvto crossover at 4+ workers (see
//! EXPERIMENTS.md §E14): HDD's classed `begin`/`commit` draw their
//! timestamps inside a per-class registry lock, so same-class begins
//! serialize; MVTO only ticks the global atomic clock. The op-service
//! and commit-latency tails below localize exactly that cost.

use crate::concurrent::{run_concurrent, ConcurrentConfig};
use crate::experiments::e02_inventory::batch;
use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::{f2, Table};
use obs::ObsSnapshot;
use txn_model::MetricsSnapshot;

/// One measured cell of the obs-enabled sweep.
#[derive(Debug, Clone)]
pub struct ObsPoint {
    /// Scheduler measured.
    pub scheduler: &'static str,
    /// Worker threads.
    pub workers: usize,
    /// Programs offered in the measured interval.
    pub offered: usize,
    /// Transactions committed in the measured interval.
    pub committed: usize,
    /// Committed transactions per second (measured interval).
    pub commits_per_sec: f64,
    /// Full distribution snapshot (latencies in ns, scans in entries).
    pub obs: ObsSnapshot,
    /// Counter deltas over the measured interval (warmup excluded).
    pub interval: MetricsSnapshot,
}

const SCHEDULERS: &[SchedulerKind] = &[
    SchedulerKind::Hdd,
    SchedulerKind::Mvto,
    SchedulerKind::TwoPl,
];

/// Nanoseconds → microseconds for table cells.
fn us(ns: u64) -> String {
    f2(ns as f64 / 1_000.0)
}

/// Run the sweep and return the raw points.
pub fn sweep(quick: bool) -> Vec<ObsPoint> {
    let n_txns = if quick { 200 } else { 20_000 };
    let warmup_txns = n_txns / 10;
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut points = Vec::new();
    for &kind in SCHEDULERS {
        for &workers in worker_counts {
            let (w, warmup) = batch(warmup_txns, 0x0E14_0001);
            let (_, programs) = batch(n_txns, 0x0E14_0002);
            let (sched, _store) = build_scheduler(kind, &w);
            let cfg = ConcurrentConfig {
                workers,
                obs: true,
                // Pure-throughput mode, like a production profile run:
                // the schedule log is the dominant non-protocol cost.
                verify: false,
                capture_log: false,
                ..ConcurrentConfig::default()
            };
            run_concurrent(sched.as_ref(), warmup, &cfg);
            let before = sched.metrics().snapshot();
            sched.metrics().obs.reset();
            let out = run_concurrent(sched.as_ref(), programs, &cfg);
            let interval = sched.metrics().snapshot().delta(&before);
            points.push(ObsPoint {
                scheduler: kind.name(),
                workers,
                offered: n_txns,
                committed: out.stats.committed,
                commits_per_sec: out.throughput,
                obs: sched.metrics().obs.snapshot(),
                interval,
            });
        }
    }
    points
}

/// Serialize the sweep as JSON (hand-rolled; no serde in this build).
pub fn to_json(points: &[ObsPoint]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"obs_profile\",\n  \"workload\": \"inventory\",\n  \"results\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"workers\": {}, \"offered\": {}, \"committed\": {}, \
             \"commits_per_sec\": {:.1},\n     \"rejections\": {}, \"rej_write_too_late\": {}, \
             \"rej_read_too_late\": {}, \"rej_deadlock_victim\": {}, \"wall_violations\": {},\n     \
             \"versions_gced\": {}, \"timewalls_released\": {},\n     \"obs\": {}}}{}\n",
            p.scheduler,
            p.workers,
            p.offered,
            p.committed,
            p.commits_per_sec,
            p.interval.rejections,
            p.interval.rej_write_too_late,
            p.interval.rej_read_too_late,
            p.interval.rej_deadlock_victim,
            p.interval.wall_violations,
            p.interval.versions_gced,
            p.interval.timewalls_released,
            p.obs.to_json(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The latency table (µs cells).
pub fn latency_table(points: &[ObsPoint]) -> Table {
    let mut t = Table::new(
        "E14 — latency distributions (inventory, obs enabled, µs)",
        &[
            "scheduler",
            "workers",
            "commits_per_sec",
            "commit_p50",
            "commit_p95",
            "commit_p99",
            "op_p50",
            "op_p99",
            "block_p95",
            "backoff_p95",
        ],
    );
    for p in points {
        t.row(&[
            p.scheduler.to_string(),
            p.workers.to_string(),
            f2(p.commits_per_sec),
            us(p.obs.commit_latency.p50()),
            us(p.obs.commit_latency.p95()),
            us(p.obs.commit_latency.p99()),
            us(p.obs.op_service.p50()),
            us(p.obs.op_service.p99()),
            us(p.obs.block_wait.p95()),
            us(p.obs.backoff_sleep.p95()),
        ]);
    }
    t
}

/// The protocol-decision table (counts over the measured interval).
pub fn decision_table(points: &[ObsPoint]) -> Table {
    let mut t = Table::new(
        "E14 — protocol decisions (measured interval, warmup excluded)",
        &[
            "scheduler",
            "workers",
            "committed",
            "rejections(w/r/d)",
            "wall_viol",
            "scan_p50",
            "scan_p99",
            "versions_gced",
            "walls_released",
            "trace_events",
        ],
    );
    for p in points {
        t.row(&[
            p.scheduler.to_string(),
            p.workers.to_string(),
            p.committed.to_string(),
            format!(
                "{} ({})",
                p.interval.rejections,
                p.interval.rejection_breakdown()
            ),
            p.interval.wall_violations.to_string(),
            p.obs.registry_scan.p50().to_string(),
            p.obs.registry_scan.p99().to_string(),
            p.interval.versions_gced.to_string(),
            p.interval.timewalls_released.to_string(),
            p.obs.trace_recorded.to_string(),
        ]);
    }
    t
}

/// Run E14 and return the decision table (the latency table is printed
/// to stdout alongside). Full runs write the JSON artifact to
/// `json_path`; quick (smoke) runs leave the canonical artifact alone.
pub fn run_with_path(quick: bool, json_path: &str) -> Table {
    let points = sweep(quick);
    if !quick {
        if let Err(e) = std::fs::write(json_path, to_json(&points)) {
            eprintln!("warning: could not write {json_path}: {e}");
        }
    }
    println!("{}", latency_table(&points));
    decision_table(&points)
}

/// Run E14 with the default artifact path.
pub fn run(quick: bool) -> Table {
    run_with_path(quick, "BENCH_obs.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_profiles_all_schedulers() {
        let points = sweep(true);
        assert_eq!(points.len(), SCHEDULERS.len() * 2);
        for p in &points {
            assert!(p.committed > 0, "{} at {}", p.scheduler, p.workers);
            assert_eq!(
                p.obs.commit_latency.count, p.committed as u64,
                "one commit-latency sample per commit ({})",
                p.scheduler
            );
            assert!(p.obs.op_service.count > 0);
            assert_eq!(
                p.interval.rejections,
                p.interval.rej_write_too_late
                    + p.interval.rej_read_too_late
                    + p.interval.rej_deadlock_victim,
                "per-reason counters partition the total ({})",
                p.scheduler
            );
        }
        // Only HDD evaluates activity-link bounds.
        assert!(points
            .iter()
            .filter(|p| p.scheduler == "hdd")
            .all(|p| p.obs.registry_scan.count > 0));
        assert!(points
            .iter()
            .filter(|p| p.scheduler != "hdd")
            .all(|p| p.obs.registry_scan.count == 0));
        let json = to_json(&points);
        assert!(json.contains("\"experiment\": \"obs_profile\""));
        assert!(json.contains("\"commit_latency_ns\""));
        assert!(json.contains("\"rej_write_too_late\""));
        let t = decision_table(&points);
        assert!(t.cell("hdd", "trace_events").is_some());
    }
}
