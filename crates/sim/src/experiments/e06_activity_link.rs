//! **E6 (Figure 6)** — the activity link function `A_i^j`.
//!
//! Figure 6 walks `A_i^j(m) = I_j_old(I_k_old(m))` along a critical
//! path. This experiment (a) re-validates the figure's walk-through as a
//! fixed scenario and (b) measures the evaluation cost of `A` as the
//! hierarchy deepens and per-class activity grows — the bookkeeping HDD
//! pays *instead of* a read registration per cross-class read.

use crate::report::{f2, Table};
use hdd::activity::{ActivityFuncs, ActivityRegistry};
use hdd::analysis::{AccessSpec, Hierarchy};
use std::time::Instant;
use txn_model::{ClassId, SegmentId, Timestamp};

/// Build a pure chain hierarchy of `depth` classes: `depth-1 → ... → 0`.
pub fn chain_hierarchy(depth: usize) -> Hierarchy {
    let specs: Vec<AccessSpec> = (0..depth)
        .map(|i| {
            let reads: Vec<SegmentId> = (0..i).map(|j| SegmentId(j as u32)).collect();
            AccessSpec::new(format!("c{i}"), vec![SegmentId(i as u32)], reads)
        })
        .collect();
    Hierarchy::build(depth, &specs).expect("chain is a TST")
}

/// Populate `active_per_class` running transactions in every class.
pub fn populate(registry: &ActivityRegistry, classes: usize, active_per_class: usize) {
    let mut ts = 1u64;
    for c in 0..classes {
        for _ in 0..active_per_class {
            registry.begin(ClassId(c as u32), Timestamp(ts));
            ts += 1;
        }
    }
}

/// Run E6.
pub fn run(quick: bool) -> Table {
    let depths: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 16] };
    let actives: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64] };
    let evals = if quick { 2_000 } else { 50_000 };

    let mut table = Table::new(
        "E6 / Figure 6 — activity link function evaluation cost",
        &[
            "depth",
            "active_per_class",
            "evals",
            "ns_per_eval",
            "result_ts",
        ],
    );
    for &depth in depths {
        for &active in actives {
            let h = chain_hierarchy(depth);
            let registry = ActivityRegistry::new(depth);
            populate(&registry, depth, active);
            let funcs = ActivityFuncs::new(&h, &registry);
            let leaf = ClassId((depth - 1) as u32);
            let top = ClassId(0);
            let m = Timestamp(1_000_000);
            let start = Instant::now();
            let mut sink = Timestamp::ZERO;
            for _ in 0..evals {
                sink = funcs.a_fn(leaf, top, m);
            }
            let elapsed = start.elapsed();
            table.row(&[
                depth.to_string(),
                active.to_string(),
                evals.to_string(),
                f2(elapsed.as_nanos() as f64 / evals as f64),
                sink.to_string(),
            ]);
        }
    }
    table
}

/// The Figure 6 walk-through as a checkable scenario: CP `T_i → T_k →
/// T_j`; `A_i^j(m) = I_j_old(I_k_old(m))`.
pub fn figure6_scenario() -> (Timestamp, Timestamp) {
    let h = chain_hierarchy(3); // classes 2 (=i) → 1 (=k) → 0 (=j)
    let registry = ActivityRegistry::new(3);
    // T_k: oldest active at m=30 started at 10.
    registry.begin(ClassId(1), Timestamp(10));
    registry.begin(ClassId(1), Timestamp(20));
    // T_j: oldest active at 10 started at 5.
    registry.begin(ClassId(0), Timestamp(5));
    registry.begin(ClassId(0), Timestamp(8));
    let funcs = ActivityFuncs::new(&h, &registry);
    let expected = Timestamp(5);
    let got = funcs.a_fn(ClassId(2), ClassId(0), Timestamp(30));
    (expected, got)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_walkthrough_matches() {
        let (expected, got) = figure6_scenario();
        assert_eq!(expected, got);
    }

    #[test]
    fn idle_chain_is_identity() {
        let h = chain_hierarchy(5);
        let registry = ActivityRegistry::new(5);
        let funcs = ActivityFuncs::new(&h, &registry);
        assert_eq!(
            funcs.a_fn(ClassId(4), ClassId(0), Timestamp(77)),
            Timestamp(77)
        );
    }

    #[test]
    fn table_has_all_rows() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        // With active transactions starting at ts 1.., A collapses to a
        // small timestamp.
        let r: u64 = t.cell("2", "result_ts").unwrap().parse().unwrap();
        assert!(r < 1_000_000);
    }
}
