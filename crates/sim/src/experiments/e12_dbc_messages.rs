//! **E12 (Section 7.5)** — inter-level synchronization messages in a
//! hierarchical database computer.
//!
//! "One of the motivations for the current research is to find a way to
//! optimize the concurrency control activities inside of a
//! multi-processor based database computer that employs a hierarchical
//! decomposition of the DBMS functionalities. The potential of the
//! current technique in reducing inter-level synchronization
//! communications will be explored."
//!
//! We model the INFOPLEX-style machine: each hierarchy class runs on its
//! own processor level, hosting its segment's controller; a transaction
//! executes at its class's processor, so accesses to its *own* segment
//! are local and accesses to other segments are **remote** (read-only
//! transactions are remote everywhere). From a run's schedule log we
//! count, per scheduler, with a documented message model:
//!
//! * **data messages** — 2 per remote access (request + response); equal
//!   for every scheduler, the unavoidable cost of moving data;
//! * **synchronization messages** — the overhead each discipline adds:
//!   * 2PL / MV2PL: 2 per remote *registered* access (lock round-trip to
//!     the remote lock manager), 1 release notice per distinct remote
//!     segment at commit, 2 per block (suspend/wake);
//!   * TSO / MVTO: 1 per remote read (the read-timestamp write made
//!     durable at the remote controller), 2 per block;
//!   * SDD-1: 2 per pipeline block (poll/wake);
//!   * HDD: **0 per cross-class read** (Protocol A/C register nothing and
//!     the bound is computed at the transaction's own level), 2 per
//!     block, plus one broadcast message per class per released time
//!     wall.
//!
//! The absolute constants are a model; the *shape* — HDD's inter-level
//! synchronization traffic independent of the remote-read volume — is
//! the Section 7.5 claim.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use crate::report::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use txn_model::{ClassId, ScheduleEvent, TxnId, TxnProgram};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Per-run message tally.
#[derive(Debug, Default, Clone, Copy)]
pub struct MessageTally {
    /// Remote data accesses (each costs 2 data messages).
    pub remote_accesses: u64,
    /// Synchronization messages under the scheduler's discipline.
    pub sync_msgs: u64,
    /// Commits observed.
    pub commits: u64,
}

/// Count remote accesses and synchronization messages from a run.
pub fn tally(
    kind: SchedulerKind,
    events: &[ScheduleEvent],
    hierarchy: &hdd::Hierarchy,
    blocks: u64,
    walls_released: u64,
) -> MessageTally {
    let mut class_of_txn: HashMap<TxnId, Option<ClassId>> = HashMap::new();
    for ev in events {
        if let ScheduleEvent::Begin { txn, class, .. } = ev {
            class_of_txn.insert(*txn, *class);
        }
    }

    let mut t = MessageTally::default();
    // Remote segments each txn wrote/locked (for 2PL release notices).
    let mut remote_touched: HashMap<TxnId, HashSet<u32>> = HashMap::new();
    let mut remote_reads = 0u64;
    let mut remote_registered = 0u64; // accesses that register remotely

    for ev in events {
        let (txn, seg, is_read) = match ev {
            ScheduleEvent::Read { txn, granule, .. } => (*txn, granule.segment, true),
            ScheduleEvent::Write { txn, granule, .. } => (*txn, granule.segment, false),
            ScheduleEvent::Commit { .. } => {
                t.commits += 1;
                continue;
            }
            _ => continue,
        };
        let txn_class = class_of_txn.get(&txn).copied().flatten();
        let remote = match txn_class {
            Some(c) => hierarchy.class_of(seg) != c,
            None => true, // read-only transactions run off to the side
        };
        if !remote {
            continue;
        }
        t.remote_accesses += 1;
        remote_touched
            .entry(txn)
            .or_default()
            .insert(hierarchy.class_of(seg).index() as u32);
        if is_read {
            remote_reads += 1;
        }
        // Which remote accesses register, per discipline?
        let registers = match kind {
            SchedulerKind::TwoPl | SchedulerKind::Mv2pl => true, // lock everything
            SchedulerKind::Tso | SchedulerKind::Mvto => is_read, // rts writes
            SchedulerKind::Hdd | SchedulerKind::Sdd1 => false,
            _ => true,
        };
        if registers {
            remote_registered += 1;
        }
    }

    t.sync_msgs = match kind {
        SchedulerKind::TwoPl | SchedulerKind::Mv2pl => {
            let releases: u64 = remote_touched.values().map(|s| s.len() as u64).sum();
            2 * remote_registered + releases + 2 * blocks
        }
        SchedulerKind::Tso | SchedulerKind::Mvto => remote_reads + 2 * blocks,
        SchedulerKind::Sdd1 => 2 * blocks,
        SchedulerKind::Hdd => 2 * blocks + walls_released * hierarchy.class_count() as u64,
        _ => 2 * remote_registered + 2 * blocks,
    };
    t
}

/// Run E12.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 120 } else { 600 };
    let mut table = Table::new(
        "E12 / Section 7.5 — inter-level messages in a database computer (model)",
        &[
            "scheduler",
            "commits",
            "remote_accesses",
            "data_msgs_per_commit",
            "sync_msgs_per_commit",
            "sync_overhead_pct",
        ],
    );
    for &kind in ALL_KINDS {
        let mut w = Inventory::new(InventoryConfig {
            items: 32,
            ..InventoryConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0x00F1_6013);
        let programs: Vec<TxnProgram> = (0..n_txns).map(|_| w.generate(&mut rng)).collect();
        let hierarchy = w.hierarchy();
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        assert_eq!(stats.serializable, Some(true));
        let t = tally(
            kind,
            &sched.log().events(),
            &hierarchy,
            stats.metrics.blocks,
            stats.metrics.timewalls_released,
        );
        let commits = t.commits.max(1) as f64;
        let data = 2.0 * t.remote_accesses as f64 / commits;
        let sync = t.sync_msgs as f64 / commits;
        table.row(&[
            kind.name().to_string(),
            t.commits.to_string(),
            t.remote_accesses.to_string(),
            f2(data),
            f2(sync),
            f2(100.0 * sync / (data + sync).max(1e-9)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_minimizes_inter_level_sync_traffic() {
        let t = run(true);
        let sync = |k: &str| -> f64 { t.cell(k, "sync_msgs_per_commit").unwrap().parse().unwrap() };
        let data = |k: &str| -> f64 { t.cell(k, "data_msgs_per_commit").unwrap().parse().unwrap() };
        // Everyone moves (roughly) the same data...
        assert!((data("hdd") - data("2pl")).abs() < data("hdd") * 0.5);
        // ...but HDD's synchronization chatter is the smallest of the
        // registration-based schemes, and far below SDD-1's polling.
        for k in ["2pl", "tso", "mvto", "mv2pl", "sdd1"] {
            assert!(
                sync("hdd") < sync(k),
                "hdd ({}) must beat {k} ({})",
                sync("hdd"),
                sync(k)
            );
        }
    }
}
