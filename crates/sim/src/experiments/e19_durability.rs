//! **E19 — durable tier: group-commit amortization, backend parity,
//! recovery cost, and the disk-fault soak** (no paper figure; ours).
//!
//! Four legs:
//!
//! 1. **Throughput vs fsync batch size.** The inventory workload on HDD
//!    with the group-commit WAL at `max_batch_frames` 1/4/16/64, plus a
//!    no-WAL baseline. Batch 1 fsyncs once per commit; larger batches
//!    amortize the sync across concurrent committers (the *group-commit
//!    ack rule*: a commit counts only once its batch is durable). Full
//!    runs emit `BENCH_e19.json` in the same line shape as
//!    `BENCH_hotpath.json`, so [`crate::baseline`] can scan it.
//! 2. **Backend parity.** The same run over the log-structured
//!    [`FileBackend`] instead of the in-memory
//!    store — what durable reads/writes cost without any WAL batching.
//! 3. **Recovery time vs log length.** Synthesized redo logs of growing
//!    length replayed through [`mvstore::recover`] into both backends.
//! 4. **Disk-fault soak.** Seeded chaos runs journal through a WAL whose
//!    "disk" betrays them mid-run ([`chaos::DiskFaultPlan`]: torn final
//!    write, lying fsync, kill before/after the write). The process
//!    state is dropped, recovery reads *only the on-disk bytes* — the
//!    torn WAL plus the file backend's segments — resumes via
//!    [`hdd::resume`], runs a second phase, and the stitched log must
//!    certify clean with no timestamp reuse. Except on lying-disk
//!    seeds, every acked commit must be on disk.

use crate::concurrent::{capped_workers, run_concurrent, ConcurrentConfig};
use crate::experiments::e02_inventory::batch;
use crate::factory::{build_hdd_on, build_scheduler, SchedulerKind};
use crate::report::{f2, Table};
use certify::certifier::certify_log;
use chaos::{run_chaos, ChaosConfig, ChaosRunConfig, DiskFaultKind, DiskFaultPlan, FaultPlan};
use hdd::protocol::HddConfig;
use mvstore::{FileBackend, FileBackendConfig, MvStore, StorageBackend, VersionRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txn_model::{
    decode_wal, ClassId, GranuleId, GroupCommitConfig, GroupCommitWal, ScheduleEvent, Scheduler,
    SegmentId, Timestamp, TxnId, Value,
};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Transaction lease for the soak (mirrors E16).
const LEASE: Duration = Duration::from_millis(5);

/// A fresh private scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — id ticket; uniqueness comes from fetch_add atomicity.
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("e19-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One measured throughput cell.
#[derive(Debug, Clone)]
pub struct DurabilityPoint {
    /// Row label (`hdd`, `hdd-wal-b16`, `hdd-file`, ...).
    pub scheduler: String,
    /// Worker threads.
    pub workers: usize,
    /// Fsync batch-size bound (0 = no WAL).
    pub batch_frames: usize,
    /// Transactions committed (durably, when a WAL is configured).
    pub committed: usize,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Durable commits per second.
    pub commits_per_sec: f64,
    /// Fsync batches the WAL wrote (0 = no WAL).
    pub fsync_batches: u64,
}

/// One recovery-cost cell.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Backend replayed into (`memory` / `file`).
    pub backend: &'static str,
    /// Events in the replayed log.
    pub events: usize,
    /// Committed writes installed.
    pub redo_applied: u64,
    /// Replay wall time in milliseconds.
    pub recover_ms: f64,
}

fn workload() -> Inventory {
    Inventory::new(InventoryConfig {
        items: 16,
        ..InventoryConfig::default()
    })
}

/// Leg 1+2: throughput vs batch size, plus the file-backend row.
pub fn throughput_sweep(quick: bool) -> Vec<DurabilityPoint> {
    let n_txns = if quick { 200 } else { 8_000 };
    let workers = if quick { 2 } else { 8 };
    let Some(workers) = capped_workers(workers) else {
        return Vec::new();
    };
    let mut points = Vec::new();

    // No-WAL baseline: the trait-refactored in-memory path.
    {
        let (w, programs) = batch(n_txns, 0x00F1_9001);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        points.push(DurabilityPoint {
            scheduler: "hdd".to_string(),
            workers,
            batch_frames: 0,
            committed: out.stats.committed,
            elapsed_s: out.elapsed.as_secs_f64(),
            commits_per_sec: out.throughput,
            fsync_batches: 0,
        });
    }

    // Group-commit sweep: same workload, WAL ack-gated commits.
    for &batch_frames in &[1usize, 4, 16, 64] {
        let dir = scratch("wal");
        let wal = Arc::new(
            GroupCommitWal::create(
                &dir.join("run.wal"),
                GroupCommitConfig {
                    max_batch_frames: batch_frames,
                    ..GroupCommitConfig::default()
                },
            )
            .expect("create WAL"),
        );
        let (w, programs) = batch(n_txns, 0x00F1_9001);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers,
            wal: Some(Arc::clone(&wal)),
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        points.push(DurabilityPoint {
            scheduler: format!("hdd-wal-b{batch_frames}"),
            workers,
            batch_frames,
            committed: out.stats.committed,
            elapsed_s: out.elapsed.as_secs_f64(),
            commits_per_sec: out.throughput,
            fsync_batches: wal.stats().batches,
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    // File backend: every commit journaled + fsynced by the store
    // itself (no group commit) — the per-commit durability ceiling.
    {
        let dir = scratch("filestore");
        let backend: Arc<dyn StorageBackend> = Arc::new(
            FileBackend::open(&dir, FileBackendConfig::default()).expect("open file backend"),
        );
        let (w, programs) = batch(n_txns, 0x00F1_9001);
        let (sched, _hierarchy) = build_hdd_on(backend, &w, HddConfig::default());
        let cfg = ConcurrentConfig {
            workers,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        points.push(DurabilityPoint {
            scheduler: "hdd-file".to_string(),
            workers,
            batch_frames: 0,
            committed: out.stats.committed,
            elapsed_s: out.elapsed.as_secs_f64(),
            commits_per_sec: out.throughput,
            fsync_batches: 0,
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    points
}

/// Synthesize a committed-writes redo log with `txns` transactions.
fn synthetic_log(txns: usize) -> Vec<ScheduleEvent> {
    let mut events = Vec::with_capacity(txns * 3);
    for i in 0..txns as u64 {
        let txn = TxnId(i + 1);
        let ts = Timestamp(i + 1);
        let g = GranuleId::new(SegmentId(0), i % 64);
        events.push(ScheduleEvent::Begin {
            txn,
            start_ts: ts,
            class: Some(ClassId(0)),
        });
        events.push(ScheduleEvent::Write {
            txn,
            granule: g,
            version: ts,
            value: Arc::new(Value::Int(i as i64)),
        });
        events.push(ScheduleEvent::Commit {
            txn,
            commit_ts: Timestamp(i + 1_000_000),
        });
    }
    events
}

/// Leg 3: recovery wall time vs log length, both backends.
pub fn recovery_sweep(quick: bool) -> Vec<RecoveryPoint> {
    let sizes: &[usize] = if quick {
        &[100, 400]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let mut points = Vec::new();
    for &txns in sizes {
        let events = synthetic_log(txns);
        let seeds: Vec<VersionRecord> = (0..64)
            .map(|k| VersionRecord {
                granule: GranuleId::new(SegmentId(0), k),
                ts: Timestamp(0),
                writer: TxnId(0),
                value: Arc::new(Value::Int(0)),
            })
            .collect();

        let mem = MvStore::new();
        mem.put_versions(&seeds);
        let t = Instant::now();
        let report = mvstore::recover(&mem, &events);
        points.push(RecoveryPoint {
            backend: "memory",
            events: events.len(),
            redo_applied: report.versions_installed as u64,
            recover_ms: t.elapsed().as_secs_f64() * 1e3,
        });

        let dir = scratch("recover");
        let file = FileBackend::open(&dir, FileBackendConfig::default()).expect("open backend");
        file.put_versions(&seeds);
        let t = Instant::now();
        let report = mvstore::recover(&file, &events);
        points.push(RecoveryPoint {
            backend: "file",
            events: events.len(),
            redo_applied: report.versions_installed as u64,
            recover_ms: t.elapsed().as_secs_f64() * 1e3,
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    points
}

/// Leg 4 tallies.
#[derive(Debug, Default)]
pub struct SoakTally {
    /// Seeds run.
    pub seeds: usize,
    /// Durably acked commits across phase-1 runs.
    pub committed: usize,
    /// Commits denied their ack because the WAL had crashed.
    pub wal_lost: usize,
    /// Seeds whose WAL actually crashed (the fault fired in time).
    pub disk_crashes: usize,
    /// Seeds whose on-disk WAL had a torn tail.
    pub torn_tails: usize,
    /// Worker crash faults injected (phase 1).
    pub worker_crashes: usize,
    /// Watchdog reaps across both phases.
    pub reaped: u64,
    /// Acked commits missing from disk on lying-fsync seeds (expected
    /// loss: the disk acked without persisting).
    pub lied_losses: usize,
    /// Acked commits missing from disk on any *other* seed — must be 0:
    /// the ack rule says a counted commit is on disk.
    pub ack_violations: usize,
    /// Stitched post-recovery logs that certified clean.
    pub recovered_certified: usize,
    /// Duplicate begin/commit/abort timestamps across the crash
    /// boundary — must be 0.
    pub ts_collisions: usize,
}

/// Begin/commit/abort timestamps of a log (uniqueness must survive the
/// crash boundary).
fn end_point_timestamps(events: &[ScheduleEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|ev| match ev {
            ScheduleEvent::Begin { start_ts, .. } => Some(start_ts.0),
            ScheduleEvent::Commit { commit_ts, .. } => Some(commit_ts.0),
            ScheduleEvent::Abort { abort_ts, .. } => Some(abort_ts.0),
            _ => None,
        })
        .collect()
}

/// One seed of the disk-fault soak: journaled chaos phase, process
/// death, recovery from on-disk bytes alone, resumed phase, stitched
/// certification.
fn soak_one(seed: u64, n: usize, tally: &mut SoakTally) {
    let mut w = workload();
    let mut rng = StdRng::seed_from_u64(seed);
    let config = HddConfig {
        txn_lease: Some(LEASE),
        ..HddConfig::default()
    };
    let dir = scratch("soak");
    let wal_path = dir.join("run.wal");
    let data_dir = dir.join("data");

    // The WAL is the durability authority: the file backend journals
    // seeds (and recovery replays) but not live commits, so its
    // segments never get ahead of a torn WAL.
    let store_cfg = FileBackendConfig {
        log_commits: false,
        ..FileBackendConfig::default()
    };
    let disk_fault = DiskFaultPlan::generate(seed, 6);
    let lying_disk = matches!(disk_fault.kind, DiskFaultKind::DropFsync { .. });
    let wal = Arc::new(
        GroupCommitWal::with_fault(
            &wal_path,
            GroupCommitConfig {
                max_batch_frames: 4,
                ..GroupCommitConfig::default()
            },
            Some(Box::new(disk_fault)),
        )
        .expect("create WAL"),
    );
    let backend: Arc<dyn StorageBackend> =
        Arc::new(FileBackend::open(&data_dir, store_cfg.clone()).expect("open backend"));
    let (sched, hierarchy) = build_hdd_on(backend, &w, config.clone());

    // Phase 1: worker faults AND disk faults at once.
    let phase1: Vec<_> = (0..n).map(|_| w.generate(&mut rng)).collect();
    let plan = FaultPlan::generate(
        seed,
        phase1.len(),
        &ChaosConfig {
            crash_prob: 0.05,
            stall_prob: 0.05,
            delay_prob: 0.05,
            max_after_ops: 3,
            stall_micros: 2 * LEASE.as_micros() as u64,
            delay_micros: 300,
        },
    );
    let report = run_chaos(
        sched.as_ref(),
        phase1,
        &plan,
        &ChaosRunConfig {
            drain: 10 * LEASE,
            wal: Some(Arc::clone(&wal)),
            ..ChaosRunConfig::default()
        },
    );
    tally.seeds += 1;
    tally.committed += report.committed;
    tally.wal_lost += report.wal_lost;
    tally.worker_crashes += report.crashed;
    tally.reaped += sched.metrics().snapshot().rej_watchdog_abort;
    if wal.crashed() {
        tally.disk_crashes += 1;
    }

    // Process death: every in-memory structure is gone. Only the two
    // on-disk artifacts survive.
    drop(sched);
    drop(wal);

    // Recovery from on-disk state alone: decode the torn WAL, reopen
    // the segments (which replay the journaled seeds), resume.
    let bytes = std::fs::read(&wal_path).expect("read WAL bytes");
    let (survivors, wal_report) = decode_wal(&bytes).expect("own WAL is never foreign");
    if wal_report.torn() {
        tally.torn_tails += 1;
    }
    let durable_commits = survivors
        .iter()
        .filter(|e| matches!(e, ScheduleEvent::Commit { .. }))
        .count();
    // Only journaled (update) commits owe the disk a record; read-only
    // commits count in `committed` but have nothing to persist.
    let missing = report.journaled.saturating_sub(durable_commits);
    if lying_disk {
        tally.lied_losses += missing;
    } else {
        tally.ack_violations += missing;
    }

    let backend2: Arc<dyn StorageBackend> =
        Arc::new(FileBackend::open(&data_dir, store_cfg).expect("reopen backend"));
    let (resumed, resume_report) =
        hdd::resume(Arc::clone(&hierarchy), backend2, &survivors, config);
    debug_assert!(resume_report.resumes_after > resume_report.recovery.high_water_mark);

    // Phase 2 on the survivor, clean.
    let phase2: Vec<_> = (0..n / 2).map(|_| w.generate(&mut rng)).collect();
    let plan2 = FaultPlan::clean(phase2.len());
    run_chaos(&resumed, phase2, &plan2, &ChaosRunConfig::default());
    tally.reaped += resumed.metrics().snapshot().rej_watchdog_abort;

    let stitched = resumed.log().events();
    let stamps = end_point_timestamps(&stitched);
    let distinct: HashSet<u64> = stamps.iter().copied().collect();
    tally.ts_collisions += stamps.len() - distinct.len();
    if certify_log("hdd", resumed.log(), Some(&hierarchy)).ok() {
        tally.recovered_certified += 1;
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Run the disk-fault soak over `seeds` seeds.
pub fn soak(seeds: u64, n: usize) -> SoakTally {
    let mut tally = SoakTally::default();
    for seed in 0..seeds {
        soak_one(seed, n, &mut tally);
    }
    tally
}

/// Serialize the throughput sweep as JSON (one `results` line per
/// point, same shape `crate::baseline` scans).
pub fn to_json(points: &[DurabilityPoint]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"durability\",\n  \"workload\": \"inventory\",\n  \"results\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"workers\": {}, \"batch_frames\": {}, \
             \"committed\": {}, \"elapsed_s\": {:.6}, \"commits_per_sec\": {:.1}, \
             \"fsync_batches\": {}}}{}\n",
            p.scheduler,
            p.workers,
            p.batch_frames,
            p.committed,
            p.elapsed_s,
            p.commits_per_sec,
            p.fsync_batches,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Run E19 and return the table. Full runs write `BENCH_e19.json`.
pub fn run(quick: bool) -> Table {
    let points = throughput_sweep(quick);
    if !quick && !points.is_empty() {
        if let Err(e) = std::fs::write("BENCH_e19.json", to_json(&points)) {
            eprintln!("warning: could not write BENCH_e19.json: {e}");
        }
    }
    let recovery = recovery_sweep(quick);
    let (seeds, n) = if quick { (12, 30) } else { (200, 48) };
    let tally = soak(seeds, n);

    let mut table = Table::new(
        "E19 — durable tier: group commit, backends, recovery, disk faults (inventory)",
        &["row", "a", "b", "c", "d", "e"],
    );
    for p in &points {
        table.row(&[
            format!("tput/{}", p.scheduler),
            format!("workers={}", p.workers),
            format!("batch={}", p.batch_frames),
            format!("committed={}", p.committed),
            format!("cps={}", f2(p.commits_per_sec)),
            format!("fsyncs={}", p.fsync_batches),
        ]);
    }
    for p in &recovery {
        table.row(&[
            format!("recover/{}/{}", p.backend, p.events),
            format!("events={}", p.events),
            format!("redo={}", p.redo_applied),
            format!("ms={}", f2(p.recover_ms)),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table.row(&[
        "soak".to_string(),
        format!("seeds={}", tally.seeds),
        format!("committed={}", tally.committed),
        format!("disk-crashes={}", tally.disk_crashes),
        format!("wal-lost={}", tally.wal_lost),
        format!("torn={}", tally.torn_tails),
    ]);
    table.row(&[
        "soak-verdict".to_string(),
        format!("certified={}", tally.recovered_certified),
        format!("ts-collisions={}", tally.ts_collisions),
        format!("ack-violations={}", tally.ack_violations),
        format!("lied-losses={}", tally.lied_losses),
        format!("reaped={}", tally.reaped),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_throughput_sweep_covers_the_grid() {
        let points = throughput_sweep(true);
        if points.is_empty() {
            return; // host below the worker cap
        }
        assert_eq!(points.len(), 6, "baseline + 4 batch sizes + file row");
        for p in &points {
            assert!(p.committed > 0, "{p:?}");
            assert!(p.commits_per_sec > 0.0, "{p:?}");
        }
        let b1 = points.iter().find(|p| p.batch_frames == 1).unwrap();
        assert!(
            b1.fsync_batches as usize >= b1.committed / 2,
            "batch=1 can only merge frames racing the same leader window: {b1:?}"
        );
        let json = to_json(&points);
        assert!(json.contains("\"scheduler\": \"hdd-wal-b16\""));
        assert!(
            crate::baseline::recorded_commits_per_sec_str(&json, "hdd-wal-b16", points[0].workers)
                .is_some(),
            "bench-gate scanner must parse the emitted rows"
        );
    }

    #[test]
    fn recovery_cost_grows_with_log_length_on_both_backends() {
        let points = recovery_sweep(true);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert_eq!(p.redo_applied as usize, p.events / 3, "{p:?}");
        }
    }

    #[test]
    fn disk_fault_soak_recovers_from_disk_alone() {
        let tally = soak(12, 30);
        assert_eq!(tally.seeds, 12);
        assert_eq!(
            tally.recovered_certified, 12,
            "every stitched post-recovery log must certify clean: {tally:?}"
        );
        assert_eq!(tally.ts_collisions, 0, "{tally:?}");
        assert_eq!(
            tally.ack_violations, 0,
            "a counted commit missing from disk breaks the ack rule: {tally:?}"
        );
        assert!(
            tally.disk_crashes > 0,
            "the fault schedules must actually crash some WALs: {tally:?}"
        );
        assert!(tally.committed > 0, "{tally:?}");
    }
}
