//! **E8 (Figure 8)** — read-only transactions on one critical path.
//!
//! Figure 8's `t1` reads segments that all lie on one critical path and
//! therefore rides Protocol A from a fictitious class below the chain:
//! no read timestamps, no waiting. This experiment floods the inventory
//! application with on-chain read-only reports alongside update traffic
//! and compares what each scheduler charges the reports.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::{build_scheduler, SchedulerKind};
use crate::report::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::TxnProgram;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Schedulers compared in E8.
pub const KINDS: &[SchedulerKind] = &[
    SchedulerKind::Hdd,
    SchedulerKind::Mv2pl,
    SchedulerKind::TwoPl,
    SchedulerKind::Tso,
    SchedulerKind::Mvto,
    SchedulerKind::Sdd1,
];

/// Report-heavy inventory mix (no off-chain audits: Figure 8 is about
/// the on-chain case; Figure 9/E9 covers the walls).
pub fn batch(n: usize, seed: u64) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 32,
        w_type1: 30,
        w_type2: 10,
        w_type3: 5,
        w_type4: 3,
        w_type5: 3,
        w_report: 50,
        w_audit: 0,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

/// Run E8.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 120 } else { 800 };
    let mut table = Table::new(
        "E8 / Figure 8 — read-only transactions on one critical path",
        &[
            "scheduler",
            "commits",
            "read_regs",
            "regs_per_commit",
            "unregistered_reads",
            "blocks",
            "rejections",
            "serializable",
        ],
    );
    for &kind in KINDS {
        let (w, programs) = batch(n_txns, 0x00F1_6008);
        let (sched, _store) = build_scheduler(kind, &w);
        let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
        let m = &stats.metrics;
        table.row(&[
            kind.name().to_string(),
            stats.committed.to_string(),
            m.read_registrations.to_string(),
            f2(m.read_registrations_per_commit()),
            (m.cross_class_reads + m.wall_reads).to_string(),
            m.blocks.to_string(),
            m.rejections.to_string(),
            format!("{:?}", stats.serializable.unwrap_or(false)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_reports_ride_protocol_a_free() {
        let t = run(true);
        for k in ["hdd", "mv2pl", "2pl", "tso", "mvto", "sdd1"] {
            assert_eq!(t.cell(k, "serializable"), Some("true"), "{k}");
        }
        let regs = |k: &str| t.cell(k, "read_regs").unwrap().parse::<u64>().unwrap();
        // HDD: reports + cross-class reads all unregistered; only
        // root-segment Protocol B reads register. 2PL/TSO/MVTO register
        // every read including all report reads.
        assert!(
            regs("hdd") < regs("2pl") / 2,
            "hdd {} vs 2pl {}",
            regs("hdd"),
            regs("2pl")
        );
        assert!(regs("hdd") < regs("mvto") / 2);
        // MV2PL also spares read-only transactions, but still registers
        // update transactions' cross-class reads — HDD registers fewer.
        assert!(regs("hdd") <= regs("mv2pl"));
        let unreg = |k: &str| {
            t.cell(k, "unregistered_reads")
                .unwrap()
                .parse::<u64>()
                .unwrap()
        };
        assert!(unreg("hdd") > 0);
    }
}
