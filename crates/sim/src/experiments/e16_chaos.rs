//! E16 — chaos soak: self-healing under injected faults.
//!
//! A seeded soak over the inventory workload (the branching hierarchy
//! `3→2→1→0←4`, so a straggler in the shared class 0 genuinely wedges
//! time walls) with randomized fault schedules: worker crashes that
//! abandon transactions without aborting, stalls that outlive the
//! transaction lease, and delayed commits. The claims measured:
//!
//! * **Every surviving log certifies clean.** Crashed workers leave
//!   running registry intervals and pending versions; the straggler
//!   watchdog reaps them into real `Abort` events, so the full log —
//!   faults included — passes the offline certifier's dependency-cycle
//!   and partition-synchronization checks.
//! * **The time wall resumes within a bounded interval.** The chaos
//!   monitor samples `timewalls_released`; the longest release gap stays
//!   bounded (lease + reap latency), never "forever".
//! * **Crashes never leak open flight spans.** The soak runs with the
//!   flight recorder sampling every transaction; a crash fault closes
//!   its span tree as `Abandoned` at the fault point and the watchdog's
//!   reap overrides it with `Reaped`, so assembling the span stream
//!   after the drain finds zero open flights.
//! * **Recovery never reuses pre-crash timestamps.** Each run's log is
//!   encoded into the checksummed WAL format, its tail torn, decoded
//!   back (truncating at the first bad frame), and resumed via
//!   [`hdd::resume`] into a fresh store and registry; a second workload
//!   phase then runs on the survivor. The stitched log must certify
//!   clean and contain no duplicated begin/commit/abort timestamps —
//!   the restored high-water mark keeps Protocol B's "timestamps only
//!   grow" invariant across the crash.

use crate::factory::build_hdd_with_config;
use crate::report::Table;
use certify::certifier::certify_log;
use chaos::{run_chaos, ChaosConfig, ChaosRunConfig, FaultPlan};
use hdd::protocol::HddConfig;
use mvstore::MvStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use txn_model::{decode_events, encode_events, ScheduleEvent, Scheduler, TxnProgram};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Transaction lease for the soak: short enough that reaps are fast,
/// long enough that healthy transactions never trip it.
const LEASE: Duration = Duration::from_millis(5);

/// Per-seed outcome tallies.
#[derive(Debug, Default)]
struct Tally {
    seeds: usize,
    committed: usize,
    crashed: usize,
    stalled: usize,
    delayed: usize,
    reaped: u64,
    certified: usize,
    torn: usize,
    recovered_certified: usize,
    ts_collisions: usize,
    max_gap: Duration,
    open_spans: usize,
    crash_spans: usize,
}

fn workload() -> Inventory {
    Inventory::new(InventoryConfig {
        items: 16,
        ..InventoryConfig::default()
    })
}

fn programs(w: &mut Inventory, rng: &mut StdRng, n: usize) -> Vec<TxnProgram> {
    (0..n).map(|_| w.generate(rng)).collect()
}

/// Begin/commit/abort timestamps of a log — the values that must stay
/// globally unique across a crash/recovery boundary.
fn end_point_timestamps(events: &[ScheduleEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|ev| match ev {
            ScheduleEvent::Begin { start_ts, .. } => Some(start_ts.0),
            ScheduleEvent::Commit { commit_ts, .. } => Some(commit_ts.0),
            ScheduleEvent::Abort { abort_ts, .. } => Some(abort_ts.0),
            _ => None,
        })
        .collect()
}

/// Tear the WAL's tail: odd seeds corrupt a byte near the end (the
/// checksum catches it), even seeds chop mid-frame.
fn tear(mut bytes: Vec<u8>, seed: u64) -> Vec<u8> {
    if bytes.len() < 32 {
        return bytes;
    }
    if seed % 2 == 1 {
        let idx = bytes.len() - 9;
        bytes[idx] ^= 0x5a;
        bytes
    } else {
        let keep = bytes.len() - bytes.len() / 7 - 3;
        bytes.truncate(keep);
        bytes
    }
}

/// One seed of the soak: chaos phase, certification, torn-tail
/// recovery, resumed phase, stitched certification.
fn soak_one(seed: u64, n: usize, tally: &mut Tally) {
    let mut w = workload();
    let mut rng = StdRng::seed_from_u64(seed);
    let config = HddConfig {
        txn_lease: Some(LEASE),
        ..HddConfig::default()
    };
    let (sched, _store, hierarchy) = build_hdd_with_config(&w, config.clone());

    let batch = programs(&mut w, &mut rng, n);
    let plan = FaultPlan::generate(
        seed,
        batch.len(),
        &ChaosConfig {
            crash_prob: 0.08,
            stall_prob: 0.08,
            delay_prob: 0.08,
            max_after_ops: 3,
            stall_micros: 2 * LEASE.as_micros() as u64,
            delay_micros: 300,
        },
    );
    let report = run_chaos(
        sched.as_ref(),
        batch,
        &plan,
        &ChaosRunConfig {
            drain: 10 * LEASE,
            flight_sample: 1,
            ..ChaosRunConfig::default()
        },
    );
    tally.seeds += 1;
    tally.committed += report.committed;
    tally.crashed += report.crashed;
    tally.stalled += report.stalled;
    tally.delayed += report.delayed;
    tally.reaped += sched.metrics().snapshot().rej_watchdog_abort;
    tally.max_gap = tally.max_gap.max(report.max_release_gap);
    if certify_log("hdd", sched.log(), Some(&hierarchy)).ok() {
        tally.certified += 1;
    }
    // Span-lifecycle invariant: every admitted flight must have closed
    // — crashes as Abandoned (or Reaped once the watchdog catches up),
    // everything else with its driver terminal.
    let flight_log = obs::assemble(&sched.metrics().obs.flight.drain());
    tally.open_spans += flight_log.open;
    tally.crash_spans += flight_log
        .flights
        .iter()
        .filter(|f| {
            matches!(
                f.terminal,
                Some(obs::Terminal::Abandoned) | Some(obs::Terminal::Reaped)
            )
        })
        .count();

    // Torn-tail recovery leg: WAL round trip with a damaged tail, then
    // resume and run a second phase on the survivor.
    let events = sched.log().events();
    let wal = tear(encode_events(&events), seed);
    let (survivors, wal_report) = decode_events(&wal);
    if wal_report.torn() {
        tally.torn += 1;
    }
    let store = Arc::new(MvStore::new());
    w.seed(store.as_ref());
    let (resumed, resume_report) = hdd::resume(Arc::clone(&hierarchy), store, &survivors, config);
    let phase2 = programs(&mut w, &mut rng, n / 2);
    let plan2 = FaultPlan::clean(phase2.len());
    run_chaos(&resumed, phase2, &plan2, &ChaosRunConfig::default());

    let stitched = resumed.log().events();
    let stamps = end_point_timestamps(&stitched);
    let distinct: HashSet<u64> = stamps.iter().copied().collect();
    tally.ts_collisions += stamps.len() - distinct.len();
    debug_assert!(resume_report.resumes_after.0 > resume_report.recovery.high_water_mark.0);
    if certify_log("hdd", resumed.log(), Some(&hierarchy)).ok() {
        tally.recovered_certified += 1;
    }
}

/// Run the soak.
pub fn run(quick: bool) -> Table {
    let (seeds, n) = if quick { (12, 30) } else { (200, 48) };
    let mut tally = Tally::default();
    for seed in 0..seeds {
        soak_one(seed as u64, n, &mut tally);
    }
    let mut table = Table::new(
        "E16 — chaos soak: crashes, stalls, torn logs, recovery (inventory)",
        &[
            "phase",
            "seeds",
            "committed",
            "crashed",
            "stalled",
            "delayed",
            "watchdog-reaps",
            "open-spans",
            "crash-spans",
            "torn-tails",
            "certified-ok",
            "ts-collisions",
            "max-wall-gap-ms",
        ],
    );
    table.row(&[
        "soak".to_string(),
        tally.seeds.to_string(),
        tally.committed.to_string(),
        tally.crashed.to_string(),
        tally.stalled.to_string(),
        tally.delayed.to_string(),
        tally.reaped.to_string(),
        tally.open_spans.to_string(),
        tally.crash_spans.to_string(),
        "-".to_string(),
        tally.certified.to_string(),
        "-".to_string(),
        tally.max_gap.as_millis().to_string(),
    ]);
    table.row(&[
        "recovery".to_string(),
        tally.seeds.to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        tally.torn.to_string(),
        tally.recovered_certified.to_string(),
        tally.ts_collisions.to_string(),
        "-".to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_soak_certifies_and_heals() {
        let t = run(true);
        let cell = |row: &str, col: &str| t.cell(row, col).unwrap().to_string();
        let seeds: usize = cell("soak", "seeds").parse().unwrap();
        assert_eq!(
            cell("soak", "certified-ok"),
            seeds.to_string(),
            "every surviving log must certify clean"
        );
        assert_eq!(
            cell("recovery", "certified-ok"),
            seeds.to_string(),
            "every stitched post-recovery log must certify clean"
        );
        assert_eq!(cell("recovery", "ts-collisions"), "0");
        let crashed: usize = cell("soak", "crashed").parse().unwrap();
        let reaped: usize = cell("soak", "watchdog-reaps").parse().unwrap();
        assert!(crashed > 0, "the fault mix must actually crash workers");
        assert!(
            reaped >= crashed,
            "every crashed corpse must be reaped ({reaped} reaps, {crashed} crashes)"
        );
        assert_eq!(
            cell("soak", "open-spans"),
            "0",
            "crashes and reaps must close every sampled flight span"
        );
        let crash_spans: usize = cell("soak", "crash-spans").parse().unwrap();
        assert!(
            crash_spans >= crashed,
            "each crash must terminate its flight as Abandoned/Reaped \
             ({crash_spans} crash spans, {crashed} crashes)"
        );
        let torn: usize = cell("recovery", "torn-tails").parse().unwrap();
        assert!(torn > 0, "the tear must actually corrupt some WAL tails");
        let gap_ms: u64 = cell("soak", "max-wall-gap-ms").parse().unwrap();
        assert!(
            gap_ms < 30_000,
            "time wall must resume within a bounded interval (saw {gap_ms} ms)"
        );
    }
}
