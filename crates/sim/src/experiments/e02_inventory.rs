//! **E2 (Figure 2)** — the retail inventory application.
//!
//! Runs the paper's motivating workload (event inserts, periodic
//! inventory postings, reorder checks, supplier profiles, accounting,
//! ad-hoc reports/audits) under every sound scheduler and reports the
//! paper's cost measures: read registrations per commit, unregistered
//! (Protocol A/C-style) reads, blocks and rejections.

use crate::driver::{run_interleaved, DriverConfig};
use crate::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use crate::report::{f2, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use txn_model::TxnProgram;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

/// Generate a batch of inventory programs.
pub fn batch(n: usize, seed: u64) -> (Inventory, Vec<TxnProgram>) {
    let mut w = Inventory::new(InventoryConfig {
        items: 32,
        ..InventoryConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let programs = (0..n).map(|_| w.generate(&mut rng)).collect();
    (w, programs)
}

/// Run E2.
pub fn run(quick: bool) -> Table {
    let n_txns = if quick { 120 } else { 800 };
    let mut table = Table::new(
        "E2 / Figure 2 — inventory application, scheduler costs",
        &[
            "scheduler",
            "commits",
            "restarts",
            "read_regs",
            "regs_per_commit",
            "unregistered_reads",
            "blocks",
            "rejections",
            "serializable",
        ],
    );
    for &kind in ALL_KINDS {
        run_one(kind, n_txns, &mut table);
    }
    table
}

fn run_one(kind: SchedulerKind, n_txns: usize, table: &mut Table) {
    let (w, programs) = batch(n_txns, 0x00F1_6002);
    let (sched, _store) = build_scheduler(kind, &w);
    let stats = run_interleaved(sched.as_ref(), programs, &DriverConfig::default());
    let m = &stats.metrics;
    table.row(&[
        kind.name().to_string(),
        stats.committed.to_string(),
        stats.restarts.to_string(),
        m.read_registrations.to_string(),
        f2(m.read_registrations_per_commit()),
        (m.cross_class_reads + m.wall_reads).to_string(),
        m.blocks.to_string(),
        m.rejections.to_string(),
        format!("{:?}", stats.serializable.unwrap_or(false)),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_registers_least_and_everyone_serializes() {
        let t = run(true);
        let regs = |k: &str| t.cell(k, "read_regs").unwrap().parse::<u64>().unwrap();
        for k in ["hdd", "2pl", "tso", "mvto", "mv2pl", "sdd1"] {
            assert_eq!(t.cell(k, "serializable"), Some("true"), "{k}");
        }
        // The paper's claim: HDD registers only root-segment reads; 2PL
        // and TSO register every read.
        assert!(
            regs("hdd") < regs("2pl"),
            "hdd ({}) must register fewer reads than 2pl ({})",
            regs("hdd"),
            regs("2pl")
        );
        assert!(regs("hdd") < regs("tso"));
        assert!(regs("hdd") < regs("mvto"));
        // SDD-1 registers nothing but pays in blocking.
        assert_eq!(regs("sdd1"), 0);
        let blocks = |k: &str| t.cell(k, "blocks").unwrap().parse::<u64>().unwrap();
        assert!(blocks("sdd1") > blocks("hdd"));
    }
}
