//! Reading recorded throughput baselines out of the `BENCH_*.json`
//! artifacts (hand-rolled line scan; no serde in the offline build).
//!
//! `BENCH_hotpath.json` and `BENCH_obs.json` serialize one result per
//! line in the shape emitted by `e13_hotpath::to_json`, so a baseline
//! lookup is a scan for the line carrying the right `scheduler` and
//! `workers` pair — the same contract the CI gates have relied on since
//! the first bench gate, now shared instead of re-implemented per gate.

/// Recorded commits/sec for `scheduler` at `workers` in the JSON
/// artifact at `path`. `None` when the file is missing or carries no
/// matching line — callers downgrade their floor to report-only.
pub fn recorded_commits_per_sec(path: &str, scheduler: &str, workers: usize) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    recorded_commits_per_sec_str(&text, scheduler, workers)
}

/// Same scan over an in-memory JSON artifact (tests, freshly-generated
/// sweeps not yet on disk).
pub fn recorded_commits_per_sec_str(text: &str, scheduler: &str, workers: usize) -> Option<f64> {
    let sched_key = format!("\"scheduler\": \"{scheduler}\"");
    let workers_key = format!("\"workers\": {workers},");
    for line in text.lines() {
        if line.contains(&sched_key) && line.contains(&workers_key) {
            let key = "\"commits_per_sec\": ";
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let end = rest.find(',').unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_the_matching_scheduler_and_worker_line() {
        let json = "{\n  \"results\": [\n    \
                    {\"scheduler\": \"hdd\", \"workers\": 1, \"commits_per_sec\": 100.5, \"x\": 1}\n    \
                    {\"scheduler\": \"hdd\", \"workers\": 16, \"commits_per_sec\": 88.0, \"x\": 1}\n    \
                    {\"scheduler\": \"mvto\", \"workers\": 1, \"commits_per_sec\": 50.0, \"x\": 1}\n  ]\n}\n";
        let dir = std::env::temp_dir().join("hdd-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(&path, json).unwrap();
        let p = path.to_str().unwrap();
        assert_eq!(recorded_commits_per_sec(p, "hdd", 1), Some(100.5));
        assert_eq!(recorded_commits_per_sec(p, "hdd", 16), Some(88.0));
        assert_eq!(recorded_commits_per_sec(p, "mvto", 1), Some(50.0));
        // `workers: 1` must not match the `workers: 16` line.
        assert_eq!(recorded_commits_per_sec(p, "twopl", 1), None);
        assert_eq!(
            recorded_commits_per_sec("/no/such/file.json", "hdd", 1),
            None
        );
    }
}
