//! Reading recorded throughput baselines out of the `BENCH_*.json`
//! artifacts (hand-rolled line scan; no serde in the offline build).
//!
//! `BENCH_hotpath.json` and `BENCH_obs.json` serialize one result per
//! line in the shape emitted by `e13_hotpath::to_json`, so a baseline
//! lookup is a scan for the line carrying the right `scheduler` and
//! `workers` pair — the same contract the CI gates have relied on since
//! the first bench gate, now shared instead of re-implemented per gate.
//! `BENCH_e17.json` (per-workload gauge sweeps) and `BENCH_e19.json`
//! (WAL batch-size sweeps) follow the same line discipline with
//! different keys, so all three artifact families share one scanner.

/// Scan `text` for the first line carrying every key in `keys`, and
/// parse its `commits_per_sec` field. The keys are literal JSON
/// fragments (`"workers": 8,`), so a number key must include the
/// trailing delimiter to avoid prefix matches (8 vs 80).
fn scan_commits_per_sec(text: &str, keys: &[String]) -> Option<f64> {
    for line in text.lines() {
        if keys.iter().all(|k| line.contains(k.as_str())) {
            let key = "\"commits_per_sec\": ";
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let end = rest.find(',').unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

/// Recorded commits/sec for `scheduler` at `workers` in the JSON
/// artifact at `path` (`BENCH_hotpath.json` / `BENCH_obs.json` shape).
/// `None` when the file is missing or carries no matching line —
/// callers downgrade their floor to report-only.
pub fn recorded_commits_per_sec(path: &str, scheduler: &str, workers: usize) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    recorded_commits_per_sec_str(&text, scheduler, workers)
}

/// Same scan over an in-memory JSON artifact (tests, freshly-generated
/// sweeps not yet on disk).
pub fn recorded_commits_per_sec_str(text: &str, scheduler: &str, workers: usize) -> Option<f64> {
    scan_commits_per_sec(
        text,
        &[
            format!("\"scheduler\": \"{scheduler}\""),
            format!("\"workers\": {workers},"),
        ],
    )
}

/// Recorded commits/sec for `workload` at `workers` in a
/// `BENCH_e17.json`-shaped artifact (the obs-enabled gauge sweep:
/// lines keyed on `"workload"` instead of `"scheduler"`).
pub fn recorded_workload_commits_per_sec(
    path: &str,
    workload: &str,
    workers: usize,
) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    scan_commits_per_sec(
        &text,
        &[
            format!("\"workload\": \"{workload}\""),
            format!("\"workers\": {workers},"),
        ],
    )
}

/// Recorded commits/sec for the WAL group-commit sweep in a
/// `BENCH_e19.json`-shaped artifact, keyed on the frames-per-fsync
/// batch size and worker count (the scheduler key there is the derived
/// `hdd-wal-b{batch}` tag, so `batch_frames` is the stable handle).
pub fn recorded_wal_commits_per_sec(
    path: &str,
    batch_frames: usize,
    workers: usize,
) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    scan_commits_per_sec(
        &text,
        &[
            format!("\"batch_frames\": {batch_frames},"),
            format!("\"workers\": {workers},"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str, json: &str) -> String {
        let dir = std::env::temp_dir().join("hdd-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, json).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn scans_the_matching_scheduler_and_worker_line() {
        let json = "{\n  \"results\": [\n    \
                    {\"scheduler\": \"hdd\", \"workers\": 1, \"commits_per_sec\": 100.5, \"x\": 1}\n    \
                    {\"scheduler\": \"hdd\", \"workers\": 16, \"commits_per_sec\": 88.0, \"x\": 1}\n    \
                    {\"scheduler\": \"mvto\", \"workers\": 1, \"commits_per_sec\": 50.0, \"x\": 1}\n  ]\n}\n";
        let p = fixture("bench.json", json);
        assert_eq!(recorded_commits_per_sec(&p, "hdd", 1), Some(100.5));
        assert_eq!(recorded_commits_per_sec(&p, "hdd", 16), Some(88.0));
        assert_eq!(recorded_commits_per_sec(&p, "mvto", 1), Some(50.0));
        // `workers: 1` must not match the `workers: 16` line.
        assert_eq!(recorded_commits_per_sec(&p, "twopl", 1), None);
        assert_eq!(
            recorded_commits_per_sec("/no/such/file.json", "hdd", 1),
            None
        );
    }

    #[test]
    fn scans_the_e17_per_workload_shape() {
        // Two lines in the exact shape `e17_gauges::to_json` emits.
        let json = "{\n  \"experiment\": \"gauges\",\n  \"results\": [\n    \
                    {\"workload\": \"banking\", \"workers\": 4, \"committed\": 900, \
                     \"commits_per_sec\": 1234.5, \"cross_class_reads\": 3, \"wall_reads\": 0},\n    \
                    {\"workload\": \"synthetic\", \"workers\": 4, \"committed\": 800, \
                     \"commits_per_sec\": 987.0, \"cross_class_reads\": 9, \"wall_reads\": 2}\n  ]\n}\n";
        let p = fixture("bench_e17.json", json);
        assert_eq!(
            recorded_workload_commits_per_sec(&p, "banking", 4),
            Some(1234.5)
        );
        assert_eq!(
            recorded_workload_commits_per_sec(&p, "synthetic", 4),
            Some(987.0)
        );
        assert_eq!(recorded_workload_commits_per_sec(&p, "banking", 8), None);
        assert_eq!(recorded_workload_commits_per_sec(&p, "inventory", 4), None);
    }

    #[test]
    fn scans_the_e19_wal_batch_shape() {
        // Lines in the exact shape `e19_durability::to_json` emits.
        let json = "{\n  \"experiment\": \"durability\",\n  \"workload\": \"inventory\",\n  \"results\": [\n    \
                    {\"scheduler\": \"hdd-wal-b1\", \"workers\": 8, \"batch_frames\": 1, \
                     \"committed\": 500, \"elapsed_s\": 0.5, \"commits_per_sec\": 1000.0, \"fsync_batches\": 500},\n    \
                    {\"scheduler\": \"hdd-wal-b16\", \"workers\": 8, \"batch_frames\": 16, \
                     \"committed\": 500, \"elapsed_s\": 0.1, \"commits_per_sec\": 5000.0, \"fsync_batches\": 32}\n  ]\n}\n";
        let p = fixture("bench_e19.json", json);
        assert_eq!(recorded_wal_commits_per_sec(&p, 1, 8), Some(1000.0));
        assert_eq!(recorded_wal_commits_per_sec(&p, 16, 8), Some(5000.0));
        // `batch_frames: 1` must not match the `batch_frames: 16` line.
        assert_eq!(recorded_wal_commits_per_sec(&p, 6, 8), None);
        assert_eq!(recorded_wal_commits_per_sec(&p, 1, 4), None);
    }
}
