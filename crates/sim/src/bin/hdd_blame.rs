//! `hdd-blame` — transaction flight-recorder profiler.
//!
//! Runs the inventory batch against the hdd scheduler with the flight
//! recorder on, assembles the sampled span trees, and prints the
//! wait-cause blame table, the committed-flight phase profile and the
//! longest critical wait chain. Optionally dumps the span trees as a
//! Perfetto/`chrome://tracing` JSON file with flow arrows along the
//! cause edges.
//!
//! ```text
//! cargo run --release -p sim --bin hdd-blame
//! cargo run --release -p sim --bin hdd-blame -- --workers 8 --txns 20000 \
//!     --sample 4 --top 10 --chrome-trace flights.json
//! cargo run --release -p sim --bin hdd-blame -- --quick   # CI sizes
//! ```

use obs::{assemble, critical_chain, flight_chrome_trace, validate_chrome_trace};
use obs::{BlameReport, PhaseBreakdown, Terminal, NO_CLASS};
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::experiments::e02_inventory::batch;
use sim::factory::{build_scheduler, SchedulerKind};

struct Args {
    workers: usize,
    txns: usize,
    sample: u64,
    top: usize,
    chrome_trace: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let num = |name: &str, default: usize| -> usize {
        flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let quick = argv.iter().any(|a| a == "--quick" || a == "quick");
    Args {
        workers: num("--workers", if quick { 4 } else { 8 }),
        txns: num("--txns", if quick { 2_000 } else { 20_000 }),
        sample: num("--sample", 4) as u64,
        top: num("--top", 10),
        chrome_trace: flag("--chrome-trace"),
    }
}

fn main() {
    let args = parse_args();
    let sample = args.sample.max(1);
    println!(
        "hdd-blame: inventory, {} workers, {} txns, sampling 1-in-{sample}",
        args.workers, args.txns
    );

    let (w, programs) = batch(args.txns, 0x00F1_B1A3);
    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
    let cfg = ConcurrentConfig {
        workers: args.workers,
        obs: true,
        flight_sample: sample,
        verify: false,
        capture_log: false,
        ..ConcurrentConfig::default()
    };
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    println!(
        "run: {} committed in {:.3} s ({:.1} commits/sec), {} sampled flights, {} span events \
         ({} evicted)",
        out.stats.committed,
        out.elapsed.as_secs_f64(),
        out.throughput,
        sched.metrics().obs.flight.sampled_count(),
        sched.metrics().obs.flight.recorded(),
        sched.metrics().obs.flight.dropped(),
    );

    let log = assemble(&sched.metrics().obs.flight.drain());
    if log.open > 0 {
        eprintln!("hdd-blame: WARNING — {} flights never terminated", log.open);
    }

    let blame = BlameReport::build(&log);
    println!();
    print!("{}", blame.render_top(args.top));

    let phases = PhaseBreakdown::of_commits(&log);
    println!();
    println!("phase profile (committed flights):");
    println!("  {}", phases.render());
    for (label, share) in phases.shares() {
        println!("  {label:>7}: {:5.1}%", share * 100.0);
    }

    // Critical chain: start from the committed flight that waited
    // longest and follow its cause edges backwards.
    let victim = log
        .flights
        .iter()
        .filter(|f| f.terminal == Some(Terminal::Committed))
        .max_by_key(|f| f.wait_ns());
    if let Some(f) = victim {
        let chain = critical_chain(&log, f);
        if chain.is_empty() {
            println!("\ncritical chain: the slowest commit never blocked");
        } else {
            println!("\ncritical chain (slowest committed flight, longest wait per hop):");
            for hop in &chain {
                let class = if hop.class == NO_CLASS {
                    "ro".to_string()
                } else {
                    format!("c{}", hop.class)
                };
                println!(
                    "  t{} ({class}) waited {:.3} ms on {}",
                    hop.txn,
                    hop.wait_ns as f64 / 1e6,
                    hop.cause
                );
            }
        }
    }

    if let Some(path) = &args.chrome_trace {
        let trace = flight_chrome_trace(&log);
        match validate_chrome_trace(&trace) {
            Ok(n) => {
                if let Err(e) = std::fs::write(path, &trace) {
                    eprintln!("hdd-blame: could not write {path}: {e}");
                    std::process::exit(1);
                }
                println!("\nwrote {path}: {n} trace events (open in https://ui.perfetto.dev)");
            }
            Err(e) => {
                eprintln!("hdd-blame: generated trace failed validation: {e}");
                std::process::exit(1);
            }
        }
    }

    if blame.coverage() < 0.95 {
        eprintln!(
            "hdd-blame: WARNING — only {:.1}% of measured block time carries a cause edge",
            blame.coverage() * 100.0
        );
    }
}
