//! `hdd-top` — a live terminal dashboard over a running HDD scheduler.
//!
//! Spawns a closed-loop concurrent driver (or the chaos driver with
//! `--chaos`) over a bundled workload, enables the `obs` sidecar, and
//! redraws the gauge board — time-wall lag, per-class `I_old`,
//! registry/settled-cursor lag, MV-store chain depth and GC backlog,
//! reject-reason deltas and the cross-read staleness quantiles — at
//! `--hz` frames per second (default 4). On exit it can dump the final
//! state as Prometheus text exposition (`--prom out.prom`) and the
//! decision trace as a Chrome/Perfetto trace (`--chrome-trace
//! out.json`), both validated before the process exits.
//!
//! ```text
//! cargo run --release -p sim --bin hdd-top -- --workload synthetic --duration-s 10
//! cargo run --release -p sim --bin hdd-top -- --chaos --frames 8 --no-clear
//! cargo run --release -p sim --bin hdd-top -- --frames 4 --prom out.prom --chrome-trace out.json
//! ```

use chaos::driver::{run_chaos, ChaosRunConfig};
use chaos::plan::{ChaosConfig, FaultPlan};
use hdd::protocol::HddConfig;
use obs::{chrome_trace, prometheus_text_full, validate_chrome_trace, validate_prometheus};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::dashboard::{Dashboard, ANSI_CLEAR};
use sim::factory::build_hdd_with_config;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txn_model::Scheduler;
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

const USAGE: &str = "\
hdd-top — live gauge dashboard over a running HDD scheduler

USAGE:
  hdd-top [--workload inventory|banking|synthetic] [--workers N]
          [--txns N] [--duration-s F] [--hz F] [--frames N] [--once]
          [--chaos] [--no-clear] [--prom PATH] [--chrome-trace PATH]

OPTIONS:
  --workload NAME    bundled workload to drive (default: inventory)
  --workers N        driver worker threads (default: 4)
  --txns N           programs per driver wave (default: 2000)
  --duration-s F     stop after F seconds (default: 10)
  --hz F             frames per second (default: 4)
  --frames N         stop after N frames (default: duration-bound)
  --once             drive one bounded wave, render a single frame to
                     stderr and print a snapshot JSON object on stdout
  --chaos            use the fault-injecting chaos driver
  --no-clear         append frames instead of clearing the screen
  --prom PATH        on exit, write Prometheus text exposition to PATH
  --chrome-trace PATH  on exit, write a Chrome/Perfetto trace to PATH
";

struct Opts {
    workload: String,
    workers: usize,
    txns: usize,
    duration_s: f64,
    hz: f64,
    frames: Option<u64>,
    once: bool,
    chaos: bool,
    no_clear: bool,
    prom: Option<String>,
    chrome: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        workload: "inventory".to_string(),
        workers: 4,
        txns: 2000,
        duration_s: 10.0,
        hz: 4.0,
        frames: None,
        once: false,
        chaos: false,
        no_clear: false,
        prom: None,
        chrome: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                o.workload = value(&args, i, "--workload")?;
                i += 1;
            }
            "--workers" => {
                o.workers = value(&args, i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                i += 1;
            }
            "--txns" => {
                o.txns = value(&args, i, "--txns")?
                    .parse()
                    .map_err(|e| format!("--txns: {e}"))?;
                i += 1;
            }
            "--duration-s" => {
                o.duration_s = value(&args, i, "--duration-s")?
                    .parse()
                    .map_err(|e| format!("--duration-s: {e}"))?;
                i += 1;
            }
            "--hz" => {
                o.hz = value(&args, i, "--hz")?
                    .parse()
                    .map_err(|e| format!("--hz: {e}"))?;
                i += 1;
            }
            "--frames" => {
                o.frames = Some(
                    value(&args, i, "--frames")?
                        .parse()
                        .map_err(|e| format!("--frames: {e}"))?,
                );
                i += 1;
            }
            "--once" => o.once = true,
            "--chaos" => o.chaos = true,
            "--no-clear" => o.no_clear = true,
            "--prom" => {
                o.prom = Some(value(&args, i, "--prom")?);
                i += 1;
            }
            "--chrome-trace" => {
                o.chrome = Some(value(&args, i, "--chrome-trace")?);
                i += 1;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if o.hz <= 0.0 {
        return Err("--hz must be positive".to_string());
    }
    Ok(o)
}

fn build_workload(name: &str) -> Result<Box<dyn Workload + Send>, String> {
    match name {
        "inventory" => Ok(Box::new(Inventory::new(InventoryConfig {
            items: 32,
            ..InventoryConfig::default()
        }))),
        "banking" => Ok(Box::new(Banking::new(16))),
        "synthetic" => Ok(Box::new(Synthetic::new(SyntheticConfig::default()))),
        other => Err(format!(
            "unknown workload {other} (inventory|banking|synthetic)"
        )),
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hdd-top: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut w = match build_workload(&opts.workload) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("hdd-top: {e}");
            std::process::exit(2);
        }
    };
    let segment_names = w.segment_names();
    let (sched, _store, hierarchy) = build_hdd_with_config(w.as_ref(), HddConfig::default());
    // The drivers also set this per wave, but turning it on up front
    // means the very first frame already sees live gauges. The drift
    // sketch has its own switch and only hdd-top turns it on.
    sched.metrics().obs.set_enabled(true);
    sched.metrics().obs.drift.set_enabled(true);

    let mode = if opts.chaos { "chaos" } else { "concurrent" };
    let title = format!(
        "{} ({} driver, {} workers)",
        opts.workload, mode, opts.workers
    );

    if opts.once {
        // One bounded wave, one frame (stderr), one JSON object
        // (stdout) — the machine-readable path for scripts and CI.
        let mut rng = StdRng::seed_from_u64(0x70D0_0001);
        let programs: Vec<_> = (0..opts.txns).map(|_| w.generate(&mut rng)).collect();
        if opts.chaos {
            let plan = FaultPlan::generate(0x70D0_1000, opts.txns, &ChaosConfig::default());
            let cfg = ChaosRunConfig {
                workers: opts.workers,
                trace: true,
                ..ChaosRunConfig::default()
            };
            run_chaos(sched.as_ref(), programs, &plan, &cfg);
        } else {
            let cfg = ConcurrentConfig {
                workers: opts.workers,
                obs: true,
                verify: false,
                capture_log: false,
                ..ConcurrentConfig::default()
            };
            run_concurrent(sched.as_ref(), programs, &cfg);
        }
        sched.refresh_gauges_now();
        sched.refresh_drift_now();
        let mut dash =
            Dashboard::new(&title, segment_names.clone()).with_hierarchy(Arc::clone(&hierarchy));
        eprint!("{}", dash.frame(sched.metrics()));
        let m = sched.metrics().snapshot();
        println!(
            "{{\"workload\": \"{}\", \"commits\": {}, \"aborts\": {}, \"rejections\": {}, \
             \"gauges\": {}, \"drift\": {}, \"obs\": {}}}",
            opts.workload,
            m.commits,
            m.aborts,
            m.rejections,
            sched.metrics().obs.gauges.snapshot().to_json(),
            sched.metrics().obs.drift.snapshot().to_json(),
            sched.metrics().obs.snapshot().to_json(),
        );
        return;
    }

    let stop = AtomicBool::new(false);
    let mut frames_rendered = 0u64;

    std::thread::scope(|scope| {
        // Driver thread: seeded waves of programs until told to stop.
        // A wave is bounded (`--txns`), so stopping waits at most one
        // wave, never mid-transaction.
        let sched_ref = &sched;
        let stop_ref = &stop;
        let w = &mut w;
        let driver_opts = (opts.workers, opts.txns, opts.chaos);
        scope.spawn(move || {
            let (workers, txns, chaos_mode) = driver_opts;
            let mut rng = StdRng::seed_from_u64(0x70D0_0001);
            let mut wave = 0u64;
            // ordering: Relaxed — advisory stop flag; the generator may
            // run one extra wave after the store, which is harmless.
            while !stop_ref.load(Ordering::Relaxed) {
                let programs: Vec<_> = (0..txns).map(|_| w.generate(&mut rng)).collect();
                if chaos_mode {
                    let plan =
                        FaultPlan::generate(0x70D0_1000 ^ wave, txns, &ChaosConfig::default());
                    let cfg = ChaosRunConfig {
                        workers,
                        trace: true,
                        ..ChaosRunConfig::default()
                    };
                    run_chaos(sched_ref.as_ref(), programs, &plan, &cfg);
                } else {
                    let cfg = ConcurrentConfig {
                        workers,
                        obs: true,
                        verify: false,
                        capture_log: false,
                        ..ConcurrentConfig::default()
                    };
                    run_concurrent(sched_ref.as_ref(), programs, &cfg);
                }
                wave += 1;
            }
        });

        // Sampler: redraw the board at --hz until the duration or frame
        // budget runs out.
        let mut dash =
            Dashboard::new(&title, segment_names.clone()).with_hierarchy(Arc::clone(&hierarchy));
        let interval = Duration::from_secs_f64(1.0 / opts.hz);
        let deadline = Instant::now() + Duration::from_secs_f64(opts.duration_s);
        loop {
            std::thread::sleep(interval);
            // Force a full gauge refresh (walls, registry, store scan)
            // so the frame is not waiting on the maintenance cadence.
            sched.refresh_gauges_now();
            let text = dash.frame(sched.metrics());
            let mut out = std::io::stdout().lock();
            if !opts.no_clear {
                let _ = out.write_all(ANSI_CLEAR.as_bytes());
            }
            let _ = out.write_all(text.as_bytes());
            let _ = out.flush();
            frames_rendered += 1;
            let frame_budget_hit = opts.frames.is_some_and(|f| frames_rendered >= f);
            if frame_budget_hit || Instant::now() >= deadline {
                break;
            }
        }
        // ordering: Relaxed — advisory stop flag (see the load above);
        // scope join provides the final synchronization.
        stop.store(true, Ordering::Relaxed);
    });

    // Final exports, validated before we claim success.
    let mut failed = false;
    sched.refresh_gauges_now();
    if let Some(path) = &opts.prom {
        let counters = sched.metrics().snapshot().counter_pairs();
        let text = prometheus_text_full(
            &counters,
            &sched.metrics().obs.snapshot(),
            &sched.metrics().obs.gauges.snapshot(),
            Some(&sched.metrics().obs.drift.snapshot()),
        );
        match validate_prometheus(&text) {
            Ok(stats) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("hdd-top: could not write {path}: {e}");
                    failed = true;
                } else {
                    println!(
                        "hdd-top: wrote {path} ({} families, {} samples)",
                        stats.families, stats.samples
                    );
                }
            }
            Err(e) => {
                eprintln!("hdd-top: generated Prometheus text is invalid: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &opts.chrome {
        let events = sched.metrics().obs.trace.drain();
        let text = chrome_trace(&events);
        match validate_chrome_trace(&text) {
            Ok(n) => {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("hdd-top: could not write {path}: {e}");
                    failed = true;
                } else {
                    println!("hdd-top: wrote {path} ({n} trace events)");
                }
            }
            Err(e) => {
                eprintln!("hdd-top: generated Chrome trace is invalid: {e}");
                failed = true;
            }
        }
    }
    let m = sched.metrics().snapshot();
    println!(
        "hdd-top: {frames_rendered} frames, {} commits, {} aborts, {} rejections ({})",
        m.commits,
        m.aborts,
        m.rejections,
        m.rejection_breakdown()
    );
    if failed {
        std::process::exit(1);
    }
}
