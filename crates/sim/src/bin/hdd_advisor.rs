//! `hdd-advisor` — the online decomposition advisor, as a CLI.
//!
//! Drives a bundled workload through a live HDD scheduler with the
//! drift sketch enabled, folds the sketch, and runs the observed
//! co-access graph through [`certify::advise`]: is the hierarchy the
//! scheduler is running still the best-known TST for the workload it
//! is actually seeing? One-shot by default (drive `--waves` waves,
//! print one report); `--watch` re-advises after every wave until the
//! duration budget runs out; `--json` swaps the human rendering for
//! one JSON object per report (JSON-lines under `--watch`).
//!
//! ```text
//! cargo run --release -p sim --bin hdd-advisor -- --workload banking --waves 3
//! cargo run --release -p sim --bin hdd-advisor -- --watch --duration-s 10
//! cargo run --release -p sim --bin hdd-advisor -- --json
//! ```

use certify::{advise, DEFAULT_MIN_EDGE};
use hdd::protocol::HddConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::build_hdd_with_config;
use std::time::{Duration, Instant};
use txn_model::Scheduler;
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

const USAGE: &str = "\
hdd-advisor — online decomposition advisor over a live HDD scheduler

USAGE:
  hdd-advisor [--workload inventory|banking|synthetic] [--workers N]
              [--txns N] [--waves N] [--watch] [--duration-s F]
              [--min-edge N] [--threshold-milli N] [--json]

OPTIONS:
  --workload NAME      bundled workload to drive (default: banking)
  --workers N          driver worker threads (default: 4)
  --txns N             programs per driver wave (default: 2000)
  --waves N            one-shot: waves to drive before advising (default: 3)
  --watch              re-advise after every wave until --duration-s
  --duration-s F       watch-mode budget in seconds (default: 10)
  --min-edge N         observed-arc noise floor (default: 4)
  --threshold-milli N  drift trip threshold, milli-units (default: 250)
  --json               machine-readable report(s) instead of text
";

struct Opts {
    workload: String,
    workers: usize,
    txns: usize,
    waves: u64,
    watch: bool,
    duration_s: f64,
    min_edge: u64,
    threshold_milli: Option<u64>,
    json: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        workload: "banking".to_string(),
        workers: 4,
        txns: 2000,
        waves: 3,
        watch: false,
        duration_s: 10.0,
        min_edge: DEFAULT_MIN_EDGE,
        threshold_milli: None,
        json: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                o.workload = value(&args, i, "--workload")?;
                i += 1;
            }
            "--workers" => {
                o.workers = value(&args, i, "--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                i += 1;
            }
            "--txns" => {
                o.txns = value(&args, i, "--txns")?
                    .parse()
                    .map_err(|e| format!("--txns: {e}"))?;
                i += 1;
            }
            "--waves" => {
                o.waves = value(&args, i, "--waves")?
                    .parse()
                    .map_err(|e| format!("--waves: {e}"))?;
                i += 1;
            }
            "--watch" => o.watch = true,
            "--duration-s" => {
                o.duration_s = value(&args, i, "--duration-s")?
                    .parse()
                    .map_err(|e| format!("--duration-s: {e}"))?;
                i += 1;
            }
            "--min-edge" => {
                o.min_edge = value(&args, i, "--min-edge")?
                    .parse()
                    .map_err(|e| format!("--min-edge: {e}"))?;
                i += 1;
            }
            "--threshold-milli" => {
                o.threshold_milli = Some(
                    value(&args, i, "--threshold-milli")?
                        .parse()
                        .map_err(|e| format!("--threshold-milli: {e}"))?,
                );
                i += 1;
            }
            "--json" => o.json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if o.waves == 0 {
        return Err("--waves must be at least 1".to_string());
    }
    Ok(o)
}

fn build_workload(name: &str) -> Result<Box<dyn Workload + Send>, String> {
    match name {
        "inventory" => Ok(Box::new(Inventory::new(InventoryConfig {
            items: 32,
            ..InventoryConfig::default()
        }))),
        "banking" => Ok(Box::new(Banking::new(16))),
        "synthetic" => Ok(Box::new(Synthetic::new(SyntheticConfig::default()))),
        other => Err(format!(
            "unknown workload {other} (inventory|banking|synthetic)"
        )),
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hdd-advisor: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut w = match build_workload(&opts.workload) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("hdd-advisor: {e}");
            std::process::exit(2);
        }
    };
    let (sched, _store, hierarchy) = build_hdd_with_config(w.as_ref(), HddConfig::default());
    let obs = &sched.metrics().obs;
    obs.set_enabled(true);
    obs.drift.set_enabled(true);
    if let Some(t) = opts.threshold_milli {
        obs.drift.set_threshold_milli(t);
    }

    let cfg = ConcurrentConfig {
        workers: opts.workers,
        obs: true,
        verify: false,
        capture_log: false,
        ..ConcurrentConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0xAD71_50F1);
    let deadline = Instant::now() + Duration::from_secs_f64(opts.duration_s);
    let mut wave = 0u64;
    loop {
        let programs: Vec<_> = (0..opts.txns).map(|_| w.generate(&mut rng)).collect();
        run_concurrent(sched.as_ref(), programs, &cfg);
        // Explicit refresh: the report must reflect this wave, not the
        // maintenance cadence's last multiple.
        sched.refresh_gauges_now();
        sched.refresh_drift_now();
        wave += 1;
        let one_shot_done = !opts.watch && wave >= opts.waves;
        if opts.watch || one_shot_done {
            let mut report = advise(&hierarchy, &obs.drift.snapshot(), opts.min_edge);
            report.target = format!("workload {} (wave {wave})", opts.workload);
            if opts.json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
        if one_shot_done || (opts.watch && Instant::now() >= deadline) {
            break;
        }
    }
}
