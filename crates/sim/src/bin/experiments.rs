//! Regenerate every figure of the paper as a measured table.
//!
//! ```text
//! cargo run --release -p sim --bin experiments            # full sizes
//! cargo run --release -p sim --bin experiments -- quick   # CI sizes
//! cargo run --release -p sim --bin experiments -- hotpath # E13 only,
//!                                                         # emits BENCH_hotpath.json
//! ```

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let hotpath_only = std::env::args().any(|a| a == "hotpath");
    if hotpath_only {
        println!("{}", sim::experiments::e13_hotpath::run(quick));
        return;
    }
    println!(
        "Hierarchical Database Decomposition (Hsu 1982/83) — experiment suite ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for table in sim::experiments::run_all(quick) {
        println!("{table}");
    }
}
