//! Regenerate every figure of the paper as a measured table.
//!
//! ```text
//! cargo run --release -p sim --bin experiments          # full sizes
//! cargo run --release -p sim --bin experiments -- quick # CI sizes
//! ```

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    println!(
        "Hierarchical Database Decomposition (Hsu 1982/83) — experiment suite ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for table in sim::experiments::run_all(quick) {
        println!("{table}");
    }
}
