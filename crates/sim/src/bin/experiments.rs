//! Regenerate every figure of the paper as a measured table.
//!
//! ```text
//! cargo run --release -p sim --bin experiments             # full sizes
//! cargo run --release -p sim --bin experiments -- quick    # CI sizes
//! cargo run --release -p sim --bin experiments -- hotpath  # E13 only,
//!                                                          # emits BENCH_hotpath.json
//! cargo run --release -p sim --bin experiments -- e14      # E14 only,
//!                                                          # emits BENCH_obs.json
//! cargo run --release -p sim --bin experiments -- e14 --obs-json out.json
//! cargo run --release -p sim --bin experiments -- obs-smoke
//!     # disabled-obs throughput guard: exits 1 if the hdd 8-worker
//!     # run regresses >10% vs the BENCH_hotpath.json baseline
//! cargo run --release -p sim --bin experiments -- certify-smoke
//!     # a-priori lint of the bundled workloads + offline certification
//!     # of concurrent hdd/mvto logs + a nocontrol anomaly self-check;
//!     # exits 1 on any lint error or certification violation
//! cargo run --release -p sim --bin experiments -- chaos-smoke
//!     # quick E16 chaos soak: injected crashes/stalls/torn logs must
//!     # all certify clean, every corpse reaped, no timestamp reuse
//!     # after recovery; exits 1 on any violation
//! cargo run --release -p sim --bin experiments -- e17      # E17 only,
//!                                                          # emits BENCH_e17.json
//! cargo run --release -p sim --bin experiments -- e17 --e17-json out.json
//! cargo run --release -p sim --bin experiments -- export-smoke
//!     # short obs-enabled run + quick E17; the generated Prometheus
//!     # exposition and Chrome trace must pass the in-repo validators
//!     # and carry staleness summaries; exits 1 on any failure
//! cargo run --release -p sim --bin experiments -- bench-gate
//!     # throughput floors: obs-disabled hdd 8w vs BENCH_hotpath.json
//!     # (>90%) and obs-enabled hdd 8w vs BENCH_obs.json (>50%)
//! cargo run --release -p sim --bin experiments -- e18      # E18 only,
//!                                                          # emits BENCH_e18.json
//! cargo run --release -p sim --bin experiments -- blame-smoke
//!     # flight-recorder gate: an 8-worker traced run must attribute
//!     # ≥95% of measured block time to a cause edge, leak no open
//!     # spans, produce a valid Perfetto trace, and sampled-mode
//!     # tracing (stride 32) must hold ≥85% of the BENCH_hotpath.json
//!     # disabled baseline; exits 1 on any violation
//! cargo run --release -p sim --bin experiments -- e19      # E19 only,
//!                                                          # emits BENCH_e19.json
//! cargo run --release -p sim --bin experiments -- durability-smoke
//!     # durable-tier gate: a 12-seed disk-fault soak (torn writes,
//!     # lying fsyncs, kill-mid-batch) must recover from on-disk bytes
//!     # alone, certify every stitched log, never violate the
//!     # group-commit ack rule, and the StorageBackend trait refactor
//!     # must hold ≥95% of the BENCH_hotpath.json hdd 8-worker
//!     # baseline; exits 1 on any violation
//! cargo run --release -p sim --bin experiments -- e20      # E20 only,
//!                                                          # emits BENCH_e20.json
//! cargo run --release -p sim --bin experiments -- e20 --e20-json out.json
//! cargo run --release -p sim --bin experiments -- drift-smoke
//!     # workload-drift gate: the E20 phased run must keep the steady
//!     # (negative-control) phase silent, trip the drift board within
//!     # 3 folds of the mix shift, match the offline hdd-lint repair
//!     # with its online advice, carry a drift-trip Perfetto instant,
//!     # and hold drift-enabled hot-path throughput at ≥90% of the
//!     # obs-only baseline; exits 1 on any violation
//! ```

use certify::certifier::{attach_trace, certify_log};
use certify::lint::lint_workload;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::experiments::e02_inventory::batch;
use sim::factory::{build_scheduler, SchedulerKind};
use sim::scripts::run_script;
use txn_model::Scheduler;
use workloads::anomalies::{lost_update_script, AnomalyWorkload};
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

/// Read the recorded hdd 8-worker commits/sec out of a `BENCH_*.json`
/// artifact (shared scanner; see [`sim::baseline`]).
fn recorded_hdd_8w_baseline(path: &str) -> Option<f64> {
    sim::baseline::recorded_commits_per_sec(path, "hdd", 8)
}

/// Best-of-3 hdd 8-worker throughput with obs *disabled*, compared
/// against the recorded baseline. Returns the process exit code.
fn obs_smoke() -> i32 {
    let n_txns = 20_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (w, programs) = batch(n_txns, 0x00F1_6011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert!(
            !sched.metrics().obs.enabled(),
            "obs must stay disabled in the smoke run"
        );
        best = best.max(out.throughput);
    }
    match recorded_hdd_8w_baseline("BENCH_hotpath.json") {
        Some(baseline) => {
            let floor = baseline * 0.9;
            println!(
                "obs-smoke: hdd 8-worker best-of-3 = {best:.1} commits/sec \
                 (baseline {baseline:.1}, floor {floor:.1})"
            );
            if best < floor {
                eprintln!("obs-smoke: FAIL — disabled-obs throughput regressed >10%");
                1
            } else {
                println!("obs-smoke: OK");
                0
            }
        }
        None => {
            println!(
                "obs-smoke: no BENCH_hotpath.json baseline found; \
                 measured {best:.1} commits/sec (not enforced)"
            );
            0
        }
    }
}

/// Best-of-3 hdd 8-worker throughput with obs *enabled* (gauge board
/// configured and live), compared against the recorded `BENCH_obs.json`
/// baseline. The enabled path pays for histograms, tracing and the
/// maintenance-tick gauge refresh, and is noisier than the disabled
/// path, so the floor is a coarse 50% — it catches an accidental O(n)
/// regression on the instrumented path, not percent-level drift.
/// Returns the process exit code.
fn obs_enabled_gate() -> i32 {
    let n_txns = 20_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (w, programs) = batch(n_txns, 0x00F1_7011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            obs: true,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert!(
            sched.metrics().obs.gauges.snapshot().configured,
            "hdd must dimension the gauge board at construction"
        );
        best = best.max(out.throughput);
    }
    match recorded_hdd_8w_baseline("BENCH_obs.json") {
        Some(baseline) => {
            let floor = baseline * 0.5;
            println!(
                "bench-gate: hdd 8-worker obs-enabled best-of-3 = {best:.1} commits/sec \
                 (baseline {baseline:.1}, floor {floor:.1})"
            );
            if best < floor {
                eprintln!("bench-gate: FAIL — obs-enabled throughput regressed >50%");
                1
            } else {
                println!("bench-gate: obs-enabled OK");
                0
            }
        }
        None => {
            println!(
                "bench-gate: no BENCH_obs.json baseline found; \
                 measured {best:.1} commits/sec (not enforced)"
            );
            0
        }
    }
}

/// The combined throughput-floor gate (`scripts/bench_gate.sh`):
/// obs-disabled vs `BENCH_hotpath.json` and obs-enabled vs
/// `BENCH_obs.json`. Returns the exit code.
fn bench_gate() -> i32 {
    let disabled = obs_smoke();
    let enabled = obs_enabled_gate();
    if disabled != 0 || enabled != 0 {
        eprintln!("bench-gate: FAIL");
        1
    } else {
        println!("bench-gate: OK");
        0
    }
}

/// CI gate for the exporters: a short obs-enabled run over the
/// synthetic workload (it exercises both Protocol A class readers and
/// Protocol C wall readers), whose Prometheus exposition and Chrome
/// trace must pass the in-repo validators and carry the staleness
/// summaries; plus a quick E17 sweep so the per-(reader, segment)
/// tables stay populated. Returns the exit code.
fn export_smoke() -> i32 {
    use obs::{chrome_trace, prometheus_text, validate_chrome_trace, validate_prometheus};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut failed = false;

    // 1. Short live run with the gauge board on.
    let mut w = Synthetic::new(SyntheticConfig::default());
    let mut rng = StdRng::seed_from_u64(0x00F1_7051);
    let programs: Vec<_> = (0..1_500).map(|_| w.generate(&mut rng)).collect();
    let (sched, _store, _hierarchy) =
        sim::factory::build_hdd_with_config(&w, hdd::protocol::HddConfig::default());
    let cfg = ConcurrentConfig {
        workers: 4,
        obs: true,
        verify: false,
        capture_log: false,
        ..ConcurrentConfig::default()
    };
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    sched.refresh_gauges_now();

    // 2. Prometheus exposition must validate and carry staleness.
    let counters = sched.metrics().snapshot().counter_pairs();
    let prom = prometheus_text(
        &counters,
        &sched.metrics().obs.snapshot(),
        &sched.metrics().obs.gauges.snapshot(),
    );
    match validate_prometheus(&prom) {
        Ok(stats) => {
            println!(
                "export-smoke: prometheus OK — {} families, {} samples",
                stats.families, stats.samples
            );
            if !prom.contains("hdd_read_staleness_ticks") {
                eprintln!("export-smoke: FAIL — no staleness summary in the exposition");
                failed = true;
            }
        }
        Err(e) => {
            eprintln!("export-smoke: FAIL — invalid Prometheus exposition: {e}");
            failed = true;
        }
    }

    // 3. Chrome trace must validate and contain events.
    let events = sched.metrics().obs.trace.drain();
    let trace = chrome_trace(&events);
    match validate_chrome_trace(&trace) {
        Ok(n) if n > 0 => println!("export-smoke: chrome trace OK — {n} events"),
        Ok(_) => {
            eprintln!("export-smoke: FAIL — chrome trace is empty");
            failed = true;
        }
        Err(e) => {
            eprintln!("export-smoke: FAIL — invalid chrome trace: {e}");
            failed = true;
        }
    }
    if out.stats.committed == 0 {
        eprintln!("export-smoke: FAIL — the live run committed nothing");
        failed = true;
    }

    // 4. Quick E17: the staleness tables must have class and wall rows.
    let table = sim::experiments::e17_gauges::run(true);
    print!("{table}");
    let readers: Vec<&str> = table
        .rows
        .iter()
        .map(|r| r[2].as_str()) // "reader" column
        .collect();
    if !readers.iter().any(|r| r.starts_with('c')) {
        eprintln!("export-smoke: FAIL — E17 recorded no Protocol A staleness rows");
        failed = true;
    }
    if !readers.contains(&"wall") {
        eprintln!("export-smoke: FAIL — E17 recorded no Protocol C (wall) staleness rows");
        failed = true;
    }

    if failed {
        eprintln!("export-smoke: FAIL");
        1
    } else {
        println!("export-smoke: OK");
        0
    }
}

/// CI gate for the certify crate: lint every bundled workload, certify
/// concurrent hdd (with the partition-synchronization rule and the obs
/// trace joined in) and mvto logs, and self-check that the certifier
/// still catches and shrinks a no-control anomaly. Returns the exit
/// code.
fn certify_smoke() -> i32 {
    let mut failed = false;

    // 1. A-priori lint of the bundled decompositions.
    for report in [
        lint_workload(&Inventory::new(InventoryConfig::default())),
        lint_workload(&Banking::new(16)),
        lint_workload(&Synthetic::new(SyntheticConfig::default())),
        lint_workload(&AnomalyWorkload),
    ] {
        print!("{}", report.render());
        if !report.ok() {
            failed = true;
        }
    }

    // 2. Certify real concurrent logs: hdd under the full
    //    partition-synchronization rule (obs tracing on, joined into any
    //    violation report), mvto under plain acyclicity.
    for kind in [SchedulerKind::Hdd, SchedulerKind::Mvto] {
        let (w, programs) = batch(2_000, 0x5A7E_0CE5);
        let (sched, _store) = build_scheduler(kind, &w);
        let cfg = ConcurrentConfig {
            workers: 4,
            verify: false,
            obs: kind == SchedulerKind::Hdd,
            ..ConcurrentConfig::default()
        };
        let stats = run_concurrent(sched.as_ref(), programs, &cfg);
        let hierarchy = (kind == SchedulerKind::Hdd).then(|| w.hierarchy());
        let mut cert = certify_log(kind.name(), sched.log(), hierarchy.as_ref());
        if kind == SchedulerKind::Hdd {
            attach_trace(&mut cert, &sched.metrics().obs.trace.drain());
        }
        print!("{}", cert.render());
        if !cert.ok() {
            failed = true;
        }
        let _ = stats;
    }

    // 3. Self-check: the certifier must still catch the no-control lost
    //    update and shrink it to single digits.
    {
        let script = lost_update_script();
        let (sched, store) = build_scheduler(SchedulerKind::NoControl, &AnomalyWorkload);
        for (g, v) in &script.setup {
            store.seed(*g, v.clone());
        }
        let _ = run_script(sched.as_ref(), &script);
        let cert = certify_log("nocontrol", sched.log(), None);
        match &cert.counterexample {
            Some(cx) if cx.events.len() <= 10 => {
                println!(
                    "certify-smoke: self-check OK — nocontrol lost update caught, \
                     counterexample shrunk {} → {} events (rule: {})",
                    cx.original_events,
                    cx.events.len(),
                    cx.rule.name(),
                );
            }
            Some(cx) => {
                eprintln!(
                    "certify-smoke: FAIL — counterexample did not shrink \
                     (still {} events)",
                    cx.events.len()
                );
                failed = true;
            }
            None => {
                eprintln!("certify-smoke: FAIL — certifier missed the no-control lost update");
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("certify-smoke: FAIL");
        1
    } else {
        println!("certify-smoke: OK");
        0
    }
}

/// CI gate for the chaos harness: run the E16 soak at quick sizes and
/// enforce its claims — every surviving and recovered log certifies
/// clean, every crashed corpse is reaped by the watchdog, torn WAL
/// tails are truncated (not replayed), and recovery never reuses a
/// pre-crash timestamp. Returns the exit code.
fn chaos_smoke() -> i32 {
    let table = sim::experiments::e16_chaos::run(true);
    print!("{table}");
    let cell = |row: &str, col: &str| table.cell(row, col).map(String::from);
    let num = |row: &str, col: &str| -> u64 {
        cell(row, col)
            .and_then(|s| s.parse().ok())
            .unwrap_or(u64::MAX)
    };
    let seeds = num("soak", "seeds");
    let mut failed = false;
    if num("soak", "certified-ok") != seeds {
        eprintln!("chaos-smoke: FAIL — a surviving log did not certify");
        failed = true;
    }
    if num("recovery", "certified-ok") != seeds {
        eprintln!("chaos-smoke: FAIL — a recovered log did not certify");
        failed = true;
    }
    if num("recovery", "ts-collisions") != 0 {
        eprintln!("chaos-smoke: FAIL — recovery reused a pre-crash timestamp");
        failed = true;
    }
    if num("soak", "watchdog-reaps") < num("soak", "crashed") {
        eprintln!("chaos-smoke: FAIL — a crashed transaction was never reaped");
        failed = true;
    }
    if num("soak", "crashed") == 0 || num("recovery", "torn-tails") == 0 {
        eprintln!("chaos-smoke: FAIL — the fault mix injected nothing");
        failed = true;
    }
    if failed {
        1
    } else {
        println!("chaos-smoke: OK");
        0
    }
}

/// CI gate for the flight recorder: one 8-worker traced run over the
/// inventory batch whose blame report must attribute ≥95% of measured
/// block time to a cause edge with zero open spans and a Perfetto
/// export that passes the in-repo validator, plus a best-of-3
/// sampled-mode (stride 32) throughput floor at ≥85% of the
/// `BENCH_hotpath.json` disabled baseline. Returns the exit code.
fn blame_smoke() -> i32 {
    use obs::{assemble, flight_chrome_trace, validate_chrome_trace, BlameReport, PhaseBreakdown};

    let mut failed = false;

    // 1. Traced run: attribution coverage, span hygiene, exporter.
    let (w, programs) = batch(8_000, 0x00F1_B1A3);
    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
    let cfg = ConcurrentConfig {
        workers: 8,
        obs: true,
        flight_sample: 4,
        verify: false,
        capture_log: false,
        ..ConcurrentConfig::default()
    };
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    let log = assemble(&sched.metrics().obs.flight.drain());
    let blame = BlameReport::build(&log);
    print!("{}", blame.render_top(5));
    println!(
        "blame-smoke: phases — {}",
        PhaseBreakdown::of_commits(&log).render()
    );
    if out.stats.committed == 0 {
        eprintln!("blame-smoke: FAIL — the traced run committed nothing");
        failed = true;
    }
    if log.open > 0 {
        eprintln!("blame-smoke: FAIL — {} flights never terminated", log.open);
        failed = true;
    }
    if log.flights.is_empty() {
        eprintln!("blame-smoke: FAIL — the 1-in-4 stride sampled no flights");
        failed = true;
    }
    if blame.coverage() < 0.95 {
        eprintln!(
            "blame-smoke: FAIL — only {:.1}% of measured block time carries a cause edge \
             (floor 95%)",
            blame.coverage() * 100.0
        );
        failed = true;
    }
    let trace = flight_chrome_trace(&log);
    match validate_chrome_trace(&trace) {
        Ok(n) if n > 0 => println!("blame-smoke: perfetto trace OK — {n} events"),
        Ok(_) => {
            eprintln!("blame-smoke: FAIL — perfetto trace is empty");
            failed = true;
        }
        Err(e) => {
            eprintln!("blame-smoke: FAIL — invalid perfetto trace: {e}");
            failed = true;
        }
    }

    // 2. Sampled-mode overhead floor: best-of-3 with the recorder at
    //    the coarse CI stride, vs the recorded disabled baseline.
    let n_txns = 20_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (w, programs) = batch(n_txns, 0x00F1_6011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            obs: true,
            flight_sample: 32,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        best = best.max(out.throughput);
    }
    match recorded_hdd_8w_baseline("BENCH_hotpath.json") {
        Some(baseline) => {
            let floor = baseline * 0.85;
            println!(
                "blame-smoke: hdd 8-worker stride-32 best-of-3 = {best:.1} commits/sec \
                 (disabled baseline {baseline:.1}, floor {floor:.1})"
            );
            if best < floor {
                eprintln!("blame-smoke: FAIL — sampled-mode tracing costs >15%");
                failed = true;
            }
        }
        None => {
            println!(
                "blame-smoke: no BENCH_hotpath.json baseline found; \
                 measured {best:.1} commits/sec at stride 32 (not enforced)"
            );
        }
    }

    if failed {
        eprintln!("blame-smoke: FAIL");
        1
    } else {
        println!("blame-smoke: OK");
        0
    }
}

/// CI gate for the durable tier: the disk-fault soak at CI sizes plus
/// a trait-refactor throughput floor. The soak's claims — recovery
/// from on-disk bytes alone, stitched certification, no timestamp
/// reuse, no acked-commit missing from disk (outside lying-fsync
/// seeds) — are enforced; the floor guards the `StorageBackend`
/// virtual-dispatch refactor at ≥95% of the recorded hdd 8-worker
/// baseline. Returns the exit code.
fn durability_smoke() -> i32 {
    let mut failed = false;

    // 1. Disk-fault soak: 12 seeds of journaled chaos, process death,
    //    recovery from the torn WAL + file-backend segments.
    let tally = sim::experiments::e19_durability::soak(12, 30);
    println!(
        "durability-smoke: soak — {} seeds, {} durable commits, {} disk crashes, \
         {} torn tails, {} lied losses, {} wal-lost",
        tally.seeds,
        tally.committed,
        tally.disk_crashes,
        tally.torn_tails,
        tally.lied_losses,
        tally.wal_lost
    );
    if tally.recovered_certified != tally.seeds {
        eprintln!(
            "durability-smoke: FAIL — {}/{} stitched post-recovery logs certified",
            tally.recovered_certified, tally.seeds
        );
        failed = true;
    }
    if tally.ts_collisions != 0 {
        eprintln!("durability-smoke: FAIL — recovery reused a pre-crash timestamp");
        failed = true;
    }
    if tally.ack_violations != 0 {
        eprintln!(
            "durability-smoke: FAIL — {} acked commits missing from disk (ack rule)",
            tally.ack_violations
        );
        failed = true;
    }
    if tally.disk_crashes == 0 || tally.committed == 0 {
        eprintln!("durability-smoke: FAIL — the fault schedules injected nothing");
        failed = true;
    }

    // 2. Trait-refactor floor: best-of-3 obs-disabled hdd 8-worker run
    //    through the `Arc<dyn StorageBackend>` path must hold ≥95% of
    //    the recorded baseline.
    let n_txns = 20_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (w, programs) = batch(n_txns, 0x00F1_9011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        best = best.max(out.throughput);
    }
    match recorded_hdd_8w_baseline("BENCH_hotpath.json") {
        Some(baseline) => {
            let floor = baseline * 0.95;
            println!(
                "durability-smoke: hdd 8-worker best-of-3 = {best:.1} commits/sec \
                 (baseline {baseline:.1}, floor {floor:.1})"
            );
            if best < floor {
                eprintln!("durability-smoke: FAIL — the storage-trait refactor costs >5%");
                failed = true;
            }
        }
        None => {
            println!(
                "durability-smoke: no BENCH_hotpath.json baseline found; \
                 measured {best:.1} commits/sec (not enforced)"
            );
        }
    }

    if failed {
        eprintln!("durability-smoke: FAIL");
        1
    } else {
        println!("durability-smoke: OK");
        0
    }
}

/// CI gate for the drift observatory: the E20 phased run at CI sizes.
/// The negative control (steady mix) must never trip the board, the
/// mid-run shift to the cycle-closing mix must trip it within 3 folds,
/// the online advisor's repartition must equal the offline
/// `hdd-lint`/`repartition_to_tst` repair for the post-shift spec set
/// (and report the running grouping optimal), the trip must surface as
/// a Perfetto instant, and drift-enabled steady-state throughput must
/// hold ≥90% of the obs-only baseline. Returns the exit code.
fn drift_smoke() -> i32 {
    let o = sim::experiments::e20_drift::measure(true);
    print!("{}", sim::experiments::e20_drift::table(&o));
    let mut failed = false;
    if o.steady_tripped || o.steady_max_score_milli >= o.threshold_milli {
        eprintln!(
            "drift-smoke: FAIL — the steady negative control tripped \
             (max score {}‰, threshold {}‰)",
            o.steady_max_score_milli, o.threshold_milli
        );
        failed = true;
    }
    match o.detection_folds {
        Some(folds) if folds <= 3 => {
            println!("drift-smoke: shift detected after {folds} fold(s)");
        }
        Some(folds) => {
            eprintln!("drift-smoke: FAIL — detection took {folds} folds (budget 3)");
            failed = true;
        }
        None => {
            eprintln!("drift-smoke: FAIL — the mix shift was never detected");
            failed = true;
        }
    }
    if !o.online_matches_offline || !o.post_optimal {
        eprintln!(
            "drift-smoke: FAIL — online advice diverged from the offline lint \
             (matches={}, optimal={})",
            o.online_matches_offline, o.post_optimal
        );
        failed = true;
    }
    if !o.offline_merge_help.contains("merge segments D0+D1") {
        eprintln!(
            "drift-smoke: FAIL — offline lint lost the D0+D1 repair: {:?}",
            o.offline_merge_help
        );
        failed = true;
    }
    if !o.trace_has_trip_instant {
        eprintln!("drift-smoke: FAIL — no drift-trip instant in the trace ring");
        failed = true;
    }
    if o.overhead_ratio < 0.9 {
        eprintln!(
            "drift-smoke: FAIL — drift-enabled throughput is {:.1}% of the \
             obs-only baseline (floor 90%)",
            o.overhead_ratio * 100.0
        );
        failed = true;
    } else {
        println!(
            "drift-smoke: overhead OK — {:.1} vs {:.1} commits/sec (ratio {:.3})",
            o.obs_drift_cps, o.obs_only_cps, o.overhead_ratio
        );
    }
    if failed {
        eprintln!("drift-smoke: FAIL");
        1
    } else {
        println!("drift-smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let obs_json = args
        .iter()
        .position(|a| a == "--obs-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let e17_json = args
        .iter()
        .position(|a| a == "--e17-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_e17.json".to_string());
    if args.iter().any(|a| a == "obs-smoke") {
        std::process::exit(obs_smoke());
    }
    if args.iter().any(|a| a == "bench-gate") {
        std::process::exit(bench_gate());
    }
    if args.iter().any(|a| a == "export-smoke") {
        std::process::exit(export_smoke());
    }
    if args.iter().any(|a| a == "certify-smoke") {
        std::process::exit(certify_smoke());
    }
    if args.iter().any(|a| a == "chaos-smoke") {
        std::process::exit(chaos_smoke());
    }
    if args.iter().any(|a| a == "blame-smoke") {
        std::process::exit(blame_smoke());
    }
    if args.iter().any(|a| a == "durability-smoke") {
        std::process::exit(durability_smoke());
    }
    if args.iter().any(|a| a == "drift-smoke") {
        std::process::exit(drift_smoke());
    }
    if args.iter().any(|a| a == "e20") {
        let e20_json = args
            .iter()
            .position(|a| a == "--e20-json")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "BENCH_e20.json".to_string());
        println!(
            "{}",
            sim::experiments::e20_drift::run_with_path(quick, &e20_json)
        );
        return;
    }
    if args.iter().any(|a| a == "e19") {
        println!("{}", sim::experiments::e19_durability::run(quick));
        return;
    }
    if args.iter().any(|a| a == "e18") {
        println!("{}", sim::experiments::e18_blame::run(quick));
        return;
    }
    if args.iter().any(|a| a == "hotpath") {
        println!("{}", sim::experiments::e13_hotpath::run(quick));
        return;
    }
    if args.iter().any(|a| a == "e14") {
        println!(
            "{}",
            sim::experiments::e14_obs_profile::run_with_path(quick, &obs_json)
        );
        return;
    }
    if args.iter().any(|a| a == "e17") {
        println!(
            "{}",
            sim::experiments::e17_gauges::run_with_path(quick, &e17_json)
        );
        return;
    }
    println!(
        "Hierarchical Database Decomposition (Hsu 1982/83) — experiment suite ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for table in sim::experiments::run_all(quick) {
        println!("{table}");
    }
}
