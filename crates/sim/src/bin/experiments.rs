//! Regenerate every figure of the paper as a measured table.
//!
//! ```text
//! cargo run --release -p sim --bin experiments             # full sizes
//! cargo run --release -p sim --bin experiments -- quick    # CI sizes
//! cargo run --release -p sim --bin experiments -- hotpath  # E13 only,
//!                                                          # emits BENCH_hotpath.json
//! cargo run --release -p sim --bin experiments -- e14      # E14 only,
//!                                                          # emits BENCH_obs.json
//! cargo run --release -p sim --bin experiments -- e14 --obs-json out.json
//! cargo run --release -p sim --bin experiments -- obs-smoke
//!     # disabled-obs throughput guard: exits 1 if the hdd 8-worker
//!     # run regresses >10% vs the BENCH_hotpath.json baseline
//! ```

use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::experiments::e02_inventory::batch;
use sim::factory::{build_scheduler, SchedulerKind};

/// Read the recorded hdd 8-worker commits/sec out of
/// `BENCH_hotpath.json` (hand-rolled scan; no serde in this build).
fn recorded_hdd_8w_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if line.contains("\"scheduler\": \"hdd\"") && line.contains("\"workers\": 8") {
            let key = "\"commits_per_sec\": ";
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let end = rest.find(',').unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

/// Best-of-3 hdd 8-worker throughput with obs *disabled*, compared
/// against the recorded baseline. Returns the process exit code.
fn obs_smoke() -> i32 {
    let n_txns = 20_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (w, programs) = batch(n_txns, 0x00F1_6011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert!(
            !sched.metrics().obs.enabled(),
            "obs must stay disabled in the smoke run"
        );
        best = best.max(out.throughput);
    }
    match recorded_hdd_8w_baseline("BENCH_hotpath.json") {
        Some(baseline) => {
            let floor = baseline * 0.9;
            println!(
                "obs-smoke: hdd 8-worker best-of-3 = {best:.1} commits/sec \
                 (baseline {baseline:.1}, floor {floor:.1})"
            );
            if best < floor {
                eprintln!("obs-smoke: FAIL — disabled-obs throughput regressed >10%");
                1
            } else {
                println!("obs-smoke: OK");
                0
            }
        }
        None => {
            println!(
                "obs-smoke: no BENCH_hotpath.json baseline found; \
                 measured {best:.1} commits/sec (not enforced)"
            );
            0
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let obs_json = args
        .iter()
        .position(|a| a == "--obs-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    if args.iter().any(|a| a == "obs-smoke") {
        std::process::exit(obs_smoke());
    }
    if args.iter().any(|a| a == "hotpath") {
        println!("{}", sim::experiments::e13_hotpath::run(quick));
        return;
    }
    if args.iter().any(|a| a == "e14") {
        println!(
            "{}",
            sim::experiments::e14_obs_profile::run_with_path(quick, &obs_json)
        );
        return;
    }
    println!(
        "Hierarchical Database Decomposition (Hsu 1982/83) — experiment suite ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for table in sim::experiments::run_all(quick) {
        println!("{table}");
    }
}
