//! Regenerate every figure of the paper as a measured table.
//!
//! ```text
//! cargo run --release -p sim --bin experiments             # full sizes
//! cargo run --release -p sim --bin experiments -- quick    # CI sizes
//! cargo run --release -p sim --bin experiments -- hotpath  # E13 only,
//!                                                          # emits BENCH_hotpath.json
//! cargo run --release -p sim --bin experiments -- e14      # E14 only,
//!                                                          # emits BENCH_obs.json
//! cargo run --release -p sim --bin experiments -- e14 --obs-json out.json
//! cargo run --release -p sim --bin experiments -- obs-smoke
//!     # disabled-obs throughput guard: exits 1 if the hdd 8-worker
//!     # run regresses >10% vs the BENCH_hotpath.json baseline
//! cargo run --release -p sim --bin experiments -- certify-smoke
//!     # a-priori lint of the bundled workloads + offline certification
//!     # of concurrent hdd/mvto logs + a nocontrol anomaly self-check;
//!     # exits 1 on any lint error or certification violation
//! cargo run --release -p sim --bin experiments -- chaos-smoke
//!     # quick E16 chaos soak: injected crashes/stalls/torn logs must
//!     # all certify clean, every corpse reaped, no timestamp reuse
//!     # after recovery; exits 1 on any violation
//! ```

use certify::certifier::{attach_trace, certify_log};
use certify::lint::lint_workload;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::experiments::e02_inventory::batch;
use sim::factory::{build_scheduler, SchedulerKind};
use sim::scripts::run_script;
use workloads::anomalies::{lost_update_script, AnomalyWorkload};
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

/// Read the recorded hdd 8-worker commits/sec out of
/// `BENCH_hotpath.json` (hand-rolled scan; no serde in this build).
fn recorded_hdd_8w_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if line.contains("\"scheduler\": \"hdd\"") && line.contains("\"workers\": 8") {
            let key = "\"commits_per_sec\": ";
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let end = rest.find(',').unwrap_or(rest.len());
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

/// Best-of-3 hdd 8-worker throughput with obs *disabled*, compared
/// against the recorded baseline. Returns the process exit code.
fn obs_smoke() -> i32 {
    let n_txns = 20_000;
    let mut best = 0.0f64;
    for _ in 0..3 {
        let (w, programs) = batch(n_txns, 0x00F1_6011);
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            verify: false,
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert!(
            !sched.metrics().obs.enabled(),
            "obs must stay disabled in the smoke run"
        );
        best = best.max(out.throughput);
    }
    match recorded_hdd_8w_baseline("BENCH_hotpath.json") {
        Some(baseline) => {
            let floor = baseline * 0.9;
            println!(
                "obs-smoke: hdd 8-worker best-of-3 = {best:.1} commits/sec \
                 (baseline {baseline:.1}, floor {floor:.1})"
            );
            if best < floor {
                eprintln!("obs-smoke: FAIL — disabled-obs throughput regressed >10%");
                1
            } else {
                println!("obs-smoke: OK");
                0
            }
        }
        None => {
            println!(
                "obs-smoke: no BENCH_hotpath.json baseline found; \
                 measured {best:.1} commits/sec (not enforced)"
            );
            0
        }
    }
}

/// CI gate for the certify crate: lint every bundled workload, certify
/// concurrent hdd (with the partition-synchronization rule and the obs
/// trace joined in) and mvto logs, and self-check that the certifier
/// still catches and shrinks a no-control anomaly. Returns the exit
/// code.
fn certify_smoke() -> i32 {
    let mut failed = false;

    // 1. A-priori lint of the bundled decompositions.
    for report in [
        lint_workload(&Inventory::new(InventoryConfig::default())),
        lint_workload(&Banking::new(16)),
        lint_workload(&Synthetic::new(SyntheticConfig::default())),
        lint_workload(&AnomalyWorkload),
    ] {
        print!("{}", report.render());
        if !report.ok() {
            failed = true;
        }
    }

    // 2. Certify real concurrent logs: hdd under the full
    //    partition-synchronization rule (obs tracing on, joined into any
    //    violation report), mvto under plain acyclicity.
    for kind in [SchedulerKind::Hdd, SchedulerKind::Mvto] {
        let (w, programs) = batch(2_000, 0x5A7E_0CE5);
        let (sched, _store) = build_scheduler(kind, &w);
        let cfg = ConcurrentConfig {
            workers: 4,
            verify: false,
            obs: kind == SchedulerKind::Hdd,
            ..ConcurrentConfig::default()
        };
        let stats = run_concurrent(sched.as_ref(), programs, &cfg);
        let hierarchy = (kind == SchedulerKind::Hdd).then(|| w.hierarchy());
        let mut cert = certify_log(kind.name(), sched.log(), hierarchy.as_ref());
        if kind == SchedulerKind::Hdd {
            attach_trace(&mut cert, &sched.metrics().obs.trace.drain());
        }
        print!("{}", cert.render());
        if !cert.ok() {
            failed = true;
        }
        let _ = stats;
    }

    // 3. Self-check: the certifier must still catch the no-control lost
    //    update and shrink it to single digits.
    {
        let script = lost_update_script();
        let (sched, store) = build_scheduler(SchedulerKind::NoControl, &AnomalyWorkload);
        for (g, v) in &script.setup {
            store.seed(*g, v.clone());
        }
        let _ = run_script(sched.as_ref(), &script);
        let cert = certify_log("nocontrol", sched.log(), None);
        match &cert.counterexample {
            Some(cx) if cx.events.len() <= 10 => {
                println!(
                    "certify-smoke: self-check OK — nocontrol lost update caught, \
                     counterexample shrunk {} → {} events (rule: {})",
                    cx.original_events,
                    cx.events.len(),
                    cx.rule.name(),
                );
            }
            Some(cx) => {
                eprintln!(
                    "certify-smoke: FAIL — counterexample did not shrink \
                     (still {} events)",
                    cx.events.len()
                );
                failed = true;
            }
            None => {
                eprintln!("certify-smoke: FAIL — certifier missed the no-control lost update");
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("certify-smoke: FAIL");
        1
    } else {
        println!("certify-smoke: OK");
        0
    }
}

/// CI gate for the chaos harness: run the E16 soak at quick sizes and
/// enforce its claims — every surviving and recovered log certifies
/// clean, every crashed corpse is reaped by the watchdog, torn WAL
/// tails are truncated (not replayed), and recovery never reuses a
/// pre-crash timestamp. Returns the exit code.
fn chaos_smoke() -> i32 {
    let table = sim::experiments::e16_chaos::run(true);
    print!("{table}");
    let cell = |row: &str, col: &str| table.cell(row, col).map(String::from);
    let num = |row: &str, col: &str| -> u64 {
        cell(row, col)
            .and_then(|s| s.parse().ok())
            .unwrap_or(u64::MAX)
    };
    let seeds = num("soak", "seeds");
    let mut failed = false;
    if num("soak", "certified-ok") != seeds {
        eprintln!("chaos-smoke: FAIL — a surviving log did not certify");
        failed = true;
    }
    if num("recovery", "certified-ok") != seeds {
        eprintln!("chaos-smoke: FAIL — a recovered log did not certify");
        failed = true;
    }
    if num("recovery", "ts-collisions") != 0 {
        eprintln!("chaos-smoke: FAIL — recovery reused a pre-crash timestamp");
        failed = true;
    }
    if num("soak", "watchdog-reaps") < num("soak", "crashed") {
        eprintln!("chaos-smoke: FAIL — a crashed transaction was never reaped");
        failed = true;
    }
    if num("soak", "crashed") == 0 || num("recovery", "torn-tails") == 0 {
        eprintln!("chaos-smoke: FAIL — the fault mix injected nothing");
        failed = true;
    }
    if failed {
        1
    } else {
        println!("chaos-smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let obs_json = args
        .iter()
        .position(|a| a == "--obs-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    if args.iter().any(|a| a == "obs-smoke") {
        std::process::exit(obs_smoke());
    }
    if args.iter().any(|a| a == "certify-smoke") {
        std::process::exit(certify_smoke());
    }
    if args.iter().any(|a| a == "chaos-smoke") {
        std::process::exit(chaos_smoke());
    }
    if args.iter().any(|a| a == "hotpath") {
        println!("{}", sim::experiments::e13_hotpath::run(quick));
        return;
    }
    if args.iter().any(|a| a == "e14") {
        println!(
            "{}",
            sim::experiments::e14_obs_profile::run_with_path(quick, &obs_json)
        );
        return;
    }
    println!(
        "Hierarchical Database Decomposition (Hsu 1982/83) — experiment suite ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for table in sim::experiments::run_all(quick) {
        println!("{table}");
    }
}
