//! Text frames for the `hdd-top` live dashboard.
//!
//! [`render`] is a pure function from snapshots to a frame string, so
//! the layout is unit-testable without a terminal or a running driver;
//! [`Dashboard`] is the thin stateful wrapper the binary uses, keeping
//! the previous counter snapshot so every frame shows the interval
//! delta (reject/blocks/commit rates) next to the cumulative totals.
//! Deltas go through `MetricsSnapshot::delta`, which saturates instead
//! of wrapping, so a scheduler reset (crash/recovery resume) mid-
//! interval clamps the printed rates to zero rather than showing a
//! wrapped `u64`.

use crate::report::f2;
use certify::{advise, DEFAULT_MIN_EDGE};
use hdd::analysis::Hierarchy;
use obs::{DriftSnapshot, GaugeSnapshot, WALL_READER};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use txn_model::{Metrics, MetricsSnapshot};

/// ANSI escape: clear the screen and home the cursor (what `hdd-top`
/// prints before each frame unless `--no-clear`).
pub const ANSI_CLEAR: &str = "\x1b[2J\x1b[H";

/// Everything one frame needs, as plain snapshots.
#[derive(Debug)]
pub struct Frame<'a> {
    /// Header title (workload / mode description).
    pub title: &'a str,
    /// Seconds since the dashboard attached.
    pub elapsed_secs: f64,
    /// Seconds covered by `delta`.
    pub interval_secs: f64,
    /// Cumulative counters.
    pub totals: &'a MetricsSnapshot,
    /// Counter deltas over the last interval (saturating).
    pub delta: &'a MetricsSnapshot,
    /// The live gauge board.
    pub gauges: &'a GaugeSnapshot,
    /// The workload-drift sketch (section hidden until configured).
    pub drift: &'a DriftSnapshot,
    /// Precomputed one-line advisor summary, if a hierarchy was
    /// attached and the sketch has folded at least once.
    pub advice: Option<&'a str>,
    /// Segment display names; segments beyond the slice fall back to
    /// `s<idx>`.
    pub segment_names: &'a [String],
}

/// Segment display label.
fn seg_label(names: &[String], idx: u32) -> String {
    names
        .get(idx as usize)
        .cloned()
        .unwrap_or_else(|| format!("s{idx}"))
}

/// Render one frame (see module docs). The output is deterministic in
/// its inputs — no clocks, no terminal queries.
pub fn render(f: &Frame) -> String {
    let mut s = String::new();
    let rate = if f.interval_secs > 0.0 {
        f.delta.commits as f64 / f.interval_secs
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "== hdd-top — {} ==  t={}s  interval={}s",
        f.title,
        f2(f.elapsed_secs),
        f2(f.interval_secs)
    );
    let _ = writeln!(
        s,
        " commits   {:>10} total | {:>10} /s     aborts {:>8}",
        f.totals.commits,
        f2(rate),
        f.totals.aborts
    );
    let g = f.gauges;
    let _ = writeln!(
        s,
        " driver    {}/{} programs claimed",
        g.driver_claimed, g.driver_offered
    );
    let _ = writeln!(
        s,
        " wall      clock={}  floor={}  anchor={}  released@{}  lag={}",
        g.clock_now, g.wall_floor, g.wall_anchor, g.wall_released_at, g.wall_lag
    );
    let _ = writeln!(
        s,
        " registry  active={}  intervals={}  settled_lag={}",
        g.active_txns, g.registry_intervals, g.registry_settled_lag
    );
    let _ = writeln!(
        s,
        " store     versions={}  granules={}  max_chain={}  gc_backlog={}  watermark={}",
        g.store_versions, g.store_granules, g.store_max_chain, g.gc_backlog, g.gc_watermark
    );
    let _ = writeln!(
        s,
        " rejects Δ {} ({})  wall_viol Δ {}  blocks Δ {}  reads Δ {}  writes Δ {}",
        f.delta.rejections,
        f.delta.rejection_breakdown(),
        f.delta.wall_violations,
        f.delta.blocks,
        f.delta.reads,
        f.delta.writes
    );
    if g.configured {
        let _ = write!(s, " classes  ");
        for c in &g.classes {
            let _ = write!(
                s,
                " c{}: i_old={} active={} lag={} wall={} |",
                c.class, c.i_old, c.active, c.settled_lag, c.wall_component
            );
        }
        let _ = writeln!(s);
        let _ = write!(s, " seg walls");
        for (i, w) in g.segment_walls.iter().enumerate() {
            let _ = write!(s, " {}={}", seg_label(f.segment_names, i as u32), w);
        }
        let _ = writeln!(s);
    }
    let d = f.drift;
    if d.configured {
        let _ = writeln!(
            s,
            " drift     score={}‰ (access={}‰ edge={}‰) thr={}‰ tripped={} folds={} trips={}",
            d.score_milli,
            d.access_score_milli,
            d.edge_score_milli,
            d.threshold_milli,
            if d.tripped { "yes" } else { "no" },
            d.folds,
            d.trips
        );
        let dragger = match d.drag_class {
            Some(c) if c == WALL_READER => "adhoc".to_string(),
            Some(c) => format!("c{c}"),
            None => "-".to_string(),
        };
        let _ = write!(
            s,
            " wall drag {dragger} held={} ticks  blame:",
            d.drag_held_ticks
        );
        for c in &d.classes {
            if c.drag_blame > 0 && c.class != WALL_READER {
                let _ = write!(s, " c{}={}", c.class, c.drag_blame);
            }
        }
        let _ = writeln!(s);
        if let Some(advice) = f.advice {
            let _ = writeln!(s, " advice    {advice}");
        }
    }
    let _ = writeln!(s, " staleness (reader → source segment, ticks, cumulative)");
    let _ = writeln!(
        s,
        "   {:<8} {:<8} {:>10} {:>8} {:>8} {:>8}",
        "reader", "segment", "reads", "p50", "p99", "max"
    );
    if g.staleness.is_empty() {
        let _ = writeln!(s, "   (no cross-class or wall reads yet)");
    }
    for cell in &g.staleness {
        let _ = writeln!(
            s,
            "   {:<8} {:<8} {:>10} {:>8} {:>8} {:>8}",
            cell.reader_label(),
            seg_label(f.segment_names, cell.segment),
            cell.hist.count,
            cell.hist.p50(),
            cell.hist.p99(),
            cell.hist.max
        );
    }
    s
}

/// Stateful frame producer for the `hdd-top` binary: samples a live
/// [`Metrics`] and renders with the interval delta against the previous
/// sample.
#[derive(Debug)]
pub struct Dashboard {
    title: String,
    segment_names: Vec<String>,
    hierarchy: Option<Arc<Hierarchy>>,
    started: Instant,
    prev: Option<(Instant, MetricsSnapshot)>,
}

impl Dashboard {
    /// A dashboard with nothing sampled yet.
    pub fn new(title: impl Into<String>, segment_names: Vec<String>) -> Self {
        Dashboard {
            title: title.into(),
            segment_names,
            hierarchy: None,
            started: Instant::now(),
            prev: None,
        }
    }

    /// Attach the running hierarchy so each frame can fold the drift
    /// sketch through the decomposition advisor (the `advice` line).
    pub fn with_hierarchy(mut self, hierarchy: Arc<Hierarchy>) -> Self {
        self.hierarchy = Some(hierarchy);
        self
    }

    /// One-line advisor summary for a drift snapshot, or `None` when no
    /// hierarchy is attached or the sketch has not folded yet.
    fn advice_line(&self, drift: &DriftSnapshot) -> Option<String> {
        let h = self.hierarchy.as_ref()?;
        if !drift.configured || drift.folds == 0 {
            return None;
        }
        let report = advise(h, drift, DEFAULT_MIN_EDGE);
        if report.hierarchy_is_optimal() {
            Some(format!(
                "quality {}/1000: hierarchy matches the observed workload's best TST",
                report.quality_milli
            ))
        } else {
            Some(format!(
                "quality {}/1000: {}",
                report.quality_milli,
                report.advice_text(&report.suggestions[0])
            ))
        }
    }

    /// Sample `metrics` (counters + gauge board + drift sketch) and
    /// render one frame. The first frame's "interval" is everything
    /// since attach.
    pub fn frame(&mut self, metrics: &Metrics) -> String {
        let now = Instant::now();
        let totals = metrics.snapshot();
        let gauges = metrics.obs.gauges.snapshot();
        let drift = metrics.obs.drift.snapshot();
        let advice = self.advice_line(&drift);
        let (since, baseline) = match self.prev {
            Some((t, s)) => (now.duration_since(t), s),
            None => (now.duration_since(self.started), MetricsSnapshot::default()),
        };
        let delta = totals.delta(&baseline);
        self.prev = Some((now, totals));
        render(&Frame {
            title: &self.title,
            elapsed_secs: now.duration_since(self.started).as_secs_f64(),
            interval_secs: since.as_secs_f64(),
            totals: &totals,
            delta: &delta,
            gauges: &gauges,
            drift: &drift,
            advice: advice.as_deref(),
            segment_names: &self.segment_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::WALL_READER;

    fn fixed_frame_text() -> String {
        let board = obs::GaugeBoard::new();
        board.configure(2, 3);
        board.set_clock(1234);
        board.set_wall(1210, 1220, 1200, 34);
        board.set_class(0, 3, 2, 0);
        board.set_class(1, 7, 1, 1);
        board.set_wall_component(0, 1200);
        board.set_segment_wall(0, 1200);
        board.set_activity(3, 40, 1);
        board.set_store(640, 320, 4, 12);
        board.set_driver_progress(123, 1000);
        board.record_staleness(1, 0, 3);
        board.record_staleness(1, 0, 17);
        board.record_staleness(WALL_READER, 2, 5);
        let gauges = board.snapshot();
        let totals = MetricsSnapshot {
            commits: 5678,
            aborts: 12,
            rejections: 3,
            rej_write_too_late: 2,
            rej_read_too_late: 1,
            blocks: 40,
            ..Default::default()
        };
        let delta = MetricsSnapshot {
            commits: 100,
            rejections: 3,
            rej_write_too_late: 2,
            rej_read_too_late: 1,
            blocks: 17,
            ..Default::default()
        };
        let names = vec!["D0".to_string(), "D1".to_string(), "D2".to_string()];
        render(&Frame {
            title: "inventory",
            elapsed_secs: 12.3,
            interval_secs: 0.25,
            totals: &totals,
            delta: &delta,
            gauges: &gauges,
            drift: &DriftSnapshot::default(),
            advice: None,
            segment_names: &names,
        })
    }

    #[test]
    fn render_is_deterministic_and_shows_every_section() {
        let a = fixed_frame_text();
        let b = fixed_frame_text();
        assert_eq!(a, b, "pure function of its inputs");
        assert!(a.contains("== hdd-top — inventory ==  t=12.30s  interval=0.25s"));
        assert!(a.contains("400.00 /s"), "100 commits / 0.25 s:\n{a}");
        assert!(a.contains("driver    123/1000"));
        assert!(a.contains("clock=1234  floor=1200  anchor=1210  released@1220  lag=34"));
        assert!(a.contains("rejects Δ 3 (w2/r1/d0)"));
        assert!(a.contains("c0: i_old=3 active=2 lag=0 wall=1200"));
        assert!(a.contains("D0=1200"), "segment names label the walls:\n{a}");
        assert!(a.contains("c1"), "class staleness row present");
        assert!(a.contains("wall"), "wall-reader staleness row present");
    }

    #[test]
    fn unnamed_segments_fall_back_to_indices() {
        let board = obs::GaugeBoard::new();
        board.configure(1, 1);
        board.record_staleness(0, 0, 9);
        let gauges = board.snapshot();
        let zero = MetricsSnapshot::default();
        let text = render(&Frame {
            title: "t",
            elapsed_secs: 0.0,
            interval_secs: 0.0,
            totals: &zero,
            delta: &zero,
            gauges: &gauges,
            drift: &DriftSnapshot::default(),
            advice: None,
            segment_names: &[],
        });
        assert!(text.contains("s0"), "fallback label:\n{text}");
    }

    #[test]
    fn empty_staleness_prints_a_placeholder_not_garbage() {
        let gauges = GaugeSnapshot::default();
        let zero = MetricsSnapshot::default();
        let text = render(&Frame {
            title: "idle",
            elapsed_secs: 1.0,
            interval_secs: 1.0,
            totals: &zero,
            delta: &zero,
            gauges: &gauges,
            drift: &DriftSnapshot::default(),
            advice: None,
            segment_names: &[],
        });
        assert!(text.contains("no cross-class or wall reads yet"));
        assert!(
            !text.contains("classes"),
            "unconfigured board: no class rows"
        );
        assert!(
            !text.contains("drift"),
            "unconfigured sketch: no drift panel"
        );
    }

    #[test]
    fn drift_panel_shows_scores_drag_blame_and_advice() {
        let board = obs::DriftBoard::new();
        board.configure(2, 3);
        board.set_enabled(true);
        for _ in 0..20 {
            board.record_edge(1, 0);
            board.record_access(0, 1);
        }
        board.note_wall_floor(Some(1), 10);
        board.note_wall_floor(Some(1), 14);
        let _ = board.fold();
        let drift = board.snapshot();
        let zero = MetricsSnapshot::default();
        let text = render(&Frame {
            title: "drifty",
            elapsed_secs: 1.0,
            interval_secs: 1.0,
            totals: &zero,
            delta: &zero,
            gauges: &GaugeSnapshot::default(),
            drift: &drift,
            advice: Some("quality 666/1000: merge segments D0+D1"),
            segment_names: &[],
        });
        assert!(text.contains("drift     score=0‰"), "seed fold:\n{text}");
        assert!(text.contains("folds=1"), "{text}");
        assert!(text.contains("wall drag c1"), "{text}");
        assert!(text.contains("c1=2"), "blame counts:\n{text}");
        assert!(text.contains("advice    quality 666/1000"), "{text}");
    }

    #[test]
    fn dashboard_advice_line_folds_through_the_advisor() {
        use hdd::analysis::AccessSpec;
        use txn_model::SegmentId;
        let specs = vec![
            AccessSpec::new("t1", vec![SegmentId(0)], vec![]),
            AccessSpec::new("t2", vec![SegmentId(1)], vec![SegmentId(0)]),
        ];
        let h = Arc::new(Hierarchy::build(2, &specs).unwrap());
        let m = Metrics::default();
        m.obs.drift.configure(2, 2);
        m.obs.drift.set_enabled(true);
        let mut d = Dashboard::new("live", vec![]).with_hierarchy(h);
        // No folds yet: panel renders, advice line does not.
        let text = d.frame(&m);
        assert!(text.contains("drift     score"));
        assert!(!text.contains("advice    "), "{text}");
        // A cycle-closing mix, folded: the advisor suggests the merge.
        for _ in 0..20 {
            m.obs.drift.record_edge(0, 1);
            m.obs.drift.record_edge(1, 0);
        }
        let _ = m.obs.drift.fold();
        let text = d.frame(&m);
        assert!(
            text.contains("advice    quality 0/1000: merge segments D0+D1"),
            "{text}"
        );
    }

    #[test]
    fn dashboard_frames_show_interval_deltas_and_clamp_across_reset() {
        let m = Metrics::default();
        let mut d = Dashboard::new("live", vec![]);
        Metrics::add(&m.commits, 10);
        let first = d.frame(&m);
        assert!(first.contains("10 total"));
        Metrics::add(&m.commits, 5);
        let second = d.frame(&m);
        assert!(second.contains("15 total"));
        // Reset mid-interval (crash/recovery resume): the next frame
        // must clamp, not wrap.
        m.reset();
        Metrics::add(&m.commits, 2);
        let third = d.frame(&m);
        assert!(third.contains("2 total"));
        assert!(
            !third.contains("18446744073709"),
            "wrapped u64 leaked into the frame:\n{third}"
        );
    }
}
