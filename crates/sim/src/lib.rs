//! # sim — execution drivers and the experiment harness
//!
//! * [`driver`] — a seeded, deterministic interleaved executor: one
//!   logical step of one transaction at a time, with retry-on-block and
//!   restart-on-abort semantics shared by every scheduler;
//! * [`concurrent`] — a multi-threaded closed-loop executor for
//!   wall-clock throughput comparisons;
//! * [`baseline`] — recorded-throughput lookups out of the
//!   `BENCH_*.json` artifacts, shared by every CI floor gate;
//! * [`dashboard`] — text-frame rendering for the `hdd-top` live
//!   dashboard binary;
//! * [`scripts`] — replay of the deterministic anomaly interleavings of
//!   Figures 3 and 4;
//! * [`factory`] — builds every scheduler (HDD and all baselines) over a
//!   freshly seeded store for a given workload;
//! * [`report`] — ASCII tables for the paper-style output;
//! * [`experiments`] — one module per figure of the paper (E1–E10),
//!   each regenerating the figure's claim as a measured table, plus the
//!   E11 cross-read scaling sweep and the E12 Section-7.5 database-
//!   computer message analysis.

#![warn(missing_docs)]

pub mod baseline;
pub mod concurrent;
pub mod dashboard;
pub mod driver;
pub mod experiments;
pub mod factory;
pub mod report;
pub mod scripts;

pub use driver::{run_interleaved, DriverConfig, RunStats};
pub use factory::{build_scheduler, SchedulerKind, ALL_KINDS};
pub use report::Table;
