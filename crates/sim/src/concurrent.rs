//! Multi-threaded closed-loop driver for wall-clock throughput runs.
//!
//! `workers` threads claim transaction programs off a shared slice via a
//! single atomic cursor — no queue mutex, no per-claim allocation — and
//! drive them to commit, retrying blocked operations under bounded
//! exponential backoff and restarting aborted ones. A coordinator thread
//! ticks the scheduler's maintenance hook until every worker exits.
//! Semantics match the deterministic driver; only the interleaving
//! source differs.

use crate::driver::RunStats;
use obs::{SpanEvent, SpanKind, Terminal, NO_CLASS};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txn_model::program::ReadCtx;
use txn_model::{
    CommitOutcome, DependencyGraph, GroupCommitWal, ReadOutcome, ScheduleEvent, Scheduler, Step,
    TxnProgram, WriteOutcome,
};

/// Concurrent driver configuration.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Worker threads.
    pub workers: usize,
    /// Restart budget per program.
    pub max_restarts: usize,
    /// Maintenance tick interval.
    pub maintenance_interval: Duration,
    /// Verify serializability afterwards.
    pub verify: bool,
    /// Record schedule events. Turning this off disables the scheduler's
    /// log for the run (pure-throughput mode) and implies no
    /// verification.
    pub capture_log: bool,
    /// Enable the scheduler's observability sidecar for this run: the
    /// driver then records commit latency (claim → commit, retries
    /// included), per-operation service time, block-wait spans and
    /// backoff sleeps into `scheduler.metrics().obs`. Off by default —
    /// disabled recording costs one branch per claimed program.
    pub obs: bool,
    /// Per-transaction deadline, measured from program claim and
    /// spanning all retries. A program still blocked or restarting past
    /// its deadline is aborted and counted in
    /// [`RunStats::deadline_exceeded`] rather than spinning without
    /// bound (a wedged scheduler otherwise hangs the whole run). `None`
    /// disables the deadline.
    pub txn_deadline: Option<Duration>,
    /// Flight-recorder sampling stride, applied when `obs` is on: `N`
    /// traces every Nth transaction attempt fully (admission, op and
    /// wait spans, terminal) while the other N−1 run counter-only —
    /// including the scheduler's per-op decision traces, which follow
    /// the same stride. 0 (the default) leaves the recorder untouched:
    /// plain obs mode, exactly as before the flight recorder existed.
    pub flight_sample: u64,
    /// Group-commit WAL: when set, each worker journals its update
    /// transaction's redo events (`Begin`, accepted `Write`s, `Commit`)
    /// through the WAL after the in-memory commit and counts the commit
    /// only once its batch is durable — the *group-commit ack rule*.
    /// Read-only transactions skip the WAL. A submit that fails because
    /// the WAL crashed lands in [`ConcurrentStats::wal_lost`] instead of
    /// `committed`.
    pub wal: Option<Arc<GroupCommitWal>>,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            workers: 4,
            max_restarts: 100,
            maintenance_interval: Duration::from_micros(50),
            verify: true,
            capture_log: true,
            obs: false,
            txn_deadline: None,
            flight_sample: 0,
            wal: None,
        }
    }
}

/// True when a per-transaction deadline is set and has passed.
#[inline]
fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Bounded exponential backoff for Block outcomes: a few spin hints,
/// then sleeps doubling from 1 µs up to a 256 µs ceiling. Keeps blocked
/// workers off the contended state without unbounded busy-waiting (on
/// oversubscribed machines, plain `yield_now` thrashes the scheduler).
/// Returns the requested sleep (ZERO while still spinning) so callers
/// can account backoff pressure.
fn backoff(spins: u32) -> Duration {
    if spins <= 3 {
        std::hint::spin_loop();
        Duration::ZERO
    } else {
        let exp = (spins - 4).min(8); // 1 µs << 8 = 256 µs ceiling
        let d = Duration::from_micros(1u64 << exp);
        std::thread::sleep(d);
        d
    }
}

/// Run `f`, recording its wall time into `hist` when `on`.
#[inline]
fn timed<T>(on: bool, hist: &obs::LatencyRecorder, f: impl FnOnce() -> T) -> T {
    if on {
        let t = Instant::now();
        let r = f();
        hist.record(t.elapsed().as_nanos() as u64);
        r
    } else {
        f()
    }
}

/// Drop guard: the last worker to exit stops the maintenance ticker.
struct WorkerGuard<'a> {
    active: &'a AtomicUsize,
    done: &'a AtomicBool,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.store(true, Ordering::Release);
        }
    }
}

/// Gate for oversubscribed stress/sweep legs: `Some(requested)` when the
/// host can meaningfully run `requested` workers (mild oversubscription
/// is the point of the high legs, so anything up to 8× the available
/// parallelism passes), `None` when the leg should be skipped — on a
/// 1–2 core machine a 16/32-worker leg measures scheduler thrash and
/// can run for minutes without saying anything about the protocol.
pub fn capped_workers(requested: usize) -> Option<usize> {
    let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    (requested <= avail.saturating_mul(8)).then_some(requested)
}

/// Result of a concurrent run: the shared [`RunStats`] plus wall time.
#[derive(Debug, Clone)]
pub struct ConcurrentStats {
    /// Common counters (steps counts operation attempts).
    pub stats: RunStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Committed transactions per second (durable commits only when a
    /// WAL is configured).
    pub throughput: f64,
    /// Commits whose durability ack failed because the WAL crashed
    /// (committed in memory, not on disk; excluded from `committed`).
    /// Always 0 without a WAL.
    pub wal_lost: usize,
}

/// Run `programs` across threads.
pub fn run_concurrent(
    scheduler: &dyn Scheduler,
    programs: Vec<TxnProgram>,
    cfg: &ConcurrentConfig,
) -> ConcurrentStats {
    if !cfg.capture_log {
        scheduler.log().set_enabled(false);
    }
    if cfg.obs {
        scheduler.metrics().obs.set_enabled(true);
    }
    if cfg.flight_sample > 0 {
        scheduler
            .metrics()
            .obs
            .flight
            .set_sample_every(cfg.flight_sample);
    }
    // One load up front: the flag is stable for the whole run, so the
    // disabled path costs a branch per operation, not an atomic load.
    let obs_on = scheduler.metrics().obs.enabled();
    let mobs = &scheduler.metrics().obs;
    // Sampled mode: every Nth transaction attempt gets the full span
    // treatment, the rest stay counter-only (op timing included — that
    // is what keeps sampled-mode overhead near the disabled baseline).
    let flight_on = obs_on && mobs.flight.active();
    let programs = &programs[..];
    let cursor = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let restarts = AtomicUsize::new(0);
    let gave_up = AtomicUsize::new(0);
    let deadline_exceeded = AtomicUsize::new(0);
    let wal_lost = AtomicUsize::new(0);
    let attempts = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let active_workers = AtomicUsize::new(cfg.workers);
    // Reference bindings so the worker closures can be `move` (they
    // need their worker index by value) while sharing the counters.
    let (
        cursor,
        committed,
        restarts,
        gave_up,
        deadline_exceeded,
        wal_lost,
        attempts,
        done,
        active_workers,
    ) = (
        &cursor,
        &committed,
        &restarts,
        &gave_up,
        &deadline_exceeded,
        &wal_lost,
        &attempts,
        &done,
        &active_workers,
    );
    let wal = cfg.wal.as_deref();

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Maintenance ticker: runs until every worker has exited, so a
        // worker blocked on maintenance-driven state (time-wall release,
        // lock queues) always makes progress eventually.
        scope.spawn(|| {
            // ordering: Relaxed — advisory stop flag; one extra iteration after the store is harmless.
            while !done.load(Ordering::Relaxed) {
                scheduler.maintenance();
                std::thread::sleep(cfg.maintenance_interval);
            }
        });
        for wi in 0..cfg.workers {
            scope.spawn(move || {
                let _guard = WorkerGuard {
                    active: active_workers,
                    done,
                };
                // Close a sampled flight (each begin is its own flight;
                // restarts begin fresh transactions, hence fresh
                // flights).
                let flight_end = |traced: bool, txn: u64, terminal: Terminal| {
                    if traced {
                        mobs.flight.push(SpanEvent::End {
                            txn,
                            at_ns: mobs.flight.now_ns(),
                            terminal,
                        });
                    }
                };
                loop {
                    // Claim the next program: one uncontended fetch_add.
                    // ordering: Relaxed — work-claim ticket; uniqueness comes from fetch_add atomicity and the claimed program is immutable.
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(idx) else {
                        break;
                    };
                    if obs_on {
                        // Driver-progress gauge for hdd-top: two relaxed
                        // stores, works for any scheduler (the board's
                        // global cells need no configuration).
                        mobs.gauges
                            .set_driver_progress(idx as u64 + 1, programs.len() as u64);
                    }
                    // Commit latency spans the whole program: claim to
                    // commit, across aborts/restarts.
                    let claimed_at = obs_on.then(Instant::now);
                    // The deadline spans the program's whole life too:
                    // restarts don't reset it.
                    let deadline = cfg.txn_deadline.map(|d| Instant::now() + d);
                    let mut tries = 0usize;
                    'retry: loop {
                        let handle = scheduler.begin(&program.profile);
                        // Admission: every attempt is its own flight
                        // (`begin` draws a fresh id); `admit` counts it
                        // and returns true when it falls on the stride.
                        let traced = flight_on
                            && mobs.flight.admit(
                                handle.id.0,
                                handle.class.map_or(NO_CLASS, |c| c.0),
                                wi as u32,
                            );
                        // In sampled mode, unsampled transactions skip
                        // op timing too (counter-only hot path).
                        let time_ops = obs_on && (!flight_on || traced);
                        // Redo events for the durability submit. A
                        // restart begins a fresh transaction and thus a
                        // fresh journal; read-only transactions skip
                        // the WAL.
                        let journal = wal.is_some() && handle.class.is_some();
                        let mut redo: Vec<ScheduleEvent> = Vec::new();
                        if journal {
                            redo.push(ScheduleEvent::Begin {
                                txn: handle.id,
                                start_ts: handle.start_ts,
                                class: handle.class,
                            });
                        }
                        let mut ctx = ReadCtx::default();
                        let mut pc = 0usize;
                        let mut spins = 0u32;
                        // Start of the current contiguous Block streak,
                        // plus its flight-clock twin and the portion
                        // actually slept (for the wait span).
                        let mut block_since: Option<Instant> = None;
                        let mut streak_start_ns: Option<u64> = None;
                        let mut streak_slept_ns = 0u64;
                        while pc < program.steps.len() {
                            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                            attempts.fetch_add(1, Ordering::Relaxed);
                            let span_start = traced.then(|| mobs.flight.now_ns());
                            let outcome_block = match &program.steps[pc] {
                                Step::Read(g) => match timed(time_ops, &mobs.op_service, || {
                                    scheduler.read(&handle, *g)
                                }) {
                                    ReadOutcome::Value(v) => {
                                        if let Some(s) = span_start {
                                            mobs.flight.push(SpanEvent::Op {
                                                txn: handle.id.0,
                                                kind: SpanKind::Read,
                                                segment: g.segment.0,
                                                key: g.key,
                                                start_ns: s,
                                                dur_ns: mobs.flight.now_ns().saturating_sub(s),
                                            });
                                        }
                                        ctx.record(*g, v);
                                        pc += 1;
                                        spins = 0;
                                        false
                                    }
                                    ReadOutcome::Block => true,
                                    ReadOutcome::Abort => {
                                        scheduler.abort(&handle);
                                        tries += 1;
                                        if past(deadline) {
                                            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                            deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                            flight_end(
                                                traced,
                                                handle.id.0,
                                                Terminal::DeadlineExceeded,
                                            );
                                            break 'retry;
                                        }
                                        if tries > cfg.max_restarts {
                                            gave_up.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                            flight_end(traced, handle.id.0, Terminal::GaveUp);
                                            break 'retry;
                                        }
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        restarts.fetch_add(1, Ordering::Relaxed);
                                        flight_end(traced, handle.id.0, Terminal::Aborted);
                                        continue 'retry;
                                    }
                                },
                                Step::Write(g, src) => {
                                    let v = src.resolve(&ctx);
                                    let journaled = if journal {
                                        Some(Arc::new(v.clone()))
                                    } else {
                                        None
                                    };
                                    match timed(time_ops, &mobs.op_service, || {
                                        scheduler.write(&handle, *g, v)
                                    }) {
                                        WriteOutcome::Done => {
                                            if let Some(value) = journaled {
                                                redo.push(ScheduleEvent::Write {
                                                    txn: handle.id,
                                                    granule: *g,
                                                    version: handle.start_ts,
                                                    value,
                                                });
                                            }
                                            if let Some(s) = span_start {
                                                mobs.flight.push(SpanEvent::Op {
                                                    txn: handle.id.0,
                                                    kind: SpanKind::Write,
                                                    segment: g.segment.0,
                                                    key: g.key,
                                                    start_ns: s,
                                                    dur_ns: mobs.flight.now_ns().saturating_sub(s),
                                                });
                                            }
                                            pc += 1;
                                            spins = 0;
                                            false
                                        }
                                        WriteOutcome::Block => true,
                                        WriteOutcome::Abort => {
                                            scheduler.abort(&handle);
                                            tries += 1;
                                            if past(deadline) {
                                                // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                                deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                                flight_end(
                                                    traced,
                                                    handle.id.0,
                                                    Terminal::DeadlineExceeded,
                                                );
                                                break 'retry;
                                            }
                                            if tries > cfg.max_restarts {
                                                gave_up.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                                flight_end(traced, handle.id.0, Terminal::GaveUp);
                                                break 'retry;
                                            }
                                            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                            restarts.fetch_add(1, Ordering::Relaxed);
                                            flight_end(traced, handle.id.0, Terminal::Aborted);
                                            continue 'retry;
                                        }
                                    }
                                }
                            };
                            if outcome_block {
                                if past(deadline) {
                                    scheduler.abort(&handle);
                                    // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                    deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                    flight_end(traced, handle.id.0, Terminal::DeadlineExceeded);
                                    break 'retry;
                                }
                                if obs_on && block_since.is_none() {
                                    block_since = Some(Instant::now());
                                    if traced {
                                        streak_start_ns = span_start;
                                        streak_slept_ns = 0;
                                    }
                                }
                                spins += 1;
                                let slept = backoff(spins);
                                if obs_on && !slept.is_zero() {
                                    mobs.backoff_sleep.record(slept.as_nanos() as u64);
                                    streak_slept_ns += slept.as_nanos() as u64;
                                }
                            } else if let Some(t) = block_since.take() {
                                let dur_ns = t.elapsed().as_nanos() as u64;
                                mobs.block_wait.record(dur_ns);
                                if let Some(s) = streak_start_ns.take() {
                                    mobs.flight.push(SpanEvent::Wait {
                                        txn: handle.id.0,
                                        start_ns: s,
                                        dur_ns,
                                        slept_ns: streak_slept_ns,
                                    });
                                }
                            }
                        }
                        // Commit loop.
                        let mut commit_spins = 0u32;
                        let mut commit_block_since: Option<Instant> = None;
                        let mut commit_streak_start_ns: Option<u64> = None;
                        let mut commit_streak_slept_ns = 0u64;
                        loop {
                            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                            attempts.fetch_add(1, Ordering::Relaxed);
                            let span_start = traced.then(|| mobs.flight.now_ns());
                            match timed(time_ops, &mobs.op_service, || scheduler.commit(&handle)) {
                                CommitOutcome::Committed(commit_ts) => {
                                    // Group-commit ack rule: the commit
                                    // counts only once its batch is on
                                    // disk.
                                    if journal {
                                        redo.push(ScheduleEvent::Commit {
                                            txn: handle.id,
                                            commit_ts,
                                        });
                                        match wal.expect("journal implies wal").submit(&redo) {
                                            Ok(Some(ack)) => mobs.gauges.record_wal_batch(
                                                ack.frames as u64,
                                                ack.bytes as u64,
                                                ack.fsync_ns,
                                            ),
                                            Ok(None) => {}
                                            Err(_) => {
                                                // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                                wal_lost.fetch_add(1, Ordering::Relaxed);
                                                flight_end(
                                                    traced,
                                                    handle.id.0,
                                                    Terminal::Committed,
                                                );
                                                break 'retry;
                                            }
                                        }
                                    }
                                    committed.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                    if let Some(t) = commit_block_since.take() {
                                        let dur_ns = t.elapsed().as_nanos() as u64;
                                        mobs.block_wait.record(dur_ns);
                                        if let Some(s) = commit_streak_start_ns.take() {
                                            mobs.flight.push(SpanEvent::Wait {
                                                txn: handle.id.0,
                                                start_ns: s,
                                                dur_ns,
                                                slept_ns: commit_streak_slept_ns,
                                            });
                                        }
                                    }
                                    if let Some(s) = span_start {
                                        mobs.flight.push(SpanEvent::Op {
                                            txn: handle.id.0,
                                            kind: SpanKind::Commit,
                                            segment: 0,
                                            key: 0,
                                            start_ns: s,
                                            dur_ns: mobs.flight.now_ns().saturating_sub(s),
                                        });
                                    }
                                    if let Some(t) = claimed_at {
                                        mobs.commit_latency.record(t.elapsed().as_nanos() as u64);
                                    }
                                    flight_end(traced, handle.id.0, Terminal::Committed);
                                    break 'retry;
                                }
                                CommitOutcome::Block => {
                                    if past(deadline) {
                                        scheduler.abort(&handle);
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                        flight_end(traced, handle.id.0, Terminal::DeadlineExceeded);
                                        break 'retry;
                                    }
                                    if obs_on && commit_block_since.is_none() {
                                        commit_block_since = Some(Instant::now());
                                        if traced {
                                            commit_streak_start_ns = span_start;
                                            commit_streak_slept_ns = 0;
                                        }
                                    }
                                    commit_spins += 1;
                                    let slept = backoff(commit_spins);
                                    if obs_on && !slept.is_zero() {
                                        mobs.backoff_sleep.record(slept.as_nanos() as u64);
                                        commit_streak_slept_ns += slept.as_nanos() as u64;
                                    }
                                }
                                CommitOutcome::Aborted => {
                                    tries += 1;
                                    if past(deadline) {
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                        flight_end(traced, handle.id.0, Terminal::DeadlineExceeded);
                                        break 'retry;
                                    }
                                    if tries > cfg.max_restarts {
                                        gave_up.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                        flight_end(traced, handle.id.0, Terminal::GaveUp);
                                        break 'retry;
                                    }
                                    restarts.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                    flight_end(traced, handle.id.0, Terminal::Aborted);
                                    continue 'retry;
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    // ordering: Relaxed — advisory stop flag; the scope join below/above is the real synchronization.
    done.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();

    // ordering: Relaxed — read after the worker scope joined; the join edge orders every counter write before it.
    let committed = committed.load(Ordering::Relaxed);
    let mut stats = RunStats {
        committed,
        restarts: restarts.load(Ordering::Relaxed), // ordering: read after the worker scope joined
        gave_up: gave_up.load(Ordering::Relaxed),   // ordering: read after the worker scope joined
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed), // ordering: read after the worker scope joined
        stalled: 0,
        steps: attempts.load(Ordering::Relaxed), // ordering: read after the worker scope joined
        metrics: scheduler.metrics().snapshot(),
        serializable: None,
        cycle: None,
    };
    if cfg.verify && cfg.capture_log {
        let dg = DependencyGraph::from_log(scheduler.log());
        stats.cycle = dg.find_cycle();
        stats.serializable = Some(stats.cycle.is_none());
    }
    ConcurrentStats {
        throughput: committed as f64 / elapsed.as_secs_f64().max(1e-9),
        stats,
        elapsed,
        // ordering: Relaxed — read after the worker scope joined; the join edge orders every counter write before it.
        wal_lost: wal_lost.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_scheduler, SchedulerKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::banking::Banking;
    use workloads::inventory::{Inventory, InventoryConfig};
    use workloads::Workload;

    #[test]
    fn concurrent_hdd_banking_serializable() {
        let mut w = Banking::new(16);
        let mut rng = StdRng::seed_from_u64(9);
        let programs: Vec<_> = (0..200).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let out = run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
        assert_eq!(out.stats.gave_up, 0);
        assert_eq!(out.stats.committed, 200);
        assert_eq!(out.stats.serializable, Some(true), "{:?}", out.stats.cycle);
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn concurrent_inventory_under_2pl_and_hdd() {
        for kind in [SchedulerKind::TwoPl, SchedulerKind::Hdd] {
            let mut w = Inventory::new(InventoryConfig {
                items: 16,
                ..InventoryConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(21);
            let programs: Vec<_> = (0..150).map(|_| w.generate(&mut rng)).collect();
            let (sched, _store) = build_scheduler(kind, &w);
            let out = run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
            assert_eq!(
                out.stats.serializable,
                Some(true),
                "{} cycle: {:?}",
                kind.name(),
                out.stats.cycle
            );
            assert!(out.stats.committed > 0);
        }
    }

    #[test]
    fn wal_mode_journals_every_commit_durably() {
        use txn_model::{decode_wal, GroupCommitConfig};

        let dir = std::env::temp_dir().join(format!("sim-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.wal");
        let wal = Arc::new(
            GroupCommitWal::create(
                &path,
                GroupCommitConfig {
                    max_batch_frames: 8,
                    ..GroupCommitConfig::default()
                },
            )
            .unwrap(),
        );

        let mut w = Banking::new(16);
        let mut rng = StdRng::seed_from_u64(41);
        let programs: Vec<_> = (0..120).map(|_| w.generate(&mut rng)).collect();
        let (sched, store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            obs: true,
            wal: Some(Arc::clone(&wal)),
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert_eq!(out.stats.committed, 120);
        assert_eq!(out.wal_lost, 0);
        assert_eq!(out.stats.serializable, Some(true));

        // The on-disk WAL carries exactly one Commit per counted commit
        // and replays to the same balances the store holds.
        let bytes = std::fs::read(&path).unwrap();
        let (events, report) = decode_wal(&bytes).unwrap();
        assert!(!report.torn());
        let commits = events
            .iter()
            .filter(|e| matches!(e, ScheduleEvent::Commit { .. }))
            .count();
        assert_eq!(commits, 120);
        let replayed = mvstore::MvStore::new();
        w.seed(&replayed);
        mvstore::recover(&replayed, &events);
        assert_eq!(
            w.total_balance(&replayed),
            w.total_balance(store.as_ref()),
            "WAL replay reconstructs the committed state"
        );

        // Group commit amortized fsyncs: fewer batches than frames.
        let stats = wal.stats();
        assert!(stats.frames > stats.batches, "{stats:?}");
        let gauges = sched.metrics().obs.gauges.snapshot();
        assert_eq!(gauges.wal_batches, stats.batches);
        assert!(gauges.fsync_ns.count > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_mode_records_latencies_per_commit() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(13);
        let programs: Vec<_> = (0..80).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            obs: true,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        let snap = sched.metrics().obs.snapshot();
        assert_eq!(out.stats.committed, 80);
        assert_eq!(
            snap.commit_latency.count, 80,
            "one commit-latency sample per committed program"
        );
        assert!(
            snap.op_service.count >= out.stats.steps,
            "every attempted operation is timed"
        );
        assert!(snap.commit_latency.p50() > 0);
    }

    #[test]
    fn flight_sampling_records_span_trees_that_all_terminate() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(17);
        let programs: Vec<_> = (0..60).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            obs: true,
            flight_sample: 1,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert_eq!(out.stats.committed, 60);
        let fr = &sched.metrics().obs.flight;
        assert!(fr.admitted() >= 60, "every attempt is admitted");
        assert_eq!(fr.dropped(), 0, "small run must fit the ring");
        let log = obs::assemble(&fr.drain());
        assert_eq!(log.open, 0, "no span leaks: every flight terminates");
        let committed: Vec<_> = log
            .flights
            .iter()
            .filter(|f| f.terminal == Some(obs::Terminal::Committed))
            .collect();
        assert_eq!(committed.len(), 60);
        for f in &committed {
            assert!(
                f.ops.iter().any(|o| o.kind == obs::SpanKind::Commit),
                "committed flight without a commit span"
            );
            assert!(f.ops.len() >= 2, "reads/writes plus commit");
        }
        // The exporter renders the log and self-validates.
        let trace = obs::flight_chrome_trace(&log);
        assert!(obs::validate_chrome_trace(&trace).is_ok());
        // Phase breakdown accounts the committed flights.
        let phases = obs::PhaseBreakdown::of_commits(&log);
        assert_eq!(phases.flights, 60);
        assert!(phases.total_ns > 0);
    }

    #[test]
    fn flight_stride_keeps_unsampled_txns_counter_only() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(23);
        let programs: Vec<_> = (0..80).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            obs: true,
            flight_sample: 8,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert_eq!(out.stats.committed, 80);
        let fr = &sched.metrics().obs.flight;
        assert!(fr.admitted() >= 80);
        assert!(
            fr.sampled_count() < fr.admitted(),
            "stride 8 must leave most txns counter-only"
        );
        let snap = sched.metrics().obs.snapshot();
        assert!(
            snap.op_service.count < out.stats.steps,
            "unsampled txns skip op timing in sampled mode \
             ({} timed of {} steps)",
            snap.op_service.count,
            out.stats.steps
        );
        let log = obs::assemble(&fr.drain());
        assert_eq!(log.open, 0);
        assert_eq!(log.flights.len() as u64, fr.sampled_count());
    }

    #[test]
    fn obs_off_by_default_records_nothing() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(14);
        let programs: Vec<_> = (0..20).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
        let snap = sched.metrics().obs.snapshot();
        assert_eq!(snap.commit_latency.count, 0);
        assert_eq!(snap.op_service.count, 0);
        assert_eq!(snap.trace_recorded, 0);
    }

    /// A scheduler wedged on every read — deterministic fixture for the
    /// deadline path (no real scheduler blocks forever on demand).
    struct Wedged {
        log: txn_model::ScheduleLog,
        metrics: txn_model::Metrics,
        ids: AtomicU64,
        aborts: AtomicUsize,
    }

    impl Wedged {
        fn new() -> Self {
            Wedged {
                log: txn_model::ScheduleLog::new(),
                metrics: txn_model::Metrics::default(),
                ids: AtomicU64::new(1),
                aborts: AtomicUsize::new(0),
            }
        }
    }

    impl Scheduler for Wedged {
        fn name(&self) -> &'static str {
            "wedged"
        }
        fn begin(&self, profile: &txn_model::TxnProfile) -> txn_model::TxnHandle {
            txn_model::TxnHandle {
                // ordering: Relaxed — id ticket; uniqueness comes from fetch_add atomicity, nothing is published with it.
                id: txn_model::TxnId(self.ids.fetch_add(1, Ordering::Relaxed)),
                start_ts: txn_model::Timestamp(0),
                class: profile.class,
            }
        }
        fn read(&self, _h: &txn_model::TxnHandle, _g: txn_model::GranuleId) -> ReadOutcome {
            ReadOutcome::Block
        }
        fn write(
            &self,
            _h: &txn_model::TxnHandle,
            _g: txn_model::GranuleId,
            _v: txn_model::Value,
        ) -> WriteOutcome {
            WriteOutcome::Done
        }
        fn commit(&self, _h: &txn_model::TxnHandle) -> CommitOutcome {
            CommitOutcome::Committed(txn_model::Timestamp(1))
        }
        fn abort(&self, _h: &txn_model::TxnHandle) {
            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
            self.aborts.fetch_add(1, Ordering::Relaxed);
        }
        fn log(&self) -> &txn_model::ScheduleLog {
            &self.log
        }
        fn metrics(&self) -> &txn_model::Metrics {
            &self.metrics
        }
    }

    #[test]
    fn deadline_bounds_a_wedged_scheduler() {
        let mut w = Banking::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        let programs: Vec<_> = (0..8).map(|_| w.generate(&mut rng)).collect();
        let sched = Wedged::new();
        let cfg = ConcurrentConfig {
            workers: 2,
            txn_deadline: Some(Duration::from_millis(5)),
            verify: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(&sched, programs, &cfg);
        assert_eq!(out.stats.committed, 0, "every program starts with a read");
        assert_eq!(out.stats.deadline_exceeded, 8);
        assert_eq!(
            // ordering: Relaxed — read after the worker scope joined; the join edge orders every counter write before it.
            sched.aborts.load(Ordering::Relaxed),
            8,
            "abandoned transactions are aborted, not leaked"
        );
        assert!(out.elapsed < Duration::from_secs(10), "no unbounded spin");
    }

    #[test]
    fn deadline_off_changes_nothing() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(31);
        let programs: Vec<_> = (0..60).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            txn_deadline: Some(Duration::from_secs(60)),
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert_eq!(out.stats.committed, 60);
        assert_eq!(out.stats.deadline_exceeded, 0);
        assert_eq!(out.stats.serializable, Some(true));
    }

    #[test]
    fn capture_log_off_records_nothing_and_skips_verify() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let programs: Vec<_> = (0..50).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert_eq!(out.stats.committed, 50);
        assert_eq!(out.stats.serializable, None);
        assert!(sched.log().is_empty());
    }
}
