//! Multi-threaded closed-loop driver for wall-clock throughput runs.
//!
//! `workers` threads claim transaction programs off a shared slice via a
//! single atomic cursor — no queue mutex, no per-claim allocation — and
//! drive them to commit, retrying blocked operations under bounded
//! exponential backoff and restarting aborted ones. A coordinator thread
//! ticks the scheduler's maintenance hook until every worker exits.
//! Semantics match the deterministic driver; only the interleaving
//! source differs.

use crate::driver::RunStats;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use txn_model::program::ReadCtx;
use txn_model::{
    CommitOutcome, DependencyGraph, ReadOutcome, Scheduler, Step, TxnProgram, WriteOutcome,
};

/// Concurrent driver configuration.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Worker threads.
    pub workers: usize,
    /// Restart budget per program.
    pub max_restarts: usize,
    /// Maintenance tick interval.
    pub maintenance_interval: Duration,
    /// Verify serializability afterwards.
    pub verify: bool,
    /// Record schedule events. Turning this off disables the scheduler's
    /// log for the run (pure-throughput mode) and implies no
    /// verification.
    pub capture_log: bool,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            workers: 4,
            max_restarts: 100,
            maintenance_interval: Duration::from_micros(50),
            verify: true,
            capture_log: true,
        }
    }
}

/// Bounded exponential backoff for Block outcomes: a few spin hints,
/// then sleeps doubling from 1 µs up to a 256 µs ceiling. Keeps blocked
/// workers off the contended state without unbounded busy-waiting (on
/// oversubscribed machines, plain `yield_now` thrashes the scheduler).
fn backoff(spins: u32) {
    if spins <= 3 {
        std::hint::spin_loop();
    } else {
        let exp = (spins - 4).min(8); // 1 µs << 8 = 256 µs ceiling
        std::thread::sleep(Duration::from_micros(1u64 << exp));
    }
}

/// Drop guard: the last worker to exit stops the maintenance ticker.
struct WorkerGuard<'a> {
    active: &'a AtomicUsize,
    done: &'a AtomicBool,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.store(true, Ordering::Release);
        }
    }
}

/// Result of a concurrent run: the shared [`RunStats`] plus wall time.
#[derive(Debug, Clone)]
pub struct ConcurrentStats {
    /// Common counters (steps counts operation attempts).
    pub stats: RunStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Committed transactions per second.
    pub throughput: f64,
}

/// Run `programs` across threads.
pub fn run_concurrent(
    scheduler: &dyn Scheduler,
    programs: Vec<TxnProgram>,
    cfg: &ConcurrentConfig,
) -> ConcurrentStats {
    if !cfg.capture_log {
        scheduler.log().set_enabled(false);
    }
    let programs = &programs[..];
    let cursor = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let restarts = AtomicUsize::new(0);
    let gave_up = AtomicUsize::new(0);
    let attempts = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let active_workers = AtomicUsize::new(cfg.workers);

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Maintenance ticker: runs until every worker has exited, so a
        // worker blocked on maintenance-driven state (time-wall release,
        // lock queues) always makes progress eventually.
        scope.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                scheduler.maintenance();
                std::thread::sleep(cfg.maintenance_interval);
            }
        });
        for _ in 0..cfg.workers {
            scope.spawn(|| {
                let _guard = WorkerGuard {
                    active: &active_workers,
                    done: &done,
                };
                loop {
                    // Claim the next program: one uncontended fetch_add.
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(idx) else {
                        break;
                    };
                    let mut tries = 0usize;
                    'retry: loop {
                        let handle = scheduler.begin(&program.profile);
                        let mut ctx = ReadCtx::default();
                        let mut pc = 0usize;
                        let mut spins = 0u32;
                        while pc < program.steps.len() {
                            attempts.fetch_add(1, Ordering::Relaxed);
                            let outcome_block = match &program.steps[pc] {
                                Step::Read(g) => match scheduler.read(&handle, *g) {
                                    ReadOutcome::Value(v) => {
                                        ctx.record(*g, v);
                                        pc += 1;
                                        spins = 0;
                                        false
                                    }
                                    ReadOutcome::Block => true,
                                    ReadOutcome::Abort => {
                                        scheduler.abort(&handle);
                                        tries += 1;
                                        if tries > cfg.max_restarts {
                                            gave_up.fetch_add(1, Ordering::Relaxed);
                                            break 'retry;
                                        }
                                        restarts.fetch_add(1, Ordering::Relaxed);
                                        continue 'retry;
                                    }
                                },
                                Step::Write(g, src) => {
                                    let v = src.resolve(&ctx);
                                    match scheduler.write(&handle, *g, v) {
                                        WriteOutcome::Done => {
                                            pc += 1;
                                            spins = 0;
                                            false
                                        }
                                        WriteOutcome::Block => true,
                                        WriteOutcome::Abort => {
                                            scheduler.abort(&handle);
                                            tries += 1;
                                            if tries > cfg.max_restarts {
                                                gave_up.fetch_add(1, Ordering::Relaxed);
                                                break 'retry;
                                            }
                                            restarts.fetch_add(1, Ordering::Relaxed);
                                            continue 'retry;
                                        }
                                    }
                                }
                            };
                            if outcome_block {
                                spins += 1;
                                backoff(spins);
                            }
                        }
                        // Commit loop.
                        let mut commit_spins = 0u32;
                        loop {
                            attempts.fetch_add(1, Ordering::Relaxed);
                            match scheduler.commit(&handle) {
                                CommitOutcome::Committed(_) => {
                                    committed.fetch_add(1, Ordering::Relaxed);
                                    break 'retry;
                                }
                                CommitOutcome::Block => {
                                    commit_spins += 1;
                                    backoff(commit_spins);
                                }
                                CommitOutcome::Aborted => {
                                    tries += 1;
                                    if tries > cfg.max_restarts {
                                        gave_up.fetch_add(1, Ordering::Relaxed);
                                        break 'retry;
                                    }
                                    restarts.fetch_add(1, Ordering::Relaxed);
                                    continue 'retry;
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    done.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();

    let committed = committed.load(Ordering::Relaxed);
    let mut stats = RunStats {
        committed,
        restarts: restarts.load(Ordering::Relaxed),
        gave_up: gave_up.load(Ordering::Relaxed),
        stalled: 0,
        steps: attempts.load(Ordering::Relaxed),
        metrics: scheduler.metrics().snapshot(),
        serializable: None,
        cycle: None,
    };
    if cfg.verify && cfg.capture_log {
        let dg = DependencyGraph::from_log(scheduler.log());
        stats.cycle = dg.find_cycle();
        stats.serializable = Some(stats.cycle.is_none());
    }
    ConcurrentStats {
        throughput: committed as f64 / elapsed.as_secs_f64().max(1e-9),
        stats,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_scheduler, SchedulerKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::banking::Banking;
    use workloads::inventory::{Inventory, InventoryConfig};
    use workloads::Workload;

    #[test]
    fn concurrent_hdd_banking_serializable() {
        let mut w = Banking::new(16);
        let mut rng = StdRng::seed_from_u64(9);
        let programs: Vec<_> = (0..200).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let out = run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
        assert_eq!(out.stats.gave_up, 0);
        assert_eq!(out.stats.committed, 200);
        assert_eq!(out.stats.serializable, Some(true), "{:?}", out.stats.cycle);
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn concurrent_inventory_under_2pl_and_hdd() {
        for kind in [SchedulerKind::TwoPl, SchedulerKind::Hdd] {
            let mut w = Inventory::new(InventoryConfig {
                items: 16,
                ..InventoryConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(21);
            let programs: Vec<_> = (0..150).map(|_| w.generate(&mut rng)).collect();
            let (sched, _store) = build_scheduler(kind, &w);
            let out = run_concurrent(sched.as_ref(), programs, &ConcurrentConfig::default());
            assert_eq!(
                out.stats.serializable,
                Some(true),
                "{} cycle: {:?}",
                kind.name(),
                out.stats.cycle
            );
            assert!(out.stats.committed > 0);
        }
    }

    #[test]
    fn capture_log_off_records_nothing_and_skips_verify() {
        let mut w = Banking::new(8);
        let mut rng = StdRng::seed_from_u64(5);
        let programs: Vec<_> = (0..50).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            capture_log: false,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        assert_eq!(out.stats.committed, 50);
        assert_eq!(out.stats.serializable, None);
        assert!(sched.log().is_empty());
    }
}
