//! Replay of deterministic anomaly scripts (Figures 3 and 4).
//!
//! The runner attempts the script's steps in order. Scheduler-dependent
//! outcomes are handled uniformly:
//!
//! * a step that returns `Block` is parked; the runner moves on to other
//!   transactions' steps and retries parked steps after every step (a
//!   transaction with a parked step does not advance past it);
//! * a step that returns `Abort` aborts its transaction; its remaining
//!   steps are skipped (the anomaly is then *prevented by rejection*);
//! * at the end, parked transactions that can no longer make progress
//!   are aborted.
//!
//! The outcome records which transactions committed and the
//! serializability verdict of the resulting schedule.

use txn_model::{
    CommitOutcome, DependencyGraph, ReadOutcome, Scheduler, TxnHandle, TxnId, Value, WriteOutcome,
};
use workloads::script::{Script, ScriptAction};

/// Per-transaction status after a script run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Committed.
    Committed,
    /// Aborted (by rejection or by the runner at the end).
    Aborted,
}

/// Result of replaying a script.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// Status per scripted transaction.
    pub statuses: Vec<TxnStatus>,
    /// Whether the final schedule is serializable (dependency graph
    /// acyclic).
    pub serializable: bool,
    /// A cycle, if any.
    pub cycle: Option<Vec<TxnId>>,
    /// Values observed by reads, in attempted-step order (diagnostics).
    pub observed: Vec<(usize, Value)>,
}

#[derive(Debug, Clone, PartialEq)]
enum TxnPhase {
    NotBegun,
    Running,
    Parked,
    Done(TxnStatus),
}

struct TxnRt {
    handle: Option<TxnHandle>,
    phase: TxnPhase,
    /// Last value read per granule (for WriteDerived).
    reads: std::collections::HashMap<txn_model::GranuleId, Value>,
    /// Steps of this transaction not yet executed (indices into
    /// `script.steps`).
    pending: std::collections::VecDeque<usize>,
}

/// Replay `script` against `scheduler`. The store must already be seeded
/// per `script.setup` (the factory workload seeding usually covers it).
pub fn run_script(scheduler: &dyn Scheduler, script: &Script) -> ScriptOutcome {
    let n = script.transactions.len();
    let mut txns: Vec<TxnRt> = (0..n)
        .map(|t| TxnRt {
            handle: None,
            phase: TxnPhase::NotBegun,
            reads: Default::default(),
            pending: script
                .steps
                .iter()
                .enumerate()
                .filter(|(_, s)| s.txn == t)
                .map(|(i, _)| i)
                .collect(),
        })
        .collect();
    let mut observed = Vec::new();

    // Global attempted order: walk the script; after each step, give
    // every parked transaction one retry.
    let order: Vec<usize> = (0..script.steps.len()).collect();
    for &step_idx in &order {
        let t = script.steps[step_idx].txn;
        // Skip steps of finished transactions.
        if matches!(txns[t].phase, TxnPhase::Done(_)) {
            continue;
        }
        // Only attempt this step if it is the transaction's next pending
        // step (earlier steps may be parked).
        if txns[t].pending.front() == Some(&step_idx) {
            attempt_front(scheduler, script, &mut txns[t], &mut observed);
        }
        // Retry parked transactions.
        for txn in &mut txns {
            if txn.phase == TxnPhase::Parked {
                attempt_front(scheduler, script, txn, &mut observed);
            }
        }
    }
    // Drain: keep retrying parked transactions while progress happens.
    loop {
        let mut progressed = false;
        for txn in &mut txns {
            if txn.phase == TxnPhase::Parked || (txn.phase == TxnPhase::Running) {
                let before = txn.pending.len();
                attempt_front(scheduler, script, txn, &mut observed);
                if txn.pending.len() < before || matches!(txn.phase, TxnPhase::Done(_)) {
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    // Whatever is still stuck gets aborted.
    for txn in &mut txns {
        if !matches!(txn.phase, TxnPhase::Done(_)) {
            if let Some(h) = &txn.handle {
                scheduler.abort(h);
            }
            txn.phase = TxnPhase::Done(TxnStatus::Aborted);
        }
    }

    let dg = DependencyGraph::from_log(scheduler.log());
    let cycle = dg.find_cycle();
    ScriptOutcome {
        statuses: txns
            .iter()
            .map(|t| match t.phase {
                TxnPhase::Done(s) => s,
                _ => unreachable!("all transactions finished above"),
            })
            .collect(),
        serializable: cycle.is_none(),
        cycle,
        observed,
    }
}

/// Attempt the transaction's next pending step. Advances phase/queue.
fn attempt_front(
    scheduler: &dyn Scheduler,
    script: &Script,
    txn: &mut TxnRt,
    observed: &mut Vec<(usize, Value)>,
) {
    let Some(&step_idx) = txn.pending.front() else {
        return;
    };
    let action = &script.steps[step_idx].action;

    match action {
        ScriptAction::Begin => {
            let profile = &script.transactions[script.steps[step_idx].txn];
            txn.handle = Some(scheduler.begin(profile));
            txn.phase = TxnPhase::Running;
            txn.pending.pop_front();
        }
        ScriptAction::Read(g) => {
            let Some(h) = txn.handle.clone() else { return };
            match scheduler.read(&h, *g) {
                ReadOutcome::Value(v) => {
                    txn.reads.insert(*g, (*v).clone());
                    observed.push((step_idx, (*v).clone()));
                    txn.phase = TxnPhase::Running;
                    txn.pending.pop_front();
                }
                ReadOutcome::Block => txn.phase = TxnPhase::Parked,
                ReadOutcome::Abort => {
                    scheduler.abort(&h);
                    txn.phase = TxnPhase::Done(TxnStatus::Aborted);
                    txn.pending.clear();
                }
            }
        }
        ScriptAction::Write(g, v) => {
            let Some(h) = txn.handle.clone() else { return };
            match scheduler.write(&h, *g, v.clone()) {
                WriteOutcome::Done => {
                    txn.phase = TxnPhase::Running;
                    txn.pending.pop_front();
                }
                WriteOutcome::Block => txn.phase = TxnPhase::Parked,
                WriteOutcome::Abort => {
                    scheduler.abort(&h);
                    txn.phase = TxnPhase::Done(TxnStatus::Aborted);
                    txn.pending.clear();
                }
            }
        }
        ScriptAction::WriteDerived {
            target,
            base,
            delta,
        } => {
            let Some(h) = txn.handle.clone() else { return };
            let base_val = txn.reads.get(base).map_or(0, Value::as_int);
            let v = Value::Int(base_val + delta);
            match scheduler.write(&h, *target, v) {
                WriteOutcome::Done => {
                    txn.phase = TxnPhase::Running;
                    txn.pending.pop_front();
                }
                WriteOutcome::Block => txn.phase = TxnPhase::Parked,
                WriteOutcome::Abort => {
                    scheduler.abort(&h);
                    txn.phase = TxnPhase::Done(TxnStatus::Aborted);
                    txn.pending.clear();
                }
            }
        }
        ScriptAction::Commit => {
            let Some(h) = txn.handle.clone() else { return };
            match scheduler.commit(&h) {
                CommitOutcome::Committed(_) => {
                    txn.phase = TxnPhase::Done(TxnStatus::Committed);
                    txn.pending.clear();
                }
                CommitOutcome::Block => txn.phase = TxnPhase::Parked,
                CommitOutcome::Aborted => {
                    txn.phase = TxnPhase::Done(TxnStatus::Aborted);
                    txn.pending.clear();
                }
            }
        }
        ScriptAction::Abort => {
            let Some(h) = txn.handle.clone() else { return };
            scheduler.abort(&h);
            txn.phase = TxnPhase::Done(TxnStatus::Aborted);
            txn.pending.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{build_scheduler, SchedulerKind};
    use workloads::anomalies::{figure3_script, figure4_script, AnomalyWorkload};

    #[test]
    fn figure3_broken_2pl_violates_serializability() {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::TwoPlNoCrossReadLocks, &w);
        let out = run_script(sched.as_ref(), &figure3_script());
        assert!(
            !out.serializable,
            "Figure 3 cycle must appear under 2PL without cross read locks"
        );
        assert_eq!(out.statuses, vec![TxnStatus::Committed; 3]);
        assert_eq!(out.cycle.as_ref().map(std::vec::Vec::len), Some(3));
    }

    #[test]
    fn figure3_correct_2pl_is_serializable() {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::TwoPl, &w);
        let out = run_script(sched.as_ref(), &figure3_script());
        assert!(out.serializable);
    }

    #[test]
    fn figure3_hdd_is_serializable_with_zero_registrations() {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let out = run_script(sched.as_ref(), &figure3_script());
        assert!(out.serializable);
        assert_eq!(out.statuses, vec![TxnStatus::Committed; 3]);
        let m = sched.metrics().snapshot();
        // t3 and t2 read only cross-class granules; t3 also reads its
        // own segment? It reads y (D0) and inv (D1), both cross-class;
        // t2 reads y (D0) cross-class. Only Protocol B reads would
        // register and there are none in this script.
        assert_eq!(m.read_registrations, 0);
        assert!(m.cross_class_reads >= 3);
    }

    #[test]
    fn figure4_broken_tso_violates_serializability() {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::TsoNoCrossReadTs, &w);
        let out = run_script(sched.as_ref(), &figure4_script());
        assert!(
            !out.serializable,
            "Figure 4 cycle must appear under TSO without cross read timestamps"
        );
        assert_eq!(out.statuses, vec![TxnStatus::Committed; 3]);
    }

    #[test]
    fn figure4_correct_tso_prevents_by_rejection() {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::Tso, &w);
        let out = run_script(sched.as_ref(), &figure4_script());
        assert!(out.serializable);
        // t3 (the oldest) is rejected when it tries to read the
        // inventory version written by the younger t2.
        assert_eq!(out.statuses[0], TxnStatus::Aborted);
        assert!(sched.metrics().snapshot().rejections >= 1);
    }

    #[test]
    fn figure4_hdd_serializable_without_rejection() {
        let w = AnomalyWorkload;
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let out = run_script(sched.as_ref(), &figure4_script());
        assert!(out.serializable);
        assert_eq!(out.statuses, vec![TxnStatus::Committed; 3]);
        let m = sched.metrics().snapshot();
        assert_eq!(m.rejections, 0);
        assert_eq!(m.blocks, 0, "Protocol A reads never wait");
    }
}
