//! Oversubscribed concurrent-driver stress legs: 16 and 32 workers over
//! the inventory workload, serializability verified after every leg.
//!
//! These legs deliberately oversubscribe typical hosts (the point is
//! that HDD degrades gracefully under contention, not that it scales),
//! so each is gated on [`sim::concurrent::capped_workers`]: on machines
//! with too little parallelism for the leg to mean anything, it is
//! skipped with a note instead of thrashing for minutes.

use sim::concurrent::{capped_workers, run_concurrent, ConcurrentConfig};
use sim::experiments::e02_inventory::batch;
use sim::{build_scheduler, SchedulerKind};

fn stress_leg(requested: usize) {
    let Some(workers) = capped_workers(requested) else {
        eprintln!("skipping {requested}-worker stress leg: not enough parallelism on this host");
        return;
    };
    let n_txns = 2_000;
    let (w, programs) = batch(n_txns, 0x57E5_5000 + requested as u64);
    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
    let cfg = ConcurrentConfig {
        workers,
        verify: true,
        ..ConcurrentConfig::default()
    };
    let out = run_concurrent(sched.as_ref(), programs, &cfg);
    assert_eq!(
        out.stats.serializable,
        Some(true),
        "{workers}-worker run must stay serializable"
    );
    // Every offered program terminates exactly one way.
    assert_eq!(
        out.stats.committed + out.stats.gave_up + out.stats.deadline_exceeded,
        n_txns,
        "program accounting must balance at {workers} workers"
    );
    assert!(
        out.stats.committed > 0,
        "an oversubscribed run must still commit work"
    );
}

/// Always-on leg: 4 workers pass the gate on any host, so the
/// accounting and serializability assertions run everywhere.
#[test]
fn hdd_serializable_at_4_workers() {
    stress_leg(4);
}

#[test]
fn hdd_serializable_at_16_workers() {
    stress_leg(16);
}

#[test]
fn hdd_serializable_at_32_workers() {
    stress_leg(32);
}
