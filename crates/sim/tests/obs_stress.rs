//! Oversubscribed stress legs for the observability structures: 16 and
//! 32 threads hammering the flight recorder, trace ring, gauge board and
//! latency recorder at once, with the accounting invariants the mc
//! models verify exhaustively at small scale re-checked here at volume.
//!
//! Gated on [`sim::concurrent::capped_workers`] exactly like the
//! concurrent-driver stress legs: hosts without the parallelism to make
//! an oversubscribed leg meaningful skip it with a note.

use obs::{
    FaultCode, FlightRecorder, GaugeBoard, LatencyRecorder, SpanEvent, Terminal, TraceEvent,
    TraceRing,
};
use sim::concurrent::capped_workers;

const EVENTS_PER_THREAD: u64 = 5_000;

fn stress_leg(requested: usize) {
    let Some(threads) = capped_workers(requested) else {
        eprintln!("skipping {requested}-thread obs stress leg: not enough parallelism");
        return;
    };
    // Small per-stripe capacity so eviction paths run constantly.
    let flight = FlightRecorder::with_capacity(64);
    let ring = TraceRing::with_capacity(64);
    let gauges = GaugeBoard::new();
    let lat = LatencyRecorder::new();

    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let (flight, ring, gauges, lat) = (&flight, &ring, &gauges, &lat);
            scope.spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    let txn = t * EVENTS_PER_THREAD + i;
                    flight.push(SpanEvent::End {
                        txn,
                        at_ns: flight.now_ns(),
                        terminal: Terminal::Committed,
                    });
                    ring.push(TraceEvent::CrashPoint {
                        txn,
                        op_index: i,
                        fault: FaultCode::Stall,
                    });
                    gauges.set_driver_progress(txn, EVENTS_PER_THREAD * threads as u64);
                    lat.record(i % 1024);
                }
            });
        }
    });

    let total = EVENTS_PER_THREAD * threads as u64;

    // Ring accounting balances: every pushed event was either retained
    // or counted as dropped, and retained tickets are unique.
    let spans = flight.drain();
    assert_eq!(flight.recorded(), total);
    assert_eq!(
        flight.recorded() - flight.dropped(),
        spans.len() as u64,
        "flight accounting must balance at {threads} threads"
    );
    let mut tickets: Vec<u64> = spans.iter().map(|(t, _)| *t).collect();
    tickets.sort_unstable();
    tickets.dedup();
    assert_eq!(tickets.len(), spans.len(), "flight tickets must be unique");

    let traces = ring.drain();
    assert_eq!(ring.recorded(), total);
    assert_eq!(
        ring.recorded() - ring.dropped(),
        traces.len() as u64,
        "trace accounting must balance at {threads} threads"
    );

    // The latency recorder loses nothing (per-thread stripes).
    assert_eq!(lat.count(), total);
    assert_eq!(lat.snapshot().count, total);

    // Gauge cells never tear: claimed is some thread's last write, and
    // offered is the constant every thread wrote.
    let snap = gauges.snapshot();
    assert!(snap.driver_claimed < total);
    assert_eq!(snap.driver_offered, total);
}

/// Always-on leg: 4 threads pass the gate on any host, so the
/// accounting assertions run everywhere.
#[test]
fn obs_structures_balance_at_4_threads() {
    stress_leg(4);
}

#[test]
fn obs_structures_balance_at_16_threads() {
    stress_leg(16);
}

#[test]
fn obs_structures_balance_at_32_threads() {
    stress_leg(32);
}
