//! Hunt for the intermittent 8-worker HDD serializability failure.
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::Workload;

fn main() {
    for round in 0..200 {
        let mut w = Inventory::new(InventoryConfig {
            items: 64,
            ..InventoryConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(0x00F1_6011 + round);
        let programs: Vec<_> = (0..20_000).map(|_| w.generate(&mut rng)).collect();
        let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
        let cfg = ConcurrentConfig {
            workers: 8,
            ..ConcurrentConfig::default()
        };
        let out = run_concurrent(sched.as_ref(), programs, &cfg);
        if out.stats.serializable == Some(false) {
            println!("round {round}: CYCLE {:?}", out.stats.cycle);
            let cyc = out.stats.cycle.clone().unwrap();
            let evs = sched.log().events();
            for ev in &evs {
                if cyc.contains(&ev.txn()) {
                    println!("{ev:?}");
                }
            }
            return;
        }
        if round % 10 == 0 {
            println!("round {round}: ok");
        }
    }
    println!("no failure in 200 rounds");
}
