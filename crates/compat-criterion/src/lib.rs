//! Offline minimal stand-in for the subset of the `criterion` 0.5 API
//! this workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io access, so external
//! dependencies are replaced by in-workspace shims. This shim is a
//! real (if unsophisticated) harness: it warms up, auto-scales the
//! per-sample iteration count to the configured measurement time,
//! collects `sample_size` samples, and prints mean / median / min
//! ns-per-iteration to stdout. No HTML reports, no statistics beyond
//! that.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine call regardless; the variant only exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

/// Measurement state handed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Mean ns per iteration over all samples, filled by `iter*`.
    samples_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Time `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + estimate a single-iteration cost.
        let warm_deadline = Instant::now() + self.config.warm_up;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        let per_sample =
            self.config.measurement.as_nanos() as f64 / self.config.sample_size.max(1) as f64;
        let iters = ((per_sample / est_ns) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.config.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.config.warm_up;
        let mut warm_iters: u64 = 0;
        let mut warm_ns: u128 = 0;
        while Instant::now() < warm_deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_ns += start.elapsed().as_nanos();
            warm_iters += 1;
        }
        let est_ns = (warm_ns as f64 / warm_iters.max(1) as f64).max(1.0);

        let per_sample =
            self.config.measurement.as_nanos() as f64 / self.config.sample_size.max(1) as f64;
        let iters = ((per_sample / est_ns) as u64).clamp(1, 1 << 20);

        self.samples_ns.clear();
        for _ in 0..self.config.sample_size.max(1) {
            let mut elapsed: u128 = 0;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed().as_nanos();
            }
            self.samples_ns.push(elapsed as f64 / iters as f64);
        }
    }
}

fn report(group: Option<&str>, id: &str, samples: &[f64]) {
    if samples.is_empty() {
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!("bench {name:<48} mean {mean:>12.1} ns/iter  median {median:>12.1}  min {min:>12.1}");
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Set the total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Set the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Run one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher {
            config: &self.config,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        report(None, id, &b.samples_ns);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Override the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        report(Some(&self.name), &id.label, &b.samples_ns);
        self
    }

    /// Finish the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Define a benchmark group function, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn bench_function_runs() {
        quick().bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    #[test]
    fn group_runs_with_ids() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function(BenchmarkId::from_parameter(8), |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
        g.bench_function(BenchmarkId::new("f", 4), |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
