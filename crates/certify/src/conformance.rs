//! Seeded random-script generation for the conformance harness.
//!
//! Generates deterministic, hierarchy-*legal* transaction scripts: every
//! update transaction writes only its class root and reads only ancestor
//! segments, so the HDD scheduler accepts every generated profile and
//! the certifier's partition-synchronization check applies. The same
//! scripts replayed against the baselines (and the deliberately broken
//! variants) make the sweep an apples-to-apples conformance matrix.
//!
//! Randomness is a self-contained SplitMix64 — the certify crate takes
//! no dependency on the rand shim, and a `(seed, index)` pair fully
//! determines a script.

use hdd::analysis::Hierarchy;
use txn_model::{ClassId, GranuleId, SegmentId, TxnProfile, Value};
use workloads::script::{Script, ScriptAction, ScriptStep};

/// SplitMix64: tiny, seedable, and good enough for workload shuffling.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Shape of the generated conformance scripts.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Master seed; script `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// Number of scripts to generate.
    pub scripts: usize,
    /// Transactions per script.
    pub txns: usize,
    /// Read/write operations per transaction (between Begin and Commit).
    pub ops: usize,
    /// Distinct keys per segment.
    pub keys_per_segment: u64,
    /// Percentage (0–100) of read-only transactions.
    pub read_only_pct: u64,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            seed: 0xce47,
            scripts: 8,
            txns: 4,
            ops: 4,
            keys_per_segment: 3,
            read_only_pct: 25,
        }
    }
}

/// Ancestor segments of `class` under `h` (its own segments plus every
/// segment owned by a strictly higher class) — the legal read set.
fn ancestor_segments(h: &Hierarchy, class: ClassId) -> Vec<SegmentId> {
    (0..h.segment_count())
        .map(|s| SegmentId(s as u32))
        .filter(|&s| {
            let c = h.class_of(s);
            c == class || h.higher_than(c, class)
        })
        .collect()
}

/// Generate one legal script from the per-script RNG stream.
fn generate_script(h: &Hierarchy, cfg: &ConformanceConfig, rng: &mut SplitMix64) -> Script {
    let n_classes = h.class_count() as u64;
    let mut transactions = Vec::with_capacity(cfg.txns);
    let mut per_txn_actions: Vec<Vec<ScriptAction>> = Vec::with_capacity(cfg.txns);

    for _ in 0..cfg.txns {
        let read_only = rng.gen_range(100) < cfg.read_only_pct;
        let (profile, readable, writable) = if read_only {
            let all: Vec<SegmentId> = (0..h.segment_count())
                .map(|s| SegmentId(s as u32))
                .collect();
            let reads: Vec<SegmentId> = all
                .iter()
                .copied()
                .filter(|_| rng.gen_range(2) == 0)
                .collect();
            let reads = if reads.is_empty() { all } else { reads };
            (TxnProfile::read_only(reads.clone()), reads, Vec::new())
        } else {
            let class = ClassId(rng.gen_range(n_classes) as u32);
            let readable = ancestor_segments(h, class);
            let writable = h.segments_of(class);
            (
                TxnProfile::update(class, readable.clone()),
                readable,
                writable,
            )
        };
        let mut actions = vec![ScriptAction::Begin];
        for _ in 0..cfg.ops {
            let write = !writable.is_empty() && rng.gen_range(100) < 40;
            if write {
                let seg = writable[rng.gen_range(writable.len() as u64) as usize];
                let key = rng.gen_range(cfg.keys_per_segment);
                let g = GranuleId::new(seg, key);
                actions.push(ScriptAction::Write(
                    g,
                    Value::Int(rng.gen_range(1000) as i64),
                ));
            } else {
                let seg = readable[rng.gen_range(readable.len() as u64) as usize];
                let key = rng.gen_range(cfg.keys_per_segment);
                actions.push(ScriptAction::Read(GranuleId::new(seg, key)));
            }
        }
        actions.push(ScriptAction::Commit);
        transactions.push(profile);
        per_txn_actions.push(actions);
    }

    // Random interleaving preserving each transaction's internal order.
    let mut cursors = vec![0usize; cfg.txns];
    let mut steps: Vec<ScriptStep> = Vec::new();
    loop {
        let live: Vec<usize> = (0..cfg.txns)
            .filter(|&t| cursors[t] < per_txn_actions[t].len())
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.gen_range(live.len() as u64) as usize];
        steps.push(Script::step(t, per_txn_actions[t][cursors[t]].clone()));
        cursors[t] += 1;
    }

    let mut setup = Vec::new();
    for seg in 0..h.segment_count() {
        for key in 0..cfg.keys_per_segment {
            setup.push((GranuleId::new(SegmentId(seg as u32), key), Value::Int(0)));
        }
    }

    Script {
        name: "conformance",
        transactions,
        steps,
        setup,
    }
}

/// Generate `cfg.scripts` deterministic scripts legal under `h`.
pub fn generate_scripts(h: &Hierarchy, cfg: &ConformanceConfig) -> Vec<Script> {
    (0..cfg.scripts)
        .map(|i| {
            let mut rng = SplitMix64::new(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
            generate_script(h, cfg, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd::analysis::AccessSpec;

    fn chain_hierarchy() -> Hierarchy {
        let s = SegmentId;
        Hierarchy::build(
            3,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c2", vec![s(2)], vec![s(0), s(1), s(2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let h = chain_hierarchy();
        let cfg = ConformanceConfig::default();
        let a = generate_scripts(&h, &cfg);
        let b = generate_scripts(&h, &cfg);
        assert_eq!(a.len(), cfg.scripts);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.steps.len(), y.steps.len());
            for (sx, sy) in x.steps.iter().zip(&y.steps) {
                assert_eq!(sx.txn, sy.txn);
                assert_eq!(format!("{:?}", sx.action), format!("{:?}", sy.action));
            }
        }
    }

    #[test]
    fn every_generated_profile_is_legal() {
        let h = chain_hierarchy();
        let cfg = ConformanceConfig {
            scripts: 16,
            ..ConformanceConfig::default()
        };
        for script in generate_scripts(&h, &cfg) {
            for p in &script.transactions {
                assert!(
                    h.validate_profile(p).is_ok(),
                    "generated profile must be hierarchy-legal: {p:?}"
                );
            }
            // Steps preserve per-transaction order: Begin first, Commit
            // last.
            for t in 0..script.transactions.len() {
                let acts: Vec<&ScriptAction> = script
                    .steps
                    .iter()
                    .filter(|s| s.txn == t)
                    .map(|s| &s.action)
                    .collect();
                assert!(matches!(acts.first(), Some(ScriptAction::Begin)));
                assert!(matches!(acts.last(), Some(ScriptAction::Commit)));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let h = chain_hierarchy();
        let a = generate_scripts(&h, &ConformanceConfig::default());
        let b = generate_scripts(
            &h,
            &ConformanceConfig {
                seed: 12345,
                ..ConformanceConfig::default()
            },
        );
        let fmt = |s: &Script| format!("{:?}", s.steps.iter().map(|x| x.txn).collect::<Vec<_>>());
        assert_ne!(fmt(&a[0]), fmt(&b[0]));
    }
}
