//! The online decomposition advisor.
//!
//! The linter ([`crate::lint`]) answers the *a-priori* question: is the
//! declared workload TST-hierarchical? This module answers the *live*
//! one: does the hierarchy the scheduler is actually running still fit
//! the workload it is actually seeing? It folds the drift sketch's
//! observed co-access edges ([`obs::DriftSnapshot::edges`]) into an
//! *observed* data hierarchy graph, runs it through the same
//! [`hdd::decompose::repartition_to_tst`] repair machinery the linter
//! uses, and compares the resulting partition against the hierarchy's
//! current segment grouping — producing named merge/split suggestions,
//! a pair-agreement quality score, and provenance naming the drifted
//! cells that motivated the advice.
//!
//! The advisor is **pure observation**: it never mutates the hierarchy
//! (Section 7.1.1's dynamic restructuring stays a human decision); it
//! only says what the restructuring *would be*.

use crate::diag::json_escape;
use hdd::analysis::Hierarchy;
use hdd::decompose::repartition_to_tst;
use hdd::graph::Digraph;
use obs::DriftSnapshot;
use txn_model::SegmentId;

/// Default noise floor: an observed edge must carry at least this many
/// cumulative samples before the advisor believes it is a real workload
/// arc and not a one-off (e.g. a single exploratory ad-hoc query).
pub const DEFAULT_MIN_EDGE: u64 = 4;

/// One piece of restructuring advice over a segment pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// The observed workload co-groups these segments but the current
    /// hierarchy splits them: running them in separate classes forces
    /// the cross-writes through a DHG arc the TST repair would erase.
    Merge {
        /// Lower-numbered segment.
        a: u32,
        /// Higher-numbered segment.
        b: u32,
    },
    /// The current hierarchy co-groups these segments but the observed
    /// workload never couples them: the grouping serializes update
    /// classes that could run concurrently.
    Split {
        /// Lower-numbered segment.
        a: u32,
        /// Higher-numbered segment.
        b: u32,
    },
}

/// What the advisor concluded from one drift snapshot.
#[derive(Debug, Clone)]
pub struct AdvisorReport {
    /// What was advised on ("hierarchy banking", ...).
    pub target: String,
    /// Segments in both the hierarchy and the sketch.
    pub n_segments: usize,
    /// Observed-DHG arcs folded in (off-diagonal, count ≥ `min_edge`).
    pub observed_arcs: usize,
    /// Off-diagonal edges dropped below the `min_edge` noise floor.
    pub dropped_arcs: usize,
    /// Noise floor in force.
    pub min_edge: u64,
    /// Canonical class label per segment under the *current* hierarchy
    /// (labels renumbered by first occurrence, so two partitions are
    /// equal iff these vectors are equal).
    pub current_labels: Vec<usize>,
    /// Canonical class label per segment under the *advised* partition
    /// (the TST repair of the observed DHG).
    pub advised_labels: Vec<usize>,
    /// Classes the advised partition yields.
    pub advised_n_classes: usize,
    /// Pair-agreement (Rand index) between the two partitions, in
    /// milli-units: 1000 means the running hierarchy is exactly the
    /// best-known TST for the observed workload.
    pub quality_milli: u64,
    /// Merge/split advice, one entry per disagreeing segment pair.
    pub suggestions: Vec<Advice>,
    /// Human-readable evidence lines: the most-drifted sketch cells and
    /// edges (interval share vs EWMA baseline), plus trip state.
    pub provenance: Vec<String>,
    /// Segment display names, index-aligned (`D{i}` fallback).
    pub segment_names: Vec<String>,
    /// Combined drift score at the snapshot, milli-units.
    pub drift_score_milli: u64,
    /// Trip threshold in force, milli-units.
    pub threshold_milli: u64,
    /// Was the drift board tripped at the snapshot?
    pub tripped: bool,
    /// Folds the sketch had performed.
    pub folds: u64,
}

/// Renumber arbitrary partition labels by first occurrence so that two
/// partitions describe the same grouping iff their canonical vectors
/// are equal (label 0 is whatever class segment 0 is in, and so on).
pub fn canonical_labels(labels: &[usize]) -> Vec<usize> {
    let mut remap: Vec<Option<usize>> =
        vec![None; labels.len().max(labels.iter().max().map_or(0, |m| m + 1))];
    let mut next = 0usize;
    labels
        .iter()
        .map(|&l| {
            *remap[l].get_or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect()
}

/// Build the observed DHG from a drift snapshot: one arc per
/// off-diagonal co-access edge with at least `min_edge` cumulative
/// samples (the diagonal carries write-only mass and is not an arc).
pub fn observed_dhg(drift: &DriftSnapshot, min_edge: u64) -> Digraph {
    let n = drift.n_segments as usize;
    let mut g = Digraph::new(n);
    for e in &drift.edges {
        if e.from != e.to && e.count >= min_edge {
            g.add_arc(e.from as usize, e.to as usize);
        }
    }
    g
}

fn seg_name(names: &[String], i: usize) -> String {
    names.get(i).cloned().unwrap_or_else(|| format!("D{i}"))
}

/// Top-`k` provenance lines: the sketch rows whose interval share moved
/// furthest from their EWMA baseline, largest deviation first.
fn drift_provenance(drift: &DriftSnapshot, names: &[String], k: usize) -> Vec<String> {
    let mut scored: Vec<(u64, String)> = Vec::new();
    for c in &drift.cells {
        let dev = c.share_milli.abs_diff(c.baseline_milli);
        if dev > 0 {
            scored.push((
                dev,
                format!(
                    "cross-reads {} ← {}: share {}‰ vs baseline {}‰ ({} reads)",
                    DriftSnapshot::reader_label(c.reader),
                    seg_name(names, c.segment as usize),
                    c.share_milli,
                    c.baseline_milli,
                    c.count,
                ),
            ));
        }
    }
    for e in &drift.edges {
        let dev = e.share_milli.abs_diff(e.baseline_milli);
        if dev > 0 {
            scored.push((
                dev,
                format!(
                    "co-access {} → {}: share {}‰ vs baseline {}‰ ({} txns)",
                    seg_name(names, e.from as usize),
                    seg_name(names, e.to as usize),
                    e.share_milli,
                    e.baseline_milli,
                    e.count,
                ),
            ));
        }
    }
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, s)| s).collect()
}

/// Fold one drift snapshot against the running hierarchy and say what
/// the best-known TST repartition of the *observed* workload would be.
///
/// `min_edge` is the noise floor ([`DEFAULT_MIN_EDGE`]): observed edges
/// with fewer cumulative samples are treated as noise and dropped (the
/// report counts them in [`AdvisorReport::dropped_arcs`]).
pub fn advise(hierarchy: &Hierarchy, drift: &DriftSnapshot, min_edge: u64) -> AdvisorReport {
    let n = hierarchy.segment_count();
    let segment_names: Vec<String> = (0..n)
        .map(|s| hierarchy.segment_name(SegmentId(s as u32)).to_string())
        .collect();

    let sketch_ok = drift.configured && drift.n_segments as usize == n && n > 0;
    let mut provenance = Vec::new();
    if !sketch_ok {
        provenance.push(format!(
            "sketch unusable: configured={}, sketch segments={}, hierarchy segments={}",
            drift.configured, drift.n_segments, n,
        ));
    }

    let (mut observed, mut dropped) = (0usize, 0usize);
    let dhg = if sketch_ok {
        let g = observed_dhg(drift, min_edge);
        observed = g.arc_count();
        dropped = drift
            .edges
            .iter()
            .filter(|e| e.from != e.to && e.count < min_edge)
            .count();
        g
    } else {
        Digraph::new(n)
    };

    let plan = repartition_to_tst(&dhg);
    let advised_labels =
        canonical_labels(&plan.group_of.iter().map(|c| c.index()).collect::<Vec<_>>());
    let current_labels = canonical_labels(
        &(0..n)
            .map(|s| hierarchy.class_of(SegmentId(s as u32)).index())
            .collect::<Vec<_>>(),
    );

    // Pair-agreement (Rand index): over every unordered segment pair,
    // do the two partitions agree on together-vs-apart?
    let mut agree = 0u64;
    let mut total = 0u64;
    let mut suggestions = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            total += 1;
            let together_now = current_labels[a] == current_labels[b];
            let together_advised = advised_labels[a] == advised_labels[b];
            if together_now == together_advised {
                agree += 1;
            } else if together_advised {
                suggestions.push(Advice::Merge {
                    a: a as u32,
                    b: b as u32,
                });
            } else {
                suggestions.push(Advice::Split {
                    a: a as u32,
                    b: b as u32,
                });
            }
        }
    }
    let quality_milli = (agree * 1000).checked_div(total).unwrap_or(1000);

    if sketch_ok {
        provenance.extend(drift_provenance(drift, &segment_names, 3));
        if drift.tripped {
            provenance.push(format!(
                "drift board tripped: score {}‰ ≥ threshold {}‰ after fold {}",
                drift.score_milli, drift.threshold_milli, drift.folds,
            ));
        }
    }

    AdvisorReport {
        target: String::new(),
        n_segments: n,
        observed_arcs: observed,
        dropped_arcs: dropped,
        min_edge,
        current_labels,
        advised_labels,
        advised_n_classes: plan.n_classes,
        quality_milli,
        suggestions,
        provenance,
        segment_names,
        drift_score_milli: drift.score_milli,
        threshold_milli: drift.threshold_milli,
        tripped: drift.tripped,
        folds: drift.folds,
    }
}

impl AdvisorReport {
    /// Does the running hierarchy equal the advised TST repartition?
    pub fn hierarchy_is_optimal(&self) -> bool {
        self.suggestions.is_empty()
    }

    /// Render one advice entry in the linter's merge-help vocabulary.
    pub fn advice_text(&self, advice: &Advice) -> String {
        match *advice {
            Advice::Merge { a, b } => format!(
                "merge segments {}+{} (observed workload co-writes them; \
                 separate classes leave a DHG arc the TST repair erases)",
                seg_name(&self.segment_names, a as usize),
                seg_name(&self.segment_names, b as usize),
            ),
            Advice::Split { a, b } => format!(
                "split segments {} / {} (grouped in one class, but the \
                 observed workload never couples them)",
                seg_name(&self.segment_names, a as usize),
                seg_name(&self.segment_names, b as usize),
            ),
        }
    }

    /// Human-readable multi-line rendering (the `hdd-advisor` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "advising {} ... quality {}/1000, {} observed arc(s) ({} below noise floor {}), advised {} class(es)\n",
            if self.target.is_empty() { "hierarchy" } else { &self.target },
            self.quality_milli,
            self.observed_arcs,
            self.dropped_arcs,
            self.min_edge,
            self.advised_n_classes,
        );
        out.push_str(&format!(
            "  drift: score {}‰ / threshold {}‰, tripped={}, folds={}\n",
            self.drift_score_milli, self.threshold_milli, self.tripped, self.folds,
        ));
        if self.hierarchy_is_optimal() {
            out.push_str("  hierarchy matches the best-known TST for the observed workload\n");
        } else {
            for s in &self.suggestions {
                out.push_str(&format!("  suggest: {}\n", self.advice_text(s)));
            }
        }
        for p in &self.provenance {
            out.push_str(&format!("  evidence: {p}\n"));
        }
        out
    }

    /// Hand-rolled JSON object (no serde in the offline build).
    pub fn to_json(&self) -> String {
        let labels = |v: &[usize]| {
            v.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        let suggestions: Vec<String> = self
            .suggestions
            .iter()
            .map(|s| {
                let (kind, a, b) = match *s {
                    Advice::Merge { a, b } => ("merge", a, b),
                    Advice::Split { a, b } => ("split", a, b),
                };
                format!(
                    "{{\"kind\": \"{kind}\", \"a\": {a}, \"b\": {b}, \"text\": \"{}\"}}",
                    json_escape(&self.advice_text(s)),
                )
            })
            .collect();
        let provenance: Vec<String> = self
            .provenance
            .iter()
            .map(|p| format!("\"{}\"", json_escape(p)))
            .collect();
        format!(
            "{{\"target\": \"{}\", \"n_segments\": {}, \"observed_arcs\": {}, \
             \"dropped_arcs\": {}, \"min_edge\": {}, \"quality_milli\": {}, \
             \"advised_n_classes\": {}, \"optimal\": {}, \
             \"current_labels\": [{}], \"advised_labels\": [{}], \
             \"drift_score_milli\": {}, \"threshold_milli\": {}, \"tripped\": {}, \
             \"folds\": {}, \"suggestions\": [{}], \"provenance\": [{}]}}",
            json_escape(&self.target),
            self.n_segments,
            self.observed_arcs,
            self.dropped_arcs,
            self.min_edge,
            self.quality_milli,
            self.advised_n_classes,
            self.hierarchy_is_optimal(),
            labels(&self.current_labels),
            labels(&self.advised_labels),
            self.drift_score_milli,
            self.threshold_milli,
            self.tripped,
            self.folds,
            suggestions.join(", "),
            provenance.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd::analysis::AccessSpec;
    use obs::DriftBoard;
    use txn_model::ClassId;

    fn s(i: u32) -> SegmentId {
        SegmentId(i)
    }

    /// Identity 3-chain hierarchy: t1 writes D0; t2 writes D1 reads D0;
    /// t3 writes D2 reads D0,D1.
    fn chain_hierarchy() -> Hierarchy {
        let specs = vec![
            AccessSpec::new("t1", vec![s(0)], vec![]),
            AccessSpec::new("t2", vec![s(1)], vec![s(0)]),
            AccessSpec::new("t3", vec![s(2)], vec![s(0), s(1)]),
        ];
        Hierarchy::build(3, &specs).unwrap()
    }

    /// Drift board pre-fed with the given edges `count` times each.
    fn board(n_classes: u32, n_segments: u32, edges: &[(u32, u32)], count: u64) -> DriftBoard {
        let b = DriftBoard::new();
        b.configure(n_classes, n_segments);
        b.set_enabled(true);
        for _ in 0..count {
            for &(f, t) in edges {
                b.record_edge(f, t);
            }
        }
        b
    }

    #[test]
    fn canonical_labels_renumber_by_first_occurrence() {
        assert_eq!(canonical_labels(&[2, 2, 0, 1]), vec![0, 0, 1, 2]);
        assert_eq!(canonical_labels(&[0, 1, 2]), vec![0, 1, 2]);
        assert_eq!(canonical_labels(&[]), Vec::<usize>::new());
    }

    #[test]
    fn matching_workload_reports_optimal_with_no_suggestions() {
        let h = chain_hierarchy();
        // Observed workload matches the declared chain: acyclic DHG,
        // identity repartition.
        let b = board(3, 3, &[(0, 0), (1, 1), (1, 0), (2, 2), (2, 0), (2, 1)], 8);
        let r = advise(&h, &b.snapshot(), DEFAULT_MIN_EDGE);
        assert!(r.hierarchy_is_optimal(), "{}", r.render());
        assert_eq!(r.quality_milli, 1000);
        assert_eq!(r.current_labels, r.advised_labels);
        assert_eq!(r.advised_n_classes, 3);
        assert_eq!(r.observed_arcs, 3, "diagonal edges are not arcs");
        let json = r.to_json();
        assert!(json.contains("\"optimal\": true"), "{json}");
        assert!(json.contains("\"quality_milli\": 1000"), "{json}");
    }

    #[test]
    fn observed_cycle_yields_merge_advice_matching_offline_repartition() {
        let h = chain_hierarchy();
        // The live mix grew a back-arc D0 → D1 (writers of D0 now also
        // read D1), closing a 2-cycle with the declared D1 → D0.
        let b = board(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 0), (2, 2), (2, 0)], 8);
        let snap = b.snapshot();
        let r = advise(&h, &snap, DEFAULT_MIN_EDGE);
        assert!(!r.hierarchy_is_optimal());
        assert_eq!(r.suggestions, vec![Advice::Merge { a: 0, b: 1 }]);
        assert!(r
            .advice_text(&r.suggestions[0])
            .contains("merge segments D0+D1"));
        assert_eq!(r.advised_n_classes, 2);
        // Pairs: (0,1) disagrees; (0,2) and (1,2) agree → 2/3.
        assert_eq!(r.quality_milli, 666);
        // The advice must equal the offline repair of the same DHG.
        let offline = repartition_to_tst(&observed_dhg(&snap, DEFAULT_MIN_EDGE));
        let offline_labels = canonical_labels(
            &offline
                .group_of
                .iter()
                .map(|c| c.index())
                .collect::<Vec<_>>(),
        );
        assert_eq!(r.advised_labels, offline_labels);
        assert!(r.to_json().contains("\"kind\": \"merge\""));
    }

    #[test]
    fn stale_grouping_yields_split_advice() {
        // Hierarchy groups D0+D1 into one class, but the observed
        // workload never couples them: advise a split.
        let specs = vec![
            AccessSpec::new("ab", vec![s(0)], vec![s(1)]),
            AccessSpec::new("c", vec![s(2)], vec![s(0)]),
        ];
        let h = Hierarchy::build_grouped(3, &specs, vec![ClassId(0), ClassId(0), ClassId(1)], 2)
            .unwrap();
        let b = board(2, 3, &[(0, 0), (1, 1), (2, 2), (2, 0)], 8);
        let r = advise(&h, &b.snapshot(), DEFAULT_MIN_EDGE);
        assert_eq!(r.suggestions, vec![Advice::Split { a: 0, b: 1 }]);
        assert!(r
            .advice_text(&r.suggestions[0])
            .contains("split segments D0 / D1"));
        assert!(r.quality_milli < 1000);
    }

    #[test]
    fn noise_floor_drops_thin_edges_and_mismatched_sketch_is_flagged() {
        let h = chain_hierarchy();
        // The cycle-closing arc only occurred twice — below the floor.
        let thin = board(3, 3, &[(0, 1)], 2);
        let strong = board(3, 3, &[(1, 0), (2, 0)], 8);
        // Merge both sketches' views by advising on each.
        let r = advise(&h, &thin.snapshot(), DEFAULT_MIN_EDGE);
        assert_eq!(r.observed_arcs, 0);
        assert_eq!(r.dropped_arcs, 1);
        assert!(r.hierarchy_is_optimal(), "noise must not drive advice");
        let r = advise(&h, &strong.snapshot(), DEFAULT_MIN_EDGE);
        assert_eq!(r.observed_arcs, 2);
        assert_eq!(r.dropped_arcs, 0);

        // Unconfigured or mis-dimensioned sketches are flagged, not
        // folded.
        let r = advise(&h, &DriftSnapshot::default(), DEFAULT_MIN_EDGE);
        assert!(
            r.provenance[0].contains("sketch unusable"),
            "{:?}",
            r.provenance
        );
        assert_eq!(r.observed_arcs, 0);
    }

    #[test]
    fn provenance_names_most_drifted_rows_after_a_shift() {
        let h = chain_hierarchy();
        let b = board(3, 3, &[(1, 1), (1, 0)], 16);
        assert!(b.fold().is_none(), "seed fold must not trip");
        // Shifted interval: a brand-new edge family dominates.
        for _ in 0..32 {
            b.record_edge(2, 2);
            b.record_edge(2, 0);
        }
        let _ = b.fold();
        let snap = b.snapshot();
        let r = advise(&h, &snap, DEFAULT_MIN_EDGE);
        assert!(
            r.provenance.iter().any(|p| p.contains("co-access D2")),
            "{:?}",
            r.provenance
        );
        if snap.tripped {
            assert!(r
                .provenance
                .iter()
                .any(|p| p.contains("drift board tripped")));
        }
        let json = r.to_json();
        assert!(json.contains("\"provenance\": ["), "{json}");
    }
}
