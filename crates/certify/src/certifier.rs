//! The offline serializability certifier.
//!
//! Consumes a drained [`ScheduleLog`] and re-derives, independently of
//! any scheduler, the two correctness claims the paper makes:
//!
//! 1. **Acyclicity** — the multi-version dependency graph of Section 2
//!    has no cycle (serializability proper), and no committed read ever
//!    observed an uncommitted version;
//! 2. **Partition synchronization** (the stronger, structural rule) —
//!    every direct dependency `t1 → t2` between committed classed
//!    transactions satisfies `t1 ⇒ t2` ("topologically follows"),
//!    evaluated edge-by-edge over an [`ActivityRegistry`] *replayed*
//!    from the log's `Begin`/`Commit`/`Abort` events. This is the
//!    invariant from which the paper derives acyclicity; checking it
//!    directly localizes a bug to the exact dependency that broke it.
//!
//! On violation the certifier runs the delta-debugging shrinker
//! ([`crate::shrink::ddmin`]) to cut the schedule down to a 1-minimal
//! event subsequence, then renders it as an annotated text narrative
//! plus a Graphviz DOT graph with kind-labelled arcs.
//!
//! ## Replay fidelity
//!
//! `Abort` events carry the exact abort timestamp (the registry end the
//! scheduler drew under its class lock), so a replayed abort ends its
//! activity interval precisely where the live registry did — the
//! replayed `I_old`/`A`/`⇒` evaluations match the scheduler's own.
//!
//! Exactness is load-bearing, not cosmetic. An earlier revision ended
//! replayed aborts at "the latest timestamp seen so far", reasoning the
//! over-extension was conservative; it is not. `⇒`'s case-3 check is
//! `I(t2) < A_i^j(I(t1))` — a *lower* bound dooms it — and an
//! over-extended abort interval drags `I_old` (hence the bound) down,
//! so a sound schedule whose `Abort` record lands late in log order
//! could flunk partition synchronization (see the
//! `exact_abort_time_avoids_false_sync_alarm` regression test).

use crate::diag::json_escape;
use crate::shrink::ddmin;
use hdd::activity::{topologically_follows, ActivityFuncs, ActivityRegistry, TxnCoord};
use hdd::analysis::Hierarchy;
use obs::TraceEvent;
use std::collections::HashMap;
use txn_model::schedule::INITIAL_WRITER;
use txn_model::{DependencyGraph, ScheduleEvent, ScheduleLog, Timestamp, TxnId};

/// Which certified rule a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// The dependency graph has a cycle (Bernstein's criterion).
    Acyclicity,
    /// A committed read observed a version whose writer never committed.
    DirtyRead,
    /// A direct dependency `t1 → t2` without `t1 ⇒ t2`.
    PartitionSync,
}

impl Rule {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Acyclicity => "acyclicity",
            Rule::DirtyRead => "dirty-read",
            Rule::PartitionSync => "partition-synchronization",
        }
    }
}

/// One rule violation found in a schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken rule.
    pub rule: Rule,
    /// Human-readable account.
    pub message: String,
    /// The dependency cycle, when the rule is [`Rule::Acyclicity`].
    pub cycle: Vec<TxnId>,
    /// The offending dependency edge, when the rule is
    /// [`Rule::PartitionSync`].
    pub edge: Option<(TxnId, TxnId)>,
}

/// A violation's schedule, reduced to a 1-minimal subsequence.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The rule the shrunk schedule still violates.
    pub rule: Rule,
    /// Event count before shrinking.
    pub original_events: usize,
    /// The minimal failing event subsequence.
    pub events: Vec<ScheduleEvent>,
    /// Annotated text narrative + DOT rendering.
    pub report: String,
}

/// The certifier's verdict over one schedule.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Which scheduler produced the log (display only).
    pub scheduler: String,
    /// Events examined.
    pub events: usize,
    /// Committed transactions in the dependency graph.
    pub txns: usize,
    /// Dependency arcs.
    pub arcs: usize,
    /// Dependency edges checked against the partition-sync rule (0 when
    /// no hierarchy was supplied).
    pub sync_edges_checked: usize,
    /// Everything that failed.
    pub violations: Vec<Violation>,
    /// Shrunk witness for the first violation.
    pub counterexample: Option<Counterexample>,
    /// Decision-trace lines joined by transaction id (when obs tracing
    /// was enabled during the run).
    pub trace_lines: Vec<String>,
}

impl Certificate {
    /// True when every rule held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "certify [{}]: {} events, {} txns, {} arcs, {} sync edges checked — ",
            self.scheduler, self.events, self.txns, self.arcs, self.sync_edges_checked
        );
        if self.ok() {
            out.push_str("OK\n");
            return out;
        }
        out.push_str(&format!("{} violation(s)\n", self.violations.len()));
        for v in &self.violations {
            out.push_str(&format!(
                "  violated rule: {} — {}\n",
                v.rule.name(),
                v.message
            ));
        }
        if let Some(cx) = &self.counterexample {
            out.push_str(&format!(
                "  shrunk counterexample ({} of {} events):\n{}",
                cx.events.len(),
                cx.original_events,
                cx.report,
            ));
        }
        for line in &self.trace_lines {
            out.push_str(&format!("  trace: {line}\n"));
        }
        out
    }

    /// Hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                let cycle: Vec<String> = v.cycle.iter().map(|t| format!("\"{t}\"")).collect();
                let edge = match v.edge {
                    Some((a, b)) => format!("[\"{a}\", \"{b}\"]"),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"rule\": \"{}\", \"message\": \"{}\", \"cycle\": [{}], \"edge\": {}}}",
                    v.rule.name(),
                    json_escape(&v.message),
                    cycle.join(", "),
                    edge,
                )
            })
            .collect();
        let counterexample = match &self.counterexample {
            Some(cx) => format!(
                "{{\"rule\": \"{}\", \"original_events\": {}, \"events\": {}, \"report\": \"{}\"}}",
                cx.rule.name(),
                cx.original_events,
                cx.events.len(),
                json_escape(&cx.report),
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"scheduler\": \"{}\", \"ok\": {}, \"events\": {}, \"txns\": {}, \
             \"arcs\": {}, \"sync_edges_checked\": {}, \"violations\": [{}], \
             \"counterexample\": {}}}",
            json_escape(&self.scheduler),
            self.ok(),
            self.events,
            self.txns,
            self.arcs,
            self.sync_edges_checked,
            violations.join(", "),
            counterexample,
        )
    }
}

/// Render one schedule event as a narrative line.
fn fmt_event(ev: &ScheduleEvent) -> String {
    match ev {
        ScheduleEvent::Begin {
            txn,
            start_ts,
            class,
        } => match class {
            Some(c) => format!("{txn} begins in class {c} at I={}", start_ts.0),
            None => format!("{txn} begins (read-only) at I={}", start_ts.0),
        },
        ScheduleEvent::Read {
            txn,
            granule,
            version,
            writer,
        } => format!(
            "{txn} reads {granule} version @{} written by {writer}",
            version.0
        ),
        ScheduleEvent::Write {
            txn,
            granule,
            version,
            ..
        } => format!("{txn} writes {granule} creating version @{}", version.0),
        ScheduleEvent::Commit { txn, commit_ts } => format!("{txn} commits at C={}", commit_ts.0),
        ScheduleEvent::Abort { txn, abort_ts } => format!("{txn} aborts at {}", abort_ts.0),
    }
}

/// Per-transaction coordinates replayed from the log.
struct Replay {
    coords: HashMap<TxnId, TxnCoord>,
    committed: HashMap<TxnId, Timestamp>,
    registry: ActivityRegistry,
}

/// Rebuild the activity registry and transaction coordinates from the
/// log's lifecycle events (see the module docs for abort fidelity).
fn replay_registry(events: &[ScheduleEvent], hierarchy: &Hierarchy) -> Replay {
    let registry = ActivityRegistry::new(hierarchy.class_count());
    let mut coords = HashMap::new();
    let mut committed = HashMap::new();
    for ev in events {
        match ev {
            ScheduleEvent::Begin {
                txn,
                start_ts,
                class: Some(class),
            } if class.index() < hierarchy.class_count() => {
                coords.insert(*txn, TxnCoord::new(*class, *start_ts));
                registry.begin(*class, *start_ts);
            }
            ScheduleEvent::Commit { txn, commit_ts } => {
                if let Some(c) = coords.get(txn) {
                    registry.commit(c.class, c.start, *commit_ts);
                }
                committed.insert(*txn, *commit_ts);
            }
            ScheduleEvent::Abort { txn, abort_ts } => {
                if let Some(c) = coords.get(txn) {
                    // End the interval exactly where the live registry
                    // did (see the module docs on replay fidelity).
                    registry.abort(c.class, c.start, *abort_ts);
                }
            }
            _ => {}
        }
    }
    Replay {
        coords,
        committed,
        registry,
    }
}

/// Check the partition-synchronization rule edge-by-edge. Returns the
/// violations plus the number of edges actually checked.
fn check_partition_sync(
    graph: &DependencyGraph,
    events: &[ScheduleEvent],
    hierarchy: &Hierarchy,
) -> (Vec<Violation>, usize) {
    let replay = replay_registry(events, hierarchy);
    let funcs = ActivityFuncs::new(hierarchy, &replay.registry);
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for (from, to, kinds) in graph.arcs() {
        if from == INITIAL_WRITER || to == INITIAL_WRITER {
            continue;
        }
        // Only committed, classed transactions carry coordinates; the
        // `⇒` relation is not defined for ad-hoc read-only transactions
        // (they synchronize through fictitious classes or the wall).
        let (Some(&c_from), Some(&c_to)) = (replay.coords.get(&from), replay.coords.get(&to))
        else {
            continue;
        };
        if !replay.committed.contains_key(&from) || !replay.committed.contains_key(&to) {
            continue;
        }
        checked += 1;
        match topologically_follows(&funcs, c_from, c_to) {
            Some(true) => {}
            Some(false) => violations.push(Violation {
                rule: Rule::PartitionSync,
                message: format!(
                    "direct dependency {from} → {to} ({kinds}) without {from} ⇒ {to}: \
                     class {} I={} does not topologically follow class {} I={}",
                    hierarchy.class_name(c_from.class),
                    c_from.start.0,
                    hierarchy.class_name(c_to.class),
                    c_to.start.0,
                ),
                cycle: Vec::new(),
                edge: Some((from, to)),
            }),
            None => violations.push(Violation {
                rule: Rule::PartitionSync,
                message: format!(
                    "direct dependency {from} → {to} ({kinds}) between classes {} and {} \
                     that share no critical path — the ⇒ relation is undefined for them, \
                     so the dependency itself is structurally illegal",
                    hierarchy.class_name(c_from.class),
                    hierarchy.class_name(c_to.class),
                ),
                cycle: Vec::new(),
                edge: Some((from, to)),
            }),
        }
    }
    (violations, checked)
}

fn describe_cycle(graph: &DependencyGraph, cycle: &[TxnId]) -> String {
    let mut hops = Vec::new();
    for k in 0..cycle.len() {
        let (a, b) = (cycle[k], cycle[(k + 1) % cycle.len()]);
        let kinds = graph.arc_kinds(a, b).unwrap_or_default();
        hops.push(format!("{a} →[{kinds}] {b}"));
    }
    hops.join(", ")
}

/// Build the annotated report for a shrunk counterexample.
fn render_counterexample(events: &[ScheduleEvent], rule: Rule) -> String {
    let graph = DependencyGraph::from_events(events);
    let mut out = String::new();
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&format!("    {:>2}. {}\n", i + 1, fmt_event(ev)));
    }
    match rule {
        Rule::Acyclicity => {
            if let Some(cycle) = graph.find_cycle() {
                out.push_str(&format!("    cycle: {}\n", describe_cycle(&graph, &cycle)));
            }
        }
        Rule::DirtyRead => {
            out.push_str(&format!(
                "    committed reads of uncommitted versions: {}\n",
                graph.dirty_reads()
            ));
        }
        Rule::PartitionSync => {}
    }
    out.push_str("    dot:\n");
    for line in graph.to_dot().lines() {
        out.push_str(&format!("      {line}\n"));
    }
    out
}

/// Certify an explicit event sequence. Supply the hierarchy to
/// additionally check the partition-synchronization rule (only
/// meaningful for logs produced by the HDD scheduler, whose `Begin`
/// events carry classes drawn from that hierarchy).
pub fn certify_events(
    scheduler: impl Into<String>,
    events: &[ScheduleEvent],
    hierarchy: Option<&Hierarchy>,
) -> Certificate {
    let graph = DependencyGraph::from_events(events);
    let mut violations = Vec::new();

    if let Some(cycle) = graph.find_cycle() {
        violations.push(Violation {
            rule: Rule::Acyclicity,
            message: format!(
                "dependency cycle of length {}: {}",
                cycle.len(),
                describe_cycle(&graph, &cycle)
            ),
            cycle,
            edge: None,
        });
    }
    if graph.dirty_reads() > 0 {
        violations.push(Violation {
            rule: Rule::DirtyRead,
            message: format!(
                "{} committed read(s) observed versions whose writer never committed",
                graph.dirty_reads()
            ),
            cycle: Vec::new(),
            edge: None,
        });
    }
    let mut sync_edges_checked = 0;
    if let Some(h) = hierarchy {
        let (mut sync_violations, checked) = check_partition_sync(&graph, events, h);
        sync_edges_checked = checked;
        violations.append(&mut sync_violations);
    }

    let counterexample = violations.first().map(|first| {
        let rule = first.rule;
        let pred = |evs: &[ScheduleEvent]| match rule {
            Rule::Acyclicity => DependencyGraph::from_events(evs).find_cycle().is_some(),
            Rule::DirtyRead => DependencyGraph::from_events(evs).dirty_reads() > 0,
            Rule::PartitionSync => match hierarchy {
                Some(h) => {
                    let g = DependencyGraph::from_events(evs);
                    !check_partition_sync(&g, evs, h).0.is_empty()
                }
                None => false,
            },
        };
        let shrunk = ddmin(events, pred);
        let report = render_counterexample(&shrunk, rule);
        Counterexample {
            rule,
            original_events: events.len(),
            events: shrunk,
            report,
        }
    });

    Certificate {
        scheduler: scheduler.into(),
        events: events.len(),
        txns: graph.transactions().len(),
        arcs: graph.arc_count(),
        sync_edges_checked,
        violations,
        counterexample,
        trace_lines: Vec::new(),
    }
}

/// Certify a drained schedule log (see [`certify_events`]).
pub fn certify_log(
    scheduler: impl Into<String>,
    log: &ScheduleLog,
    hierarchy: Option<&Hierarchy>,
) -> Certificate {
    certify_events(scheduler, &log.events(), hierarchy)
}

/// Join a drained obs [`TraceRing`](obs::TraceRing) into the
/// certificate: decision-trace lines for the transactions implicated in
/// a violation (cycle members and partition-sync edge endpoints),
/// ordered by trace ticket. A certificate with no violations is left
/// untouched.
pub fn attach_trace(cert: &mut Certificate, trace: &[(u64, TraceEvent)]) {
    if cert.ok() {
        return;
    }
    let mut implicated: Vec<u64> = Vec::new();
    for v in &cert.violations {
        implicated.extend(v.cycle.iter().map(|t| t.0));
        if let Some((a, b)) = v.edge {
            implicated.push(a.0);
            implicated.push(b.0);
        }
    }
    implicated.sort_unstable();
    implicated.dedup();
    let mut sorted: Vec<&(u64, TraceEvent)> = trace.iter().collect();
    sorted.sort_by_key(|(ticket, _)| *ticket);
    for (ticket, ev) in sorted {
        if ev
            .txn()
            .is_some_and(|t| implicated.binary_search(&t).is_ok())
        {
            cert.trace_lines.push(format!("#{ticket} {ev}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use txn_model::{GranuleId, SegmentId, Value};

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    fn begin(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Begin {
            txn: TxnId(t),
            start_ts: Timestamp(ts),
            class: None,
        }
    }

    fn read(t: u64, gr: GranuleId, v: u64, w: u64) -> ScheduleEvent {
        ScheduleEvent::Read {
            txn: TxnId(t),
            granule: gr,
            version: Timestamp(v),
            writer: TxnId(w),
        }
    }

    fn write(t: u64, gr: GranuleId, v: u64) -> ScheduleEvent {
        ScheduleEvent::Write {
            txn: TxnId(t),
            granule: gr,
            version: Timestamp(v),
            value: Arc::new(Value::Int(v as i64)),
        }
    }

    fn commit(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Commit {
            txn: TxnId(t),
            commit_ts: Timestamp(ts),
        }
    }

    /// A write-skew two-cycle padded with irrelevant traffic.
    fn skewed_events() -> Vec<ScheduleEvent> {
        let x = g(0, 1);
        let z = g(0, 2);
        let mut evs = vec![
            begin(1, 1),
            begin(2, 2),
            read(1, x, 0, 0),
            read(2, z, 0, 0),
            write(2, x, 4),
            write(1, z, 5),
            commit(1, 10),
            commit(2, 11),
        ];
        // Pad with 30 independent committed transactions.
        for i in 0..30u64 {
            let t = 100 + i;
            let gr = g(1, 100 + i);
            evs.push(begin(t, 20 + i));
            evs.push(write(t, gr, 20 + i));
            evs.push(commit(t, 50 + i));
        }
        evs
    }

    #[test]
    fn clean_schedule_certifies_ok() {
        let evs = vec![
            begin(1, 1),
            write(1, g(0, 1), 1),
            commit(1, 2),
            begin(2, 3),
            read(2, g(0, 1), 1, 1),
            commit(2, 4),
        ];
        let cert = certify_events("demo", &evs, None);
        assert!(cert.ok(), "{}", cert.render());
        assert_eq!(cert.txns, 2);
        assert!(cert.to_json().contains("\"ok\": true"));
    }

    #[test]
    fn cycle_shrinks_to_minimal_counterexample() {
        let cert = certify_events("nocontrol", &skewed_events(), None);
        assert!(!cert.ok());
        assert_eq!(cert.violations[0].rule, Rule::Acyclicity);
        let cx = cert.counterexample.as_ref().unwrap();
        assert!(
            cx.events.len() <= 10,
            "expected ≤10 events, got {}",
            cx.events.len()
        );
        assert!(cx.events.len() >= 4, "cycle needs 2 reads + 2 writes");
        assert!(cx.report.contains("cycle:"));
        assert!(cx.report.contains("digraph dependencies"));
        let rendered = cert.render();
        assert!(rendered.contains("violated rule: acyclicity"));
    }

    #[test]
    fn dirty_read_rule_detected_and_named() {
        let evs = vec![
            begin(1, 1),
            write(1, g(0, 1), 1),
            begin(2, 2),
            read(2, g(0, 1), 1, 1),
            commit(2, 3),
            ScheduleEvent::Abort {
                txn: TxnId(1),
                abort_ts: Timestamp(4),
            },
        ];
        let cert = certify_events("nocontrol", &evs, None);
        assert!(!cert.ok());
        assert!(cert.violations.iter().any(|v| v.rule == Rule::DirtyRead));
        let cx = cert.counterexample.as_ref().unwrap();
        assert!(cx.events.len() <= 4, "write, read, commit, abort");
    }

    /// Regression for the replay-fidelity fix (module docs): a sound
    /// schedule whose `Abort` record lands late in log order must not
    /// flunk partition synchronization.
    #[test]
    fn exact_abort_time_avoids_false_sync_alarm() {
        use hdd::analysis::AccessSpec;
        use txn_model::ClassId;
        let hier = Hierarchy::build(
            2,
            &[
                AccessSpec::new("c0", vec![SegmentId(0)], vec![]),
                AccessSpec::new("c1", vec![SegmentId(1)], vec![SegmentId(0)]),
            ],
        )
        .unwrap();
        let classed = |t: u64, ts: u64, c: u32| ScheduleEvent::Begin {
            txn: TxnId(t),
            start_ts: Timestamp(ts),
            class: Some(ClassId(c)),
        };
        // t1 begins in c0 at 1 and aborts at 2 — but its Abort record is
        // logged *late*, after t3's begin. t2 commits a version at 4;
        // t3 (class c1, I=6) reads it cross-class. Sound: at instant 6,
        // nothing in c0 is active, so A_{c1}^{c0}(6) = 6 > I(t2) = 4.
        let evs = vec![
            classed(1, 1, 0),
            classed(2, 4, 0),
            write(2, g(0, 1), 4),
            commit(2, 5),
            classed(3, 6, 1),
            ScheduleEvent::Abort {
                txn: TxnId(1),
                abort_ts: Timestamp(2),
            },
            read(3, g(0, 1), 4, 2),
            commit(3, 7),
        ];
        let cert = certify_events("hdd", &evs, Some(&hier));
        assert!(cert.sync_edges_checked >= 1);
        assert!(cert.ok(), "sound schedule must certify:\n{}", cert.render());

        // The old conservative bound ended t1's replayed interval at the
        // latest timestamp seen (here 6+1): t1 then reads as active at
        // instant 6, dragging I_old_{c0}(6) down to 1, and the case-3
        // check I(t2)=4 < A_{c1}^{c0}(6) becomes 4 < 1 — a false alarm.
        let exact = ActivityRegistry::new(2);
        let over = ActivityRegistry::new(2);
        for r in [&exact, &over] {
            r.begin(ClassId(0), Timestamp(1));
            r.begin(ClassId(0), Timestamp(4));
            r.commit(ClassId(0), Timestamp(4), Timestamp(5));
            r.begin(ClassId(1), Timestamp(6));
            r.commit(ClassId(1), Timestamp(6), Timestamp(7));
        }
        exact.abort(ClassId(0), Timestamp(1), Timestamp(2));
        over.abort(ClassId(0), Timestamp(1), Timestamp(7)); // old bound
        let dependent = TxnCoord::new(ClassId(1), Timestamp(6));
        let dependee = TxnCoord::new(ClassId(0), Timestamp(4));
        assert_eq!(
            topologically_follows(&ActivityFuncs::new(&hier, &exact), dependent, dependee),
            Some(true)
        );
        assert_eq!(
            topologically_follows(&ActivityFuncs::new(&hier, &over), dependent, dependee),
            Some(false),
            "the conservative abort bound over-approximates this check"
        );
    }

    #[test]
    fn trace_join_keeps_only_implicated_txns() {
        let mut cert = certify_events("nocontrol", &skewed_events(), None);
        let trace = vec![
            (
                7u64,
                TraceEvent::Reject {
                    txn: 1,
                    segment: 0,
                    key: 1,
                    reason: obs::RejectReason::WriteTooLate,
                },
            ),
            (
                3u64,
                TraceEvent::Reject {
                    txn: 999,
                    segment: 0,
                    key: 1,
                    reason: obs::RejectReason::WriteTooLate,
                },
            ),
        ];
        attach_trace(&mut cert, &trace);
        assert_eq!(cert.trace_lines.len(), 1, "{:?}", cert.trace_lines);
        assert!(cert.trace_lines[0].starts_with("#7"));
    }
}
