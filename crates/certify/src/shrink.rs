//! Delta-debugging over event subsequences.
//!
//! When the certifier finds a violation, the raw schedule may hold
//! thousands of events of which only a handful matter. [`ddmin`] is the
//! classic Zeller/Hildebrandt algorithm specialized to *subsequence*
//! reduction: split into chunks, try dropping chunks and complements,
//! refine granularity, and finish with a greedy one-minimal pass (drop
//! each surviving element individually). The predicate receives a
//! candidate subsequence and answers "does the failure still occur?".
//!
//! The result is 1-minimal: removing any single remaining event makes
//! the predicate flip. For dependency-graph violations that routinely
//! means single-digit counterexamples (a two-cycle needs two reads, two
//! writes, and two commits).

/// Reduce `items` to a 1-minimal failing subsequence under `pred`.
///
/// `pred(&items)` must hold on entry; the returned subsequence satisfies
/// it too. The predicate must be deterministic (it is re-evaluated many
/// times; the certifier's graph rebuild is).
pub fn ddmin<T: Clone>(items: &[T], pred: impl Fn(&[T]) -> bool) -> Vec<T> {
    debug_assert!(pred(items), "ddmin requires a failing input");
    let mut current: Vec<T> = items.to_vec();
    let mut n = 2usize;

    while current.len() >= 2 {
        let chunks = chunked(&current, n);
        let mut reduced = false;

        // Try each chunk alone.
        for chunk in &chunks {
            if pred(chunk) {
                current = chunk.clone();
                n = 2;
                reduced = true;
                break;
            }
        }
        if !reduced {
            // Try each complement (everything except one chunk).
            for i in 0..chunks.len() {
                let complement: Vec<T> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, c)| c.iter().cloned())
                    .collect();
                if !complement.is_empty() && pred(&complement) {
                    current = complement;
                    n = (n - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }

    one_minimal(current, pred)
}

/// Greedy pass: drop each element individually until no single removal
/// preserves the failure.
fn one_minimal<T: Clone>(mut current: Vec<T>, pred: impl Fn(&[T]) -> bool) -> Vec<T> {
    let mut i = 0;
    while i < current.len() {
        if current.len() <= 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.remove(i);
        if pred(&candidate) {
            current = candidate;
            // Restart-free: the element now at `i` has not been tried.
        } else {
            i += 1;
        }
    }
    current
}

fn chunked<T: Clone>(items: &[T], n: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let size = len.div_ceil(n);
    items.chunks(size.max(1)).map(<[T]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_the_single_culprit() {
        let items: Vec<u32> = (0..100).collect();
        let out = ddmin(&items, |s| s.contains(&77));
        assert_eq!(out, vec![77]);
    }

    #[test]
    fn preserves_required_pair_in_order() {
        let items: Vec<u32> = (0..64).collect();
        // Failure needs 5 before 42 (subsequence order is preserved).
        let pred = |s: &[u32]| {
            let p5 = s.iter().position(|&x| x == 5);
            let p42 = s.iter().position(|&x| x == 42);
            matches!((p5, p42), (Some(a), Some(b)) if a < b)
        };
        let out = ddmin(&items, pred);
        assert_eq!(out, vec![5, 42]);
    }

    #[test]
    fn result_is_one_minimal() {
        let items: Vec<u32> = (0..40).collect();
        // Needs at least 3 even numbers.
        let pred = |s: &[u32]| s.iter().filter(|x| **x % 2 == 0).count() >= 3;
        let out = ddmin(&items, pred);
        assert_eq!(out.len(), 3);
        for i in 0..out.len() {
            let mut c = out.clone();
            c.remove(i);
            assert!(!pred(&c), "dropping {i} must break the predicate");
        }
    }

    #[test]
    fn single_element_input() {
        let out = ddmin(&[9], |s: &[u32]| !s.is_empty());
        assert_eq!(out, vec![9]);
    }
}
