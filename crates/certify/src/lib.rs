//! A-priori decomposition linting and offline serializability
//! certification for hierarchical database decomposition.
//!
//! Two complementary static/offline checks bracket the runtime
//! schedulers:
//!
//! - **Linter** ([`lint`]): before any transaction runs, analyze the
//!   workload's access specs. Build the dynamic hierarchy graph,
//!   transitively reduce it, and check the semi-tree property; emit
//!   rustc-style diagnostics with concrete witnesses (the two
//!   undirected paths that break the semi-tree, the segment written by
//!   two classes, the non-ancestor read) and repair suggestions
//!   (minimal segment merges via the contraction planner).
//! - **Certifier** ([`certifier`]): after a run, take the drained
//!   schedule log (and optionally the obs trace ring), rebuild the
//!   multiversion serialization graph, and check both *acyclicity* and
//!   the stronger HDD *partition-synchronization rule* — every
//!   dependency `t1 → t2` must be matched by `t1 ⇒ t2` (topologically
//!   follows) under the hierarchy's A-functions. On violation, a
//!   delta-debugging shrinker ([`shrink`]) reduces the schedule to a
//!   1-minimal counterexample and renders an annotated report.
//!
//! The [`conformance`] module generates seeded, hierarchy-legal random
//! scripts so the sim can sweep every scheduler and certify every log.
//!
//! The [`advisor`] module closes the loop at runtime: it folds the
//! live drift sketch's observed co-access edges into an *observed* DHG
//! and runs the same repartition machinery online, scoring the running
//! hierarchy against the best-known TST for the workload actually seen.
//!
//! The crate is dependency-free beyond the workspace (hand-rolled JSON,
//! self-contained SplitMix64) and ships the `hdd-lint` binary.

pub mod advisor;
pub mod certifier;
pub mod conformance;
pub mod diag;
pub mod lint;
pub mod shrink;

pub use advisor::{
    advise, canonical_labels, observed_dhg, Advice, AdvisorReport, DEFAULT_MIN_EDGE,
};
pub use certifier::{certify_events, certify_log, Certificate, Counterexample, Rule, Violation};
pub use conformance::{generate_scripts, ConformanceConfig, SplitMix64};
pub use diag::{Diagnostic, Severity};
pub use lint::{lint_script, lint_specs, lint_workload, LintReport};
pub use shrink::ddmin;
