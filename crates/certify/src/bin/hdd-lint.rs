//! `hdd-lint` — the a-priori decomposition linter CLI.
//!
//! Usage:
//!
//! ```text
//! hdd-lint builtin [--json]   lint every bundled workload (exit 0 = clean)
//! hdd-lint demo [--json]      lint deliberately broken decompositions
//!                             (exit 1 expected: shows witnesses/repairs)
//! ```
//!
//! The exit code is 1 when any error-severity diagnostic was produced,
//! so CI can assert both directions: `builtin` must pass, `demo` must
//! fail.

use certify::lint::{lint_script, lint_specs, lint_workload, LintReport};
use hdd::analysis::AccessSpec;
use txn_model::SegmentId;
use workloads::anomalies::{write_skew_script, AnomalyWorkload};
use workloads::banking::Banking;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};
use workloads::Workload;

fn emit(reports: &[LintReport], json: bool) -> i32 {
    if json {
        let objs: Vec<String> = reports.iter().map(LintReport::to_json).collect();
        println!("[{}]", objs.join(", "));
    } else {
        for r in reports {
            print!("{}", r.render());
        }
    }
    let bad = reports.iter().filter(|r| !r.ok()).count();
    if bad > 0 {
        if !json {
            eprintln!("hdd-lint: {bad} target(s) failed");
        }
        1
    } else {
        0
    }
}

fn lint_builtin() -> Vec<LintReport> {
    vec![
        lint_workload(&Inventory::new(InventoryConfig::default())),
        lint_workload(&Banking::new(16)),
        lint_workload(&Synthetic::new(SyntheticConfig::default())),
        lint_workload(&AnomalyWorkload),
    ]
}

fn lint_demo() -> Vec<LintReport> {
    let s = SegmentId;
    vec![
        // 1. Diamond: the transitive reduction is not a semi-tree.
        lint_specs(
            4,
            &[
                AccessSpec::new("post-ledger", vec![s(1)], vec![s(0)]),
                AccessSpec::new("post-audit", vec![s(2)], vec![s(0)]),
                AccessSpec::new("reconcile", vec![s(3)], vec![s(1), s(2)]),
            ],
            None,
            "demo diamond (non-TST)",
        ),
        // 2. A transaction shape that writes two segments.
        lint_specs(
            2,
            &[AccessSpec::new("transfer-wide", vec![s(0), s(1)], vec![])],
            None,
            "demo two-segment writer",
        ),
        // 3. Mutually recursive shapes: the DHG itself is cyclic.
        lint_specs(
            2,
            &[
                AccessSpec::new("fwd", vec![s(0)], vec![s(1)]),
                AccessSpec::new("back", vec![s(1)], vec![s(0)]),
            ],
            None,
            "demo directed DHG cycle",
        ),
        // 4. Script whose profiles are illegal under the anomaly
        //    hierarchy: write-skew's class-1 transaction reads the
        //    non-ancestor D2.
        lint_script(&write_skew_script(), &AnomalyWorkload.hierarchy()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let cmd = args.iter().find(|a| !a.starts_with("--")).cloned();

    let code = match cmd.as_deref() {
        Some("builtin") => emit(&lint_builtin(), json),
        Some("demo") => emit(&lint_demo(), json),
        _ => {
            eprintln!(
                "usage: hdd-lint <builtin|demo> [--json]\n\
                 \n\
                 builtin  lint the bundled workloads (inventory, banking,\n\
                 \u{20}        synthetic, anomalies); exit 0 when all are clean\n\
                 demo     lint deliberately broken decompositions to show\n\
                 \u{20}        witnesses and repair suggestions; exits 1"
            );
            2
        }
    };
    std::process::exit(code);
}
