//! `hdd-ordering-lint` — the memory-ordering audit gate.
//!
//! Every `Ordering::Relaxed` site in the workspace must say *why*
//! relaxed is enough: a `// ordering:` comment on the same line, on an
//! earlier line of the same (multi-line) statement, or in the comment
//! block immediately above that statement — one justification never
//! covers a later, unrelated site. The justification discipline is what
//! makes the audit (DESIGN.md §12) checkable — an unannotated site is
//! either an unreviewed ordering or a silent downgrade, and both fail
//! CI here.
//!
//! Usage:
//!
//! ```text
//! hdd-ordering-lint [ROOT]          audit ROOT (default: .), exit 1 on
//!                                   any unjustified Relaxed site
//! hdd-ordering-lint [ROOT] --list   also print every justified site
//! ```
//!
//! Scope: `.rs` files under ROOT, excluding build output (`target*/`),
//! VCS metadata, and this linter's own source (its patterns would
//! otherwise count as sites). Stronger orderings (`Acquire`, `Release`,
//! `SeqCst`) need no justification — they are the safe direction; the
//! audit exists to keep the *weakest* ordering honest.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// How many lines above a site a `// ordering:` justification may sit
/// (multi-line argument lists push the `Relaxed` token several lines
/// below the comment that governs the whole call).
const LOOKBACK: usize = 10;

/// One `Ordering::Relaxed` occurrence.
struct Site {
    file: PathBuf,
    line: usize,
    justified: bool,
}

/// Does the site on `lines[i]` carry a justification?
///
/// Accepted: the marker on the same line, on an earlier line of the
/// *same statement* (multi-line call), or in the comment block
/// contiguously above that statement. The upward walk stops at the
/// first line that ends an earlier statement (`;`, `{`, or `}` after
/// stripping trailing comments) — a justification never leaks past a
/// statement boundary to cover an unrelated later site.
fn site_justified(lines: &[&str], i: usize, marker: &str) -> bool {
    if lines[i].contains(marker) {
        return true;
    }
    for j in (i.saturating_sub(LOOKBACK)..i).rev() {
        let line = lines[j];
        let code = line.split("//").next().unwrap_or("").trim();
        if code.is_empty() {
            // Pure comment or blank line: part of the governing block.
            if line.contains(marker) {
                return true;
            }
            continue;
        }
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            // An earlier statement ends here; its comments govern it,
            // not us.
            return false;
        }
        // Continuation line of our own statement (possibly with a
        // trailing marker comment).
        if line.contains(marker) {
            return true;
        }
    }
    false
}

/// Scan one file's text for Relaxed sites and their justifications.
fn scan_text(file: &Path, text: &str) -> Vec<Site> {
    // Built by concatenation so this linter never flags its own source
    // when scanned from a different checkout layout.
    let needle = format!("Ordering::{}", "Relaxed");
    let marker = format!("// {}:", "ordering");
    let lines: Vec<&str> = text.lines().collect();
    let mut sites = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if !line.contains(&needle) {
            continue;
        }
        sites.push(Site {
            file: file.to_path_buf(),
            line: i + 1,
            justified: site_justified(&lines, i, &marker),
        });
    }
    sites
}

fn is_excluded_dir(name: &str) -> bool {
    name.starts_with('.') || name.starts_with("target")
}

fn walk(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !is_excluded_dir(&name) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") && name != "hdd-ordering-lint.rs" {
            out.push(path);
        }
    }
}

fn audit(root: &Path) -> Vec<Site> {
    let mut files = Vec::new();
    walk(root, &mut files);
    files.sort();
    let mut sites = Vec::new();
    for f in &files {
        if let Ok(text) = std::fs::read_to_string(f) {
            sites.extend(scan_text(f, &text));
        }
    }
    sites
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let list = args.iter().any(|a| a == "--list");
    let root = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| ".".to_string());

    let sites = audit(Path::new(&root));
    let bad: Vec<&Site> = sites.iter().filter(|s| !s.justified).collect();

    let mut out = String::new();
    if list {
        for s in sites.iter().filter(|s| s.justified) {
            let _ = writeln!(out, "ok   {}:{}", s.file.display(), s.line);
        }
    }
    for s in &bad {
        let _ = writeln!(
            out,
            "FAIL {}:{}: Ordering::Relaxed without a `// ordering:` justification \
             (same line, same statement, or the comment block directly above it)",
            s.file.display(),
            s.line
        );
    }
    print!("{out}");
    println!(
        "hdd-ordering-lint: {} Relaxed site(s), {} justified, {} unjustified",
        sites.len(),
        sites.len() - bad.len(),
        bad.len()
    );
    std::process::exit(i32::from(!bad.is_empty()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_justification_passes() {
        let src = "x.load(Ordering::Relaxed); // ordering: Relaxed — advisory\n";
        let sites = scan_text(Path::new("t.rs"), src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].justified);
    }

    #[test]
    fn lookback_justification_passes_and_is_bounded() {
        let near = format!(
            "// ordering: Relaxed — counter\n{}x.load(Ordering::Relaxed);\n",
            "// filler\n".repeat(LOOKBACK - 1)
        );
        let sites = scan_text(Path::new("t.rs"), &near);
        assert!(sites[0].justified, "within lookback");

        let far = format!(
            "// ordering: Relaxed — counter\n{}x.load(Ordering::Relaxed);\n",
            "// filler\n".repeat(LOOKBACK)
        );
        let sites = scan_text(Path::new("t.rs"), &far);
        assert!(!sites[0].justified, "beyond lookback must fail");
    }

    #[test]
    fn unjustified_site_fails_and_line_is_reported() {
        let src = "fn f() {\n    x.store(1, Ordering::Relaxed);\n}\n";
        let sites = scan_text(Path::new("t.rs"), src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].justified);
        assert_eq!(sites[0].line, 2);
    }

    #[test]
    fn one_comment_covers_a_multiline_call() {
        let src = "// ordering: Relaxed — CAS loop re-reads on failure\n\
                   x.compare_exchange_weak(\n    a,\n    b,\n    \
                   Ordering::Relaxed,\n    Ordering::Relaxed,\n);\n";
        let sites = scan_text(Path::new("t.rs"), src);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(|s| s.justified));
    }

    #[test]
    fn justification_does_not_leak_past_a_statement_boundary() {
        let src = "// ordering: Relaxed — counter\n\
                   a.load(Ordering::Relaxed);\n\
                   b.store(1, Ordering::Relaxed);\n";
        let sites = scan_text(Path::new("t.rs"), src);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].justified, "comment directly above its statement");
        assert!(
            !sites[1].justified,
            "the first site's justification must not cover the second"
        );
    }

    #[test]
    fn trailing_comment_on_an_earlier_statement_does_not_leak() {
        let src = "a.store(1, Ordering::SeqCst); // ordering: note on this line\n\
                   b.load(Ordering::Relaxed);\n";
        let sites = scan_text(Path::new("t.rs"), src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].justified);
    }

    #[test]
    fn stronger_orderings_need_no_justification() {
        let src = "x.load(Ordering::Acquire);\ny.store(1, Ordering::SeqCst);\n";
        assert!(scan_text(Path::new("t.rs"), src).is_empty());
    }
}
