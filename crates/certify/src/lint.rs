//! The a-priori workload linter.
//!
//! HDD's guarantee is conditional: Protocols A/B/C only stay cycle-free
//! when the declared transaction shapes form a TST-hierarchical
//! partition (Section 3.2). The linter re-runs that analysis the way a
//! compiler would — collecting *every* violation it can see, attaching a
//! concrete witness to each, and proposing the minimal segment merges
//! (via [`hdd::decompose::repartition_to_tst`]) that would repair the
//! decomposition.
//!
//! Codes:
//!
//! * `CERT001` — a spec writes nothing (declare it read-only instead);
//! * `CERT002` — a spec writes in more than one segment/class;
//! * `CERT003` — the DHG has a directed cycle;
//! * `CERT004` — the DHG's transitive reduction is not a semi-tree
//!   (two distinct undirected paths connect the same pair of classes);
//! * `CERT005` — a script profile is illegal under the hierarchy;
//! * `CERT006` — a read-only profile spans several critical paths
//!   (legal, but served by Protocol C's time wall — a note);
//! * `CERT007` — a read-only profile reads only segments no transaction
//!   in the script ever writes (static data: it pays protocol overhead
//!   for isolation it cannot need, or a writer is missing).

use crate::diag::{json_escape, Diagnostic};
use hdd::analysis::{build_dhg, AccessSpec, Hierarchy};
use hdd::decompose::repartition_to_tst;
use hdd::graph::{check_semi_tree, Digraph, SemiTreeViolation};
use workloads::script::Script;
use workloads::Workload;

/// Everything the linter found about one target (workload or script).
#[derive(Debug, Clone)]
pub struct LintReport {
    /// What was linted ("workload banking", "script write-skew", ...).
    pub target: String,
    /// Findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no *error*-severity diagnostic was produced.
    pub fn ok(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == crate::diag::Severity::Error)
    }

    /// Rustc-style multi-diagnostic text rendering.
    pub fn render(&self) -> String {
        let mut out = format!("linting {} ... ", self.target);
        if self.diagnostics.is_empty() {
            out.push_str("ok\n");
            return out;
        }
        out.push_str(&format!("{} finding(s)\n", self.diagnostics.len()));
        for d in &self.diagnostics {
            out.push_str(&d.render());
        }
        out
    }

    /// Hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"target\": \"{}\", \"ok\": {}, \"diagnostics\": [{}]}}",
            json_escape(&self.target),
            self.ok(),
            diags.join(", "),
        )
    }
}

fn seg_name(names: Option<&[String]>, i: usize) -> String {
    match names {
        Some(ns) if i < ns.len() => ns[i].clone(),
        _ => format!("D{i}"),
    }
}

/// Name the spec that induces DHG arc `from → to` (a spec writing in
/// class `from` while accessing class `to`).
fn inducing_spec(specs: &[AccessSpec], from: usize, to: usize) -> Option<&AccessSpec> {
    specs.iter().find(|s| {
        s.writes.iter().any(|w| w.index() == from) && s.accesses().iter().any(|a| a.index() == to)
    })
}

/// BFS for an undirected path between `u` and `v` in `g` that does not
/// use the direct edge `u–v`. Returns the node sequence `u ... v`.
fn alternative_path(g: &Digraph, u: usize, v: usize) -> Option<Vec<usize>> {
    let n = g.node_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in g.arcs() {
        if (a, b) == (u, v) || (a, b) == (v, u) {
            continue;
        }
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut prev = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::from([u]);
    prev[u] = u;
    while let Some(x) = queue.pop_front() {
        if x == v {
            let mut path = vec![v];
            let mut cur = v;
            while cur != u {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &y in &adj[x] {
            if prev[y] == usize::MAX {
                prev[y] = x;
                queue.push_back(y);
            }
        }
    }
    None
}

/// Render a merge plan as a human-readable repair suggestion.
fn merge_help(dhg: &Digraph, names: Option<&[String]>) -> String {
    let plan = repartition_to_tst(dhg);
    if plan.is_identity() {
        return "already a TST (no merge needed)".to_string();
    }
    let merges: Vec<String> = plan
        .merges
        .iter()
        .map(|&(a, b)| format!("{}+{}", seg_name(names, a), seg_name(names, b)))
        .collect();
    format!(
        "merge segments {} (yielding {} classes) to restore the TST property",
        merges.join(", "),
        plan.n_classes,
    )
}

/// Lint a set of access specs over `n_segments` segments (identity
/// grouping: one class per segment, which is what [`Hierarchy::build`]
/// validates). Collects every finding instead of stopping at the first.
pub fn lint_specs(
    n_segments: usize,
    specs: &[AccessSpec],
    names: Option<&[String]>,
    target: impl Into<String>,
) -> LintReport {
    let mut diagnostics = Vec::new();

    for spec in specs {
        if spec.writes.is_empty() {
            diagnostics.push(
                Diagnostic::error("CERT001", format!("spec '{}' writes no segment", spec.name))
                    .with_witness(format!(
                        "read set: {}",
                        spec.reads
                            .iter()
                            .map(|s| seg_name(names, s.index()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                    .with_help(
                        "declare the shape as an ad-hoc read-only transaction \
                         (Protocol A or C applies); only update shapes enter the DHG",
                    ),
            );
        }
        let mut written: Vec<usize> = spec.writes.iter().map(|s| s.index()).collect();
        written.sort_unstable();
        written.dedup();
        if written.len() > 1 {
            let segs: Vec<String> = written.iter().map(|&s| seg_name(names, s)).collect();
            diagnostics.push(
                Diagnostic::error(
                    "CERT002",
                    format!(
                        "spec '{}' writes in {} segments; an update transaction \
                         writes in one and only one data segment",
                        spec.name,
                        written.len(),
                    ),
                )
                .with_witness(format!("written segments: {}", segs.join(", ")))
                .with_help(format!(
                    "merge segments {} into one class (group them under a \
                     single root) or split the transaction",
                    segs.join("+"),
                )),
            );
        }
    }

    let dhg = build_dhg(n_segments, specs);
    if let Some(cycle) = dhg.find_cycle() {
        let mut witness_path: Vec<String> = cycle.iter().map(|&c| seg_name(names, c)).collect();
        witness_path.push(seg_name(names, cycle[0]));
        let mut d = Diagnostic::error(
            "CERT003",
            "the data hierarchy graph has a directed cycle — no root ordering exists",
        )
        .with_witness(format!("cycle: {}", witness_path.join(" → ")));
        for k in 0..cycle.len() {
            let (from, to) = (cycle[k], cycle[(k + 1) % cycle.len()]);
            if let Some(spec) = inducing_spec(specs, from, to) {
                d = d.with_witness(format!(
                    "arc {} → {} induced by spec '{}' (writes {}, accesses {})",
                    seg_name(names, from),
                    seg_name(names, to),
                    spec.name,
                    seg_name(names, from),
                    seg_name(names, to),
                ));
            }
        }
        diagnostics.push(d.with_help(merge_help(&dhg, names)));
    } else {
        let reduction = dhg.transitive_reduction();
        if let Err(SemiTreeViolation::UndirectedCycle { u, v }) = check_semi_tree(&reduction) {
            let direct = format!("path 1: {} — {}", seg_name(names, u), seg_name(names, v));
            let mut d = Diagnostic::error(
                "CERT004",
                "the DHG's transitive reduction is not a semi-tree: two classes \
                 are connected by more than one undirected path",
            )
            .with_witness(direct);
            if let Some(path) = alternative_path(&reduction, u, v) {
                let p: Vec<String> = path.iter().map(|&c| seg_name(names, c)).collect();
                d = d.with_witness(format!("path 2: {}", p.join(" — ")));
            }
            if let Some(spec) = inducing_spec(specs, u, v).or_else(|| inducing_spec(specs, v, u)) {
                d = d.with_witness(format!("closing arc induced by spec '{}'", spec.name));
            }
            diagnostics.push(d.with_help(merge_help(&dhg, names)));
        }
    }

    LintReport {
        target: target.into(),
        diagnostics,
    }
}

/// Lint a bundled workload (its specs under its segment names).
pub fn lint_workload(w: &dyn Workload) -> LintReport {
    lint_specs(
        w.segments(),
        &w.specs(),
        Some(&w.segment_names()),
        format!("workload {}", w.name()),
    )
}

/// Lint a script's transaction profiles against a validated hierarchy.
pub fn lint_script(script: &Script, hierarchy: &Hierarchy) -> LintReport {
    let mut diagnostics = Vec::new();
    // Segments some transaction in this script declares it may write —
    // the universe a read-only profile could conflict with (CERT007).
    let written: std::collections::BTreeSet<_> = script
        .transactions
        .iter()
        .flat_map(|p| p.write_segments.iter().copied())
        .collect();
    for (i, profile) in script.transactions.iter().enumerate() {
        if let Err(v) = hierarchy.validate_profile(profile) {
            diagnostics.push(
                Diagnostic::error(
                    "CERT005",
                    format!("transaction #{i} has an illegal profile"),
                )
                .with_witness(v.to_string())
                .with_help(
                    "restructure the hierarchy dynamically (Section 7.1.1) or \
                         re-root the transaction in the lowest class it writes",
                ),
            );
        } else if profile.is_read_only() && !profile.read_segments.is_empty() {
            if profile.read_segments.iter().all(|s| !written.contains(s)) {
                diagnostics.push(
                    Diagnostic::warning(
                        "CERT007",
                        format!(
                            "read-only transaction #{i} reads only segments no \
                             transaction in this script writes"
                        ),
                    )
                    .with_witness(format!(
                        "read segments never written here: {}",
                        profile
                            .read_segments
                            .iter()
                            .map(|s| hierarchy.segment_name(*s).to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                    .with_help(
                        "its reads can never conflict: serve it outside the \
                         protocol (a plain snapshot read, no timestamp draw and \
                         no time-wall wait) — or, if these segments do change, \
                         add the missing update transaction to the script",
                    ),
                );
            } else if !hierarchy.read_only_on_one_critical_path(&profile.read_segments) {
                diagnostics.push(
                    Diagnostic::note(
                        "CERT006",
                        format!(
                            "read-only transaction #{i} spans several critical paths; \
                             it will be served through Protocol C's time wall"
                        ),
                    )
                    .with_witness(format!(
                        "read segments: {}",
                        profile
                            .read_segments
                            .iter()
                            .map(|s| hierarchy.segment_name(*s).to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )),
                );
            }
        }
    }
    LintReport {
        target: format!("script {}", script.name),
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::SegmentId;

    fn s(i: u32) -> SegmentId {
        SegmentId(i)
    }

    #[test]
    fn clean_chain_lints_ok() {
        let specs = vec![
            AccessSpec::new("t1", vec![s(0)], vec![]),
            AccessSpec::new("t2", vec![s(1)], vec![s(0)]),
            AccessSpec::new("t3", vec![s(2)], vec![s(0), s(1), s(2)]),
        ];
        let r = lint_specs(3, &specs, None, "chain");
        assert!(r.ok(), "{}", r.render());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn two_segment_writer_produces_witness_and_merge() {
        let specs = vec![AccessSpec::new("wide", vec![s(0), s(1)], vec![])];
        let r = lint_specs(2, &specs, None, "wide");
        assert!(!r.ok());
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "CERT002");
        assert!(d.witness[0].contains("D0, D1"), "{:?}", d.witness);
        assert!(d.help.as_ref().unwrap().contains("merge segments D0+D1"));
    }

    #[test]
    fn diamond_produces_two_paths_and_merge_help() {
        // D1→D0, D2→D0, D3→{D1,D2}: the reduction contains the diamond.
        let specs = vec![
            AccessSpec::new("a", vec![s(1)], vec![s(0)]),
            AccessSpec::new("b", vec![s(2)], vec![s(0)]),
            AccessSpec::new("c", vec![s(3)], vec![s(1), s(2)]),
        ];
        let r = lint_specs(4, &specs, None, "diamond");
        assert!(!r.ok());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "CERT004")
            .expect("diamond must fail the semi-tree check");
        assert!(
            d.witness.iter().any(|w| w.starts_with("path 1:")),
            "{:?}",
            d.witness
        );
        assert!(
            d.witness.iter().any(|w| w.starts_with("path 2:")),
            "{:?}",
            d.witness
        );
        assert!(d.help.as_ref().unwrap().contains("merge segments"));
        let json = r.to_json();
        assert!(json.contains("\"code\": \"CERT004\""));
        assert!(json.contains("\"ok\": false"));
    }

    #[test]
    fn directed_cycle_names_inducing_specs() {
        let specs = vec![
            AccessSpec::new("fwd", vec![s(0)], vec![s(1)]),
            AccessSpec::new("back", vec![s(1)], vec![s(0)]),
        ];
        let r = lint_specs(2, &specs, None, "cycle");
        let d = r.diagnostics.iter().find(|d| d.code == "CERT003").unwrap();
        assert!(d.witness.iter().any(|w| w.contains("'fwd'")));
        assert!(d.witness.iter().any(|w| w.contains("'back'")));
    }

    #[test]
    fn conflict_free_reader_gets_cert007_with_repair() {
        use workloads::anomalies::AnomalyWorkload;
        use workloads::script::Script;
        use workloads::Workload as _;
        let h = AnomalyWorkload.hierarchy();
        // One updater writing on-order (segment 2); one reader touching
        // only events (segment 0), which nothing in this script writes.
        let script = Script {
            name: "static-reader",
            transactions: vec![
                txn_model::TxnProfile::update(txn_model::ClassId(2), vec![s(2)]),
                txn_model::TxnProfile::read_only(vec![s(0)]),
            ],
            steps: vec![],
            setup: vec![],
        };
        let r = lint_script(&script, &h);
        assert!(r.ok(), "CERT007 is a warning, not an error: {}", r.render());
        let d = r.diagnostics.iter().find(|d| d.code == "CERT007").unwrap();
        assert!(d.witness[0].contains("events"), "{:?}", d.witness);
        assert!(d.help.as_ref().unwrap().contains("outside the"));

        // A reader overlapping the writer's segment is not flagged.
        let script = Script {
            name: "conflicting-reader",
            transactions: vec![
                txn_model::TxnProfile::update(txn_model::ClassId(2), vec![s(2)]),
                txn_model::TxnProfile::read_only(vec![s(2)]),
            ],
            steps: vec![],
            setup: vec![],
        };
        let r = lint_script(&script, &h);
        assert!(
            r.diagnostics.iter().all(|d| d.code != "CERT007"),
            "{}",
            r.render()
        );
    }

    #[test]
    fn write_skew_profiles_rejected_against_anomaly_hierarchy() {
        use workloads::anomalies::{write_skew_script, AnomalyWorkload};
        use workloads::Workload as _;
        let h = AnomalyWorkload.hierarchy();
        let r = lint_script(&write_skew_script(), &h);
        assert!(!r.ok());
        assert_eq!(r.diagnostics[0].code, "CERT005");
        // Named diagnostics: the anomaly workload names its segments.
        assert!(
            r.diagnostics[0].witness[0].contains("on-order"),
            "{:?}",
            r.diagnostics[0].witness
        );
    }
}
