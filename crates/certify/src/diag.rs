//! Rustc-style diagnostics with a machine-readable JSON rendering.
//!
//! Every linter failure is a [`Diagnostic`]: a stable code (`CERT0xx`),
//! a headline, a *witness* (the concrete evidence — the two undirected
//! paths, the doubly-written segments, the offending read), and an
//! optional *repair* suggestion. The text rendering mimics `rustc`
//! (`error[CERT004]: ...` with indented notes); the JSON rendering is
//! hand-rolled (the offline build has no serde).

/// Diagnostic severity, ordered from worst to mildest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The decomposition or schedule is invalid.
    Error,
    /// Legal but suspicious (e.g. a read-only shape forced onto the
    /// time-wall path).
    Warning,
    /// Informational.
    Note,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One linter or certifier finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable machine code (`CERT001`...).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// One-line headline.
    pub message: String,
    /// Concrete evidence lines (paths, segments, inducing specs).
    pub witness: Vec<String>,
    /// Suggested repair, when one is known.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            witness: Vec::new(),
            help: None,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Self::error(code, message)
        }
    }

    /// Build a note diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Self::error(code, message)
        }
    }

    /// Append a witness line (builder style).
    pub fn with_witness(mut self, line: impl Into<String>) -> Self {
        self.witness.push(line.into());
        self
    }

    /// Set the repair suggestion (builder style).
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Rustc-style text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity.as_str(),
            self.code,
            self.message
        );
        for w in &self.witness {
            out.push_str("  --> witness: ");
            out.push_str(w);
            out.push('\n');
        }
        if let Some(h) = &self.help {
            out.push_str("  = help: ");
            out.push_str(h);
            out.push('\n');
        }
        out
    }

    /// Hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        let witness: Vec<String> = self
            .witness
            .iter()
            .map(|w| format!("\"{}\"", json_escape(w)))
            .collect();
        let help = match &self.help {
            Some(h) => format!("\"{}\"", json_escape(h)),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \
             \"witness\": [{}], \"help\": {}}}",
            self.code,
            self.severity.as_str(),
            json_escape(&self.message),
            witness.join(", "),
            help,
        )
    }
}

/// Escape a string for embedding in JSON output.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_code_witness_and_help() {
        let d = Diagnostic::error("CERT004", "DHG reduction is not a semi-tree")
            .with_witness("path 1: D3 — D1 — D0")
            .with_witness("path 2: D3 — D2 — D0")
            .with_help("merge segments D1 and D2");
        let text = d.render();
        assert!(text.starts_with("error[CERT004]:"));
        assert!(text.contains("path 1"));
        assert!(text.contains("help: merge"));
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic::note("CERT000", "spec \"a\"\nsecond line");
        let j = d.to_json();
        assert!(j.contains("\\\"a\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"help\": null"));
    }
}
