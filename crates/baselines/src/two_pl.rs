//! Strict two-phase locking, with the Figure 3 "no cross-segment read
//! locks" failure mode as a switch.
//!
//! * Reads take shared locks; writes take exclusive locks; all locks are
//!   held to end-of-transaction (strict 2PL).
//! * Writes are buffered and installed at commit, so the version order of
//!   a granule is the commit order — exactly what the lock discipline
//!   serializes.
//! * Deadlocks are detected on the waits-for graph; the requester is the
//!   victim and its operation reports `Abort`.
//! * With [`TwoPlConfig::cross_segment_read_locks`] `= false`,
//!   transactions skip the S-lock for granules outside their home
//!   segment — the paper's Figure 3 shows this breaks serializability,
//!   and experiment E3 reproduces that cycle.

use crate::common::Base;
use mvstore::{LockMode, LockRequestResult, LockTable, MvStore};
use std::sync::Arc;
use txn_model::{
    CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleLog, Scheduler,
    TxnHandle, TxnProfile, Value, WriteOutcome,
};

/// Configuration for [`TwoPhaseLocking`].
#[derive(Debug, Clone)]
pub struct TwoPlConfig {
    /// Take S-locks for reads outside the transaction's home segment.
    /// `false` reproduces Figure 3's broken protocol.
    pub cross_segment_read_locks: bool,
}

impl Default for TwoPlConfig {
    fn default() -> Self {
        TwoPlConfig {
            cross_segment_read_locks: true,
        }
    }
}

/// Strict two-phase locking.
pub struct TwoPhaseLocking {
    base: Base,
    locks: LockTable,
    config: TwoPlConfig,
}

impl TwoPhaseLocking {
    /// Build over a store and clock.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>, config: TwoPlConfig) -> Self {
        TwoPhaseLocking {
            base: Base::new(store, clock),
            locks: LockTable::new(),
            config,
        }
    }

    fn acquire(&self, h: &TxnHandle, g: GranuleId, mode: LockMode) -> LockRequestResult {
        let r = self.locks.try_acquire(h.id, g, mode);
        match r {
            LockRequestResult::Granted => {
                let counter = match mode {
                    LockMode::Shared => &self.base.metrics.read_registrations,
                    LockMode::Exclusive => &self.base.metrics.write_registrations,
                };
                Metrics::bump(counter);
            }
            LockRequestResult::Waiting => Metrics::bump(&self.base.metrics.blocks),
            LockRequestResult::Deadlock => {
                Metrics::bump(&self.base.metrics.deadlocks);
                self.base.metrics.reject(
                    obs::RejectReason::DeadlockVictim,
                    h.id.0,
                    g.segment.0,
                    g.key,
                );
            }
        }
        r
    }

    fn read_current(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        // Own buffered write first.
        {
            let txns = self.base.txns.lock();
            if let Some(info) = txns.get(&h.id) {
                if let Some(v) = info.buffer.get(&g) {
                    // A re-read of one's own uninstalled write: log as a
                    // self-read of the not-yet-numbered version is
                    // meaningless for the dependency graph, so serve it
                    // without a log entry.
                    Metrics::bump(&self.base.metrics.reads);
                    return ReadOutcome::Value(Arc::new(v.clone()));
                }
            }
        }
        let (value, version, writer) =
            self.base
                .store
                .with_chain(g, |c| match c.latest_committed() {
                    Some(v) => (v.value.clone(), v.ts, v.writer),
                    None => (
                        Arc::new(Value::Absent),
                        txn_model::Timestamp::ZERO,
                        txn_model::TxnId(0),
                    ),
                });
        self.base.log_read(h.id, g, version, writer);
        ReadOutcome::Value(value)
    }
}

impl Scheduler for TwoPhaseLocking {
    fn name(&self) -> &'static str {
        if self.config.cross_segment_read_locks {
            "2pl"
        } else {
            "2pl-no-cross-read-locks"
        }
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        self.base.begin(profile)
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        let home = self.base.txns.lock().get(&h.id).and_then(|i| i.home);
        let needs_lock = self.config.cross_segment_read_locks || home == Some(g.segment);
        if needs_lock {
            match self.acquire(h, g, LockMode::Shared) {
                LockRequestResult::Granted => {}
                LockRequestResult::Waiting => return ReadOutcome::Block,
                LockRequestResult::Deadlock => return ReadOutcome::Abort,
            }
        }
        self.read_current(h, g)
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        match self.acquire(h, g, LockMode::Exclusive) {
            LockRequestResult::Granted => {}
            LockRequestResult::Waiting => return WriteOutcome::Block,
            LockRequestResult::Deadlock => return WriteOutcome::Abort,
        }
        let mut txns = self.base.txns.lock();
        if let Some(info) = txns.get_mut(&h.id) {
            if !info.buffer.contains_key(&g) {
                info.buffer_order.push(g);
            }
            info.buffer.insert(g, v);
        }
        WriteOutcome::Done
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        let Some(info) = self.base.take(h.id) else {
            return CommitOutcome::Aborted;
        };
        let cts = self.base.commit_buffered(h.id, &info);
        self.locks.release_all(h.id);
        CommitOutcome::Committed(cts)
    }

    fn abort(&self, h: &TxnHandle) {
        if self.base.take(h.id).is_some() {
            self.base.abort_buffered(h.id);
            self.locks.release_all(h.id);
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.base.log
    }

    fn metrics(&self) -> &Metrics {
        &self.base.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, DependencyGraph, SegmentId};

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    fn setup(cross_locks: bool) -> TwoPhaseLocking {
        let store = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(100));
        store.seed(g(1, 1), Value::Int(0));
        TwoPhaseLocking::new(
            store,
            Arc::new(LogicalClock::new()),
            TwoPlConfig {
                cross_segment_read_locks: cross_locks,
            },
        )
    }

    fn update(seg: u32) -> TxnProfile {
        TxnProfile::update(ClassId(seg), vec![SegmentId(0), SegmentId(1)])
    }

    #[test]
    fn read_write_commit_cycle() {
        let s = setup(true);
        let t = s.begin(&update(0));
        assert!(matches!(s.read(&t, g(0, 1)), ReadOutcome::Value(ref v) if **v == Value::Int(100)));
        assert_eq!(s.write(&t, g(0, 1), Value::Int(150)), WriteOutcome::Done);
        // Own write visible before commit.
        assert!(matches!(s.read(&t, g(0, 1)), ReadOutcome::Value(ref v) if **v == Value::Int(150)));
        assert!(matches!(s.commit(&t), CommitOutcome::Committed(_)));
        assert_eq!(s.base.store.latest_value(g(0, 1)), Value::Int(150));
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn readers_block_writer_until_commit() {
        let s = setup(true);
        let r = s.begin(&update(0));
        assert!(matches!(s.read(&r, g(0, 1)), ReadOutcome::Value(_)));
        let w = s.begin(&update(0));
        assert_eq!(s.write(&w, g(0, 1), Value::Int(1)), WriteOutcome::Block);
        assert!(matches!(s.commit(&r), CommitOutcome::Committed(_)));
        assert_eq!(s.write(&w, g(0, 1), Value::Int(1)), WriteOutcome::Done);
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
        assert!(s.metrics().snapshot().blocks >= 1);
    }

    #[test]
    fn deadlock_aborts_requester() {
        let s = setup(true);
        let a = s.begin(&update(0));
        let b = s.begin(&update(0));
        assert_eq!(s.write(&a, g(0, 1), Value::Int(1)), WriteOutcome::Done);
        assert_eq!(s.write(&b, g(1, 1), Value::Int(2)), WriteOutcome::Done);
        assert_eq!(s.write(&a, g(1, 1), Value::Int(3)), WriteOutcome::Block);
        assert_eq!(s.write(&b, g(0, 1), Value::Int(4)), WriteOutcome::Abort);
        s.abort(&b);
        assert_eq!(s.write(&a, g(1, 1), Value::Int(3)), WriteOutcome::Done);
        assert!(matches!(s.commit(&a), CommitOutcome::Committed(_)));
        assert_eq!(s.metrics().snapshot().deadlocks, 1);
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn broken_variant_skips_cross_segment_read_locks() {
        let s = setup(false);
        // Home segment 1; read from segment 0 takes no lock.
        let t = s.begin(&TxnProfile::update(ClassId(1), vec![SegmentId(0)]));
        assert!(matches!(s.read(&t, g(0, 1)), ReadOutcome::Value(_)));
        assert_eq!(s.metrics().snapshot().read_registrations, 0);
        // Home-segment reads still lock.
        assert!(matches!(s.read(&t, g(1, 1)), ReadOutcome::Value(_)));
        assert_eq!(s.metrics().snapshot().read_registrations, 1);
        s.abort(&t);
    }

    #[test]
    fn strict_2pl_serializes_rmw_counters() {
        // Interleaved read-modify-writes must not lose updates.
        let s = setup(true);
        let t1 = s.begin(&update(0));
        let t2 = s.begin(&update(0));
        let v1 = match s.read(&t1, g(0, 1)) {
            ReadOutcome::Value(v) => v.as_int(),
            _ => panic!(),
        };
        // t2's read blocks? No: S locks coexist. t2 reads too.
        let _ = match s.read(&t2, g(0, 1)) {
            ReadOutcome::Value(v) => v.as_int(),
            ReadOutcome::Block => {
                // Fine too (depends on lock state) — but with two S locks
                // it should not block.
                panic!("shared read should not block")
            }
            _ => panic!(),
        };
        // t1 upgrades: must wait for t2 (or deadlock).
        let w1 = s.write(&t1, g(0, 1), Value::Int(v1 + 50));
        assert_eq!(w1, WriteOutcome::Block);
        // t2 upgrade now deadlocks; t2 aborts and retries later.
        assert_eq!(s.write(&t2, g(0, 1), Value::Int(0)), WriteOutcome::Abort);
        s.abort(&t2);
        assert_eq!(
            s.write(&t1, g(0, 1), Value::Int(v1 + 50)),
            WriteOutcome::Done
        );
        assert!(matches!(s.commit(&t1), CommitOutcome::Committed(_)));
        assert_eq!(s.base.store.latest_value(g(0, 1)), Value::Int(150));
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }
}
