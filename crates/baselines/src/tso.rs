//! Basic timestamp ordering (Bernstein 80), with the Figure 4 "no
//! cross-segment read timestamps" failure mode as a switch.
//!
//! The granule is logically single-version (the chain is kept for
//! recovery/checking): a read of a granule already overwritten by a
//! younger transaction rejects; a write over a younger read or write
//! rejects; readers and writers wait for an uncommitted older write
//! (commit-bit blocking). Reads register the granule-level `max_rts` —
//! the write in the database the paper sets out to eliminate.
//!
//! With [`TsoConfig::register_cross_segment_reads`] `= false`, reads
//! outside the home segment skip both the timestamp check and the
//! registration and simply see the latest committed value — the paper's
//! Figure 4 shows this breaks serializability (experiment E4).

use crate::common::Base;
use mvstore::MvStore;
use std::sync::Arc;
use txn_model::{
    CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleLog, Scheduler,
    Timestamp, TxnHandle, TxnId, TxnProfile, Value, WriteOutcome,
};

/// Configuration for [`BasicTso`].
#[derive(Debug, Clone)]
pub struct TsoConfig {
    /// Register (and check) reads outside the home segment. `false`
    /// reproduces Figure 4's broken protocol.
    pub register_cross_segment_reads: bool,
}

impl Default for TsoConfig {
    fn default() -> Self {
        TsoConfig {
            register_cross_segment_reads: true,
        }
    }
}

/// Basic timestamp ordering.
pub struct BasicTso {
    base: Base,
    config: TsoConfig,
}

enum TsoRead {
    Value(Arc<Value>, Timestamp, TxnId),
    Block,
    Reject,
}

impl BasicTso {
    /// Build over a store and clock.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>, config: TsoConfig) -> Self {
        BasicTso {
            base: Base::new(store, clock),
            config,
        }
    }
}

impl Scheduler for BasicTso {
    fn name(&self) -> &'static str {
        if self.config.register_cross_segment_reads {
            "tso"
        } else {
            "tso-no-cross-read-ts"
        }
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        self.base.begin(profile)
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        let home = self.base.txns.lock().get(&h.id).and_then(|i| i.home);
        let controlled = self.config.register_cross_segment_reads || home == Some(g.segment);

        let r = self.base.store.with_chain(g, |c| {
            if !controlled {
                // Figure 4 mode: uncontrolled read of the latest
                // committed value, no registration, no checks.
                return match c.latest_committed() {
                    Some(v) => TsoRead::Value(v.value.clone(), v.ts, v.writer),
                    None => TsoRead::Value(Arc::new(Value::Absent), Timestamp::ZERO, TxnId(0)),
                };
            }
            let (value, ts, writer, committed) = match c.latest() {
                Some(latest) => (
                    latest.value.clone(),
                    latest.ts,
                    latest.writer,
                    latest.committed,
                ),
                None => return TsoRead::Value(Arc::new(Value::Absent), Timestamp::ZERO, TxnId(0)),
            };
            if writer == h.id {
                return TsoRead::Value(value, ts, writer);
            }
            if ts > h.start_ts {
                return TsoRead::Reject;
            }
            if !committed {
                return TsoRead::Block;
            }
            if h.start_ts > c.max_rts {
                c.max_rts = h.start_ts;
            }
            TsoRead::Value(value, ts, writer)
        });

        match r {
            TsoRead::Value(v, ts, writer) => {
                if controlled {
                    Metrics::bump(&self.base.metrics.read_registrations);
                } else {
                    Metrics::bump(&self.base.metrics.cross_class_reads);
                }
                self.base.log_read(h.id, g, ts, writer);
                ReadOutcome::Value(v)
            }
            TsoRead::Block => {
                Metrics::bump(&self.base.metrics.blocks);
                ReadOutcome::Block
            }
            TsoRead::Reject => {
                self.base.metrics.reject(
                    obs::RejectReason::ReadTooLate,
                    h.id.0,
                    g.segment.0,
                    g.key,
                );
                ReadOutcome::Abort
            }
        }
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        let v = Arc::new(v);
        enum W {
            Done,
            Block,
            Reject,
        }
        let r = self.base.store.with_chain(g, |c| {
            // Re-write of own pending version.
            if c.version_by_writer(h.id).map(|ver| ver.ts) == Some(h.start_ts) {
                c.mvto_write(h.start_ts, Arc::clone(&v), h.id);
                return W::Done;
            }
            if c.max_rts > h.start_ts {
                return W::Reject;
            }
            match c.latest() {
                Some(latest) if latest.ts > h.start_ts => W::Reject,
                Some(latest) if !latest.committed && latest.writer != h.id => W::Block,
                _ => {
                    let ok = c.install(h.start_ts, Arc::clone(&v), h.id, false);
                    debug_assert!(ok);
                    W::Done
                }
            }
        });
        match r {
            W::Done => {
                Metrics::bump(&self.base.metrics.write_registrations);
                self.base.log_write(h.id, g, h.start_ts, v);
                let mut txns = self.base.txns.lock();
                if let Some(info) = txns.get_mut(&h.id) {
                    if !info.write_set.contains(&g) {
                        info.write_set.push(g);
                    }
                }
                WriteOutcome::Done
            }
            W::Block => {
                Metrics::bump(&self.base.metrics.blocks);
                WriteOutcome::Block
            }
            W::Reject => {
                self.base.metrics.reject(
                    obs::RejectReason::WriteTooLate,
                    h.id.0,
                    g.segment.0,
                    g.key,
                );
                WriteOutcome::Abort
            }
        }
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        let Some(info) = self.base.take(h.id) else {
            return CommitOutcome::Aborted;
        };
        CommitOutcome::Committed(self.base.commit_installed(h.id, &info))
    }

    fn abort(&self, h: &TxnHandle) {
        if let Some(info) = self.base.take(h.id) {
            self.base.abort_installed(h.id, &info);
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.base.log
    }

    fn metrics(&self) -> &Metrics {
        &self.base.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, DependencyGraph, SegmentId};

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    fn setup(register: bool) -> BasicTso {
        let store = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(10));
        store.seed(g(1, 1), Value::Int(0));
        BasicTso::new(
            store,
            Arc::new(LogicalClock::new()),
            TsoConfig {
                register_cross_segment_reads: register,
            },
        )
    }

    fn profile(seg: u32) -> TxnProfile {
        TxnProfile::update(ClassId(seg), vec![SegmentId(0), SegmentId(1)])
    }

    #[test]
    fn timestamp_order_enforced_on_reads() {
        let s = setup(true);
        let old = s.begin(&profile(0));
        let new = s.begin(&profile(0));
        assert_eq!(s.write(&new, g(0, 1), Value::Int(5)), WriteOutcome::Done);
        assert!(matches!(s.commit(&new), CommitOutcome::Committed(_)));
        // Older transaction reading the younger's write: reject.
        assert_eq!(s.read(&old, g(0, 1)), ReadOutcome::Abort);
        s.abort(&old);
        assert_eq!(s.metrics().snapshot().rejections, 1);
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn write_over_younger_read_rejected() {
        let s = setup(true);
        let old = s.begin(&profile(0));
        let new = s.begin(&profile(0));
        assert!(matches!(s.read(&new, g(0, 1)), ReadOutcome::Value(_)));
        assert_eq!(s.write(&old, g(0, 1), Value::Int(5)), WriteOutcome::Abort);
        s.abort(&old);
        assert!(matches!(s.commit(&new), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn reads_block_on_uncommitted_write() {
        let s = setup(true);
        let w = s.begin(&profile(0));
        assert_eq!(s.write(&w, g(0, 1), Value::Int(5)), WriteOutcome::Done);
        let r = s.begin(&profile(0));
        assert_eq!(s.read(&r, g(0, 1)), ReadOutcome::Block);
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
        assert!(matches!(s.read(&r, g(0, 1)), ReadOutcome::Value(ref v) if **v == Value::Int(5)));
        assert!(matches!(s.commit(&r), CommitOutcome::Committed(_)));
    }

    #[test]
    fn every_controlled_read_registers() {
        let s = setup(true);
        let t = s.begin(&profile(0));
        s.read(&t, g(0, 1));
        s.read(&t, g(1, 1));
        assert_eq!(s.metrics().snapshot().read_registrations, 2);
        s.abort(&t);
    }

    #[test]
    fn broken_variant_skips_cross_reads() {
        let s = setup(false);
        let t = s.begin(&TxnProfile::update(ClassId(1), vec![SegmentId(0)]));
        assert!(matches!(s.read(&t, g(0, 1)), ReadOutcome::Value(_)));
        let m = s.metrics().snapshot();
        assert_eq!(m.read_registrations, 0);
        assert_eq!(m.cross_class_reads, 1);
        // Home reads still register.
        assert!(matches!(s.read(&t, g(1, 1)), ReadOutcome::Value(_)));
        assert_eq!(s.metrics().snapshot().read_registrations, 1);
        s.abort(&t);
    }

    #[test]
    fn aborted_writes_vanish() {
        let s = setup(true);
        let t = s.begin(&profile(0));
        s.write(&t, g(0, 1), Value::Int(99));
        s.abort(&t);
        assert_eq!(s.base.store.latest_value(g(0, 1)), Value::Int(10));
    }
}
