//! A centralized, simplified SDD-1-style scheduler (Bernstein 80):
//! conflict-graph pre-analysis plus serialized pipelining.
//!
//! SDD-1 analyzes transaction *classes* a priori and, where classes
//! conflict, forces their transactions through a timestamp-ordered
//! pipeline. This reduction keeps exactly that discipline and drops the
//! distributed machinery (see DESIGN.md, substitutions):
//!
//! * classes are declared up front with their read/write segment sets;
//! * classes `i`, `j` **conflict** when `w_i ∩ a_j ≠ ∅` or
//!   `w_j ∩ a_i ≠ ∅` (a class always conflicts with itself when it both
//!   reads and writes);
//! * a transaction's operations **wait** until every older active
//!   transaction of a conflicting class has finished — the pipelining
//!   that, per Figure 10, "may cause read requests to be rejected or
//!   blocked";
//! * once cleared, operations touch the latest committed state directly;
//!   no per-granule registration is needed because conflicting
//!   transactions never overlap.
//!
//! Read-only transactions receive "no special handling" (Figure 10):
//! they are treated as a class conflicting with every writer of the
//! segments they read.

use crate::common::Base;
use mvstore::MvStore;
use std::sync::Arc;
use txn_model::{
    CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleLog, Scheduler,
    SegmentId, Timestamp, TxnHandle, TxnId, TxnProfile, Value, WriteOutcome,
};

/// A declared transaction class for the conflict analysis.
#[derive(Debug, Clone)]
pub struct Sdd1Class {
    /// Segments this class writes.
    pub writes: Vec<SegmentId>,
    /// Segments this class reads.
    pub reads: Vec<SegmentId>,
}

impl Sdd1Class {
    fn accesses(&self) -> Vec<SegmentId> {
        let mut a = self.reads.clone();
        for &w in &self.writes {
            if !a.contains(&w) {
                a.push(w);
            }
        }
        a
    }
}

/// Simplified SDD-1 pipelining scheduler.
pub struct Sdd1Pipeline {
    base: Base,
    classes: Vec<Sdd1Class>,
    /// `conflicts[i][j]` — classes i and j must be pipelined.
    conflicts: Vec<Vec<bool>>,
}

impl Sdd1Pipeline {
    /// Build from declared classes. Class index in `classes` is the
    /// `ClassId` callers put in their profiles; read-only profiles are
    /// assigned a synthetic class conflicting with writers of what they
    /// read.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>, classes: Vec<Sdd1Class>) -> Self {
        let n = classes.len();
        let mut conflicts = vec![vec![false; n + 1]; n + 1];
        let overlap = |a: &[SegmentId], b: &[SegmentId]| a.iter().any(|x| b.contains(x));
        for i in 0..n {
            for j in 0..n {
                let c = overlap(&classes[i].writes, &classes[j].accesses())
                    || overlap(&classes[j].writes, &classes[i].accesses());
                conflicts[i][j] = c;
            }
        }
        Sdd1Pipeline {
            base: Base::new(store, clock),
            classes,
            conflicts,
        }
    }

    /// The synthetic class index for read-only transactions.
    fn ro_class(&self) -> usize {
        self.classes.len()
    }

    /// Class index from recorded transaction info.
    fn class_index_of(&self, info: &crate::common::TxnInfo) -> usize {
        info.class
            .map(txn_model::ClassId::index)
            .filter(|&c| c < self.classes.len())
            .unwrap_or(self.ro_class())
    }

    /// Does a transaction of class `a` (reads `ra` when read-only)
    /// conflict with one of class `b` (reads `rb`)? The synthetic
    /// read-only class conflicts with any class writing a segment it
    /// reads; two read-only transactions never conflict.
    fn conflict(&self, a: usize, ra: &[SegmentId], b: usize, rb: &[SegmentId]) -> bool {
        let n = self.classes.len();
        match (a == n, b == n) {
            (false, false) => self.conflicts[a][b],
            (true, false) => ra.iter().any(|s| self.classes[b].writes.contains(s)),
            (false, true) => rb.iter().any(|s| self.classes[a].writes.contains(s)),
            (true, true) => false,
        }
    }

    /// Pipelining gate: may `h` proceed? Blocks while an older active
    /// transaction of a conflicting class exists. (The transaction table
    /// holds exactly the active transactions: entries are removed at
    /// commit/abort.)
    fn gate(&self, h: &TxnHandle) -> bool {
        let txns = self.base.txns.lock();
        let Some(me) = txns.get(&h.id) else {
            return false;
        };
        let my_class = self.class_index_of(me);
        !txns.iter().any(|(id, other)| {
            *id != h.id
                && other.start < h.start_ts
                && self.conflict(
                    my_class,
                    &me.read_segments,
                    self.class_index_of(other),
                    &other.read_segments,
                )
        })
    }
}

impl Scheduler for Sdd1Pipeline {
    fn name(&self) -> &'static str {
        "sdd1"
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        self.base.begin(profile)
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        if !self.gate(h) {
            Metrics::bump(&self.base.metrics.blocks);
            return ReadOutcome::Block;
        }
        // Own buffered write first.
        {
            let txns = self.base.txns.lock();
            if let Some(info) = txns.get(&h.id) {
                if let Some(v) = info.buffer.get(&g) {
                    Metrics::bump(&self.base.metrics.reads);
                    return ReadOutcome::Value(Arc::new(v.clone()));
                }
            }
        }
        let (value, version, writer) =
            self.base
                .store
                .with_chain(g, |c| match c.latest_committed() {
                    Some(v) => (v.value.clone(), v.ts, v.writer),
                    None => (Arc::new(Value::Absent), Timestamp::ZERO, TxnId(0)),
                });
        self.base.log_read(h.id, g, version, writer);
        ReadOutcome::Value(value)
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        if !self.gate(h) {
            Metrics::bump(&self.base.metrics.blocks);
            return WriteOutcome::Block;
        }
        let mut txns = self.base.txns.lock();
        if let Some(info) = txns.get_mut(&h.id) {
            if !info.buffer.contains_key(&g) {
                info.buffer_order.push(g);
            }
            info.buffer.insert(g, v);
        }
        WriteOutcome::Done
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        // Commit must also respect the pipeline: an older conflicting
        // transaction may still be running (it will then be ordered
        // after us otherwise).
        if !self.gate(h) {
            Metrics::bump(&self.base.metrics.blocks);
            return CommitOutcome::Block;
        }
        let Some(info) = self.base.take(h.id) else {
            return CommitOutcome::Aborted;
        };
        let cts = self.base.commit_buffered(h.id, &info);
        CommitOutcome::Committed(cts)
    }

    fn abort(&self, h: &TxnHandle) {
        if self.base.take(h.id).is_some() {
            self.base.abort_buffered(h.id);
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.base.log
    }

    fn metrics(&self) -> &Metrics {
        &self.base.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, DependencyGraph};

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    /// Two classes: class 0 writes seg 0; class 1 writes seg 1 and reads
    /// seg 0 (conflicting with class 0). A third segment-2 class is
    /// independent.
    fn setup() -> Sdd1Pipeline {
        let store = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(5));
        store.seed(g(1, 1), Value::Int(0));
        store.seed(g(2, 1), Value::Int(0));
        Sdd1Pipeline::new(
            store,
            Arc::new(LogicalClock::new()),
            vec![
                Sdd1Class {
                    writes: vec![SegmentId(0)],
                    reads: vec![],
                },
                Sdd1Class {
                    writes: vec![SegmentId(1)],
                    reads: vec![SegmentId(0)],
                },
                Sdd1Class {
                    writes: vec![SegmentId(2)],
                    reads: vec![SegmentId(2)],
                },
            ],
        )
    }

    #[test]
    fn conflicting_classes_pipeline() {
        let s = setup();
        let older = s.begin(&TxnProfile::update(ClassId(0), vec![]));
        let newer = s.begin(&TxnProfile::update(ClassId(1), vec![SegmentId(0)]));
        // newer must wait for older (classes 0 and 1 conflict).
        assert_eq!(s.read(&newer, g(0, 1)), ReadOutcome::Block);
        assert_eq!(s.write(&older, g(0, 1), Value::Int(7)), WriteOutcome::Done);
        assert!(matches!(s.commit(&older), CommitOutcome::Committed(_)));
        // Pipeline cleared.
        assert!(
            matches!(s.read(&newer, g(0, 1)), ReadOutcome::Value(ref v) if **v == Value::Int(7))
        );
        assert_eq!(s.write(&newer, g(1, 1), Value::Int(1)), WriteOutcome::Done);
        assert!(matches!(s.commit(&newer), CommitOutcome::Committed(_)));
        assert!(s.metrics().snapshot().blocks >= 1);
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn non_conflicting_classes_run_freely() {
        let s = setup();
        let a = s.begin(&TxnProfile::update(ClassId(0), vec![]));
        let b = s.begin(&TxnProfile::update(ClassId(2), vec![SegmentId(2)]));
        // Class 2 does not conflict with class 0: no pipeline stall.
        assert!(matches!(s.read(&b, g(2, 1)), ReadOutcome::Value(_)));
        assert_eq!(s.write(&b, g(2, 1), Value::Int(9)), WriteOutcome::Done);
        assert!(matches!(s.commit(&b), CommitOutcome::Committed(_)));
        assert_eq!(s.write(&a, g(0, 1), Value::Int(1)), WriteOutcome::Done);
        assert!(matches!(s.commit(&a), CommitOutcome::Committed(_)));
        assert_eq!(s.metrics().snapshot().blocks, 0);
    }

    #[test]
    fn read_only_waits_for_writers_of_read_segments() {
        let s = setup();
        let w = s.begin(&TxnProfile::update(ClassId(0), vec![]));
        let ro = s.begin(&TxnProfile::read_only(vec![SegmentId(0)]));
        // SDD-1 gives read-only transactions no special handling: ro
        // pipelines behind the older conflicting writer.
        assert_eq!(s.read(&ro, g(0, 1)), ReadOutcome::Block);
        s.write(&w, g(0, 1), Value::Int(3));
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
        assert!(matches!(s.read(&ro, g(0, 1)), ReadOutcome::Value(ref v) if **v == Value::Int(3)));
        assert!(matches!(s.commit(&ro), CommitOutcome::Committed(_)));
    }

    #[test]
    fn read_only_transactions_never_conflict_with_each_other() {
        let s = setup();
        let ro1 = s.begin(&TxnProfile::read_only(vec![SegmentId(0)]));
        let ro2 = s.begin(&TxnProfile::read_only(vec![SegmentId(0)]));
        // Both proceed despite overlapping read sets: neither writes.
        assert!(matches!(s.read(&ro1, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(s.read(&ro2, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(s.commit(&ro2), CommitOutcome::Committed(_)));
        assert!(matches!(s.commit(&ro1), CommitOutcome::Committed(_)));
        assert_eq!(s.metrics().snapshot().blocks, 0);
    }

    #[test]
    fn younger_writer_waits_for_older_read_only() {
        let s = setup();
        // Older read-only over segment 0; younger class-0 writer must
        // pipeline behind it (no special handling cuts both ways).
        let ro = s.begin(&TxnProfile::read_only(vec![SegmentId(0)]));
        let w = s.begin(&TxnProfile::update(ClassId(0), vec![]));
        assert_eq!(s.write(&w, g(0, 1), Value::Int(1)), WriteOutcome::Block);
        assert!(matches!(s.read(&ro, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(s.commit(&ro), CommitOutcome::Committed(_)));
        assert_eq!(s.write(&w, g(0, 1), Value::Int(1)), WriteOutcome::Done);
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
    }

    #[test]
    fn no_read_registration_ever() {
        let s = setup();
        let t = s.begin(&TxnProfile::update(ClassId(1), vec![SegmentId(0)]));
        s.read(&t, g(0, 1));
        s.read(&t, g(1, 1));
        assert_eq!(s.metrics().snapshot().read_registrations, 0);
        s.abort(&t);
    }
}
