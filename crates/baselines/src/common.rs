//! Shared plumbing for baseline schedulers: per-transaction bookkeeping
//! and begin/commit/abort boilerplate over the common substrate.

use mvstore::MvStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txn_model::{
    ClassId, GranuleId, LogicalClock, Metrics, ScheduleEvent, ScheduleLog, SegmentId, Timestamp,
    TxnHandle, TxnId, TxnProfile, Value,
};

/// Live state of one baseline transaction.
#[derive(Debug, Default, Clone)]
pub struct TxnInfo {
    /// Granules with installed pending versions (install-at-write
    /// schedulers).
    pub write_set: Vec<GranuleId>,
    /// Buffered writes (install-at-commit schedulers).
    pub buffer: HashMap<GranuleId, Value>,
    /// Buffer insertion order (so installs replay in program order).
    pub buffer_order: Vec<GranuleId>,
    /// The transaction's class, if declared.
    pub class: Option<ClassId>,
    /// The segment the transaction writes ("home"), if any.
    pub home: Option<SegmentId>,
    /// Whether the transaction declared itself read-only.
    pub read_only: bool,
    /// Declared read segments (SDD-1 conflict gating).
    pub read_segments: Vec<SegmentId>,
    /// Initiation time.
    pub start: Timestamp,
}

/// Common fields of every baseline scheduler.
pub struct Base {
    /// Shared multi-version store.
    pub store: Arc<MvStore>,
    /// Shared logical clock.
    pub clock: Arc<LogicalClock>,
    /// Schedule log.
    pub log: ScheduleLog,
    /// Cost counters.
    pub metrics: Metrics,
    /// Transaction table.
    pub txns: Mutex<HashMap<TxnId, TxnInfo>>,
    next_txn: AtomicU64,
}

impl Base {
    /// Build over a store and clock.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>) -> Self {
        Base {
            store,
            clock,
            log: ScheduleLog::new(),
            metrics: Metrics::default(),
            txns: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
        }
    }

    /// Allocate a handle, record the begin, register the txn table entry.
    pub fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        // ordering: Relaxed — txn-id ticket; uniqueness comes from
        // fetch_add atomicity, and the id is published to other threads
        // via the `txns` mutex below, not via this atomic.
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        let start = self.clock.tick();
        Metrics::bump(&self.metrics.begins);
        self.log.record(ScheduleEvent::Begin {
            txn: id,
            start_ts: start,
            class: profile.class,
        });
        self.txns.lock().insert(
            id,
            TxnInfo {
                class: profile.class,
                home: profile.write_segments.first().copied(),
                read_only: profile.is_read_only(),
                read_segments: profile.read_segments.clone(),
                start,
                ..TxnInfo::default()
            },
        );
        TxnHandle {
            id,
            start_ts: start,
            class: profile.class,
        }
    }

    /// Record a read in the schedule log and count it.
    pub fn log_read(&self, txn: TxnId, g: GranuleId, version: Timestamp, writer: TxnId) {
        Metrics::bump(&self.metrics.reads);
        self.log.record(ScheduleEvent::Read {
            txn,
            granule: g,
            version,
            writer,
        });
    }

    /// Record a write in the schedule log and count it.
    pub fn log_write(&self, txn: TxnId, g: GranuleId, version: Timestamp, value: Arc<Value>) {
        Metrics::bump(&self.metrics.writes);
        self.log.record(ScheduleEvent::Write {
            txn,
            granule: g,
            version,
            value,
        });
    }

    /// Take the transaction's state out of the table.
    pub fn take(&self, id: TxnId) -> Option<TxnInfo> {
        self.txns.lock().remove(&id)
    }

    /// Mark a pending-version commit: flip commit bits, log, count.
    pub fn commit_installed(&self, id: TxnId, info: &TxnInfo) -> Timestamp {
        self.store.commit_writes(id, &info.write_set);
        let cts = self.clock.tick();
        self.log.record(ScheduleEvent::Commit {
            txn: id,
            commit_ts: cts,
        });
        Metrics::bump(&self.metrics.commits);
        cts
    }

    /// Abort cleanup for pending-version schedulers: remove versions,
    /// log, count.
    pub fn abort_installed(&self, id: TxnId, info: &TxnInfo) {
        self.store.abort_writes(id, &info.write_set);
        let abort_ts = self.clock.tick();
        self.log.record(ScheduleEvent::Abort { txn: id, abort_ts });
        Metrics::bump(&self.metrics.aborts);
    }

    /// Install the buffered writes at commit time (one fresh version
    /// timestamp per granule, already committed), log them, and finish
    /// the commit. Used by schedulers whose version order is the commit
    /// order (2PL family, no-control).
    pub fn commit_buffered(&self, id: TxnId, info: &TxnInfo) -> Timestamp {
        for &g in &info.buffer_order {
            let ts = self.clock.tick();
            let value = Arc::new(info.buffer[&g].clone());
            self.store.with_chain(g, |c| {
                let ok = c.install(ts, Arc::clone(&value), id, true);
                debug_assert!(ok, "commit ticks are unique");
            });
            self.log_write(id, g, ts, value);
        }
        let cts = self.clock.tick();
        self.log.record(ScheduleEvent::Commit {
            txn: id,
            commit_ts: cts,
        });
        Metrics::bump(&self.metrics.commits);
        cts
    }

    /// Abort for buffered-write schedulers: nothing was installed.
    pub fn abort_buffered(&self, id: TxnId) {
        let abort_ts = self.clock.tick();
        self.log.record(ScheduleEvent::Abort { txn: id, abort_ts });
        Metrics::bump(&self.metrics.aborts);
    }
}
