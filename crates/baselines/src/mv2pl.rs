//! Multi-version two-phase locking (Bayer 80 / Chan 82 style).
//!
//! Update transactions run strict 2PL (shared locks on reads, exclusive
//! locks on writes, buffered installs at commit). **Read-only
//! transactions take no locks at all**: they read the latest version
//! committed before their initiation time — versions are numbered by
//! commit ticks, so `latest_committed_before(start)` is exactly the
//! committed snapshot at start.
//!
//! This is the paper's Figure 10 "MV2PL" column: read-only transactions
//! are never blocked or rejected, but *update* transactions still pay a
//! read registration (S-lock) for every read, including cross-class
//! reads — which is precisely the overhead HDD Protocol A removes.

use crate::common::Base;
use mvstore::{LockMode, LockRequestResult, LockTable, MvStore};
use std::sync::Arc;
use txn_model::{
    CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleLog, Scheduler,
    Timestamp, TxnHandle, TxnId, TxnProfile, Value, WriteOutcome,
};

/// Multiversion 2PL.
pub struct Mv2pl {
    base: Base,
    locks: LockTable,
}

impl Mv2pl {
    /// Build over a store and clock.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>) -> Self {
        Mv2pl {
            base: Base::new(store, clock),
            locks: LockTable::new(),
        }
    }

    fn snapshot_read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        let (value, version, writer) =
            self.base
                .store
                .with_chain(g, |c| match c.latest_committed_before(h.start_ts) {
                    Some(v) => (v.value.clone(), v.ts, v.writer),
                    None => (Arc::new(Value::Absent), Timestamp::ZERO, TxnId(0)),
                });
        self.base.log_read(h.id, g, version, writer);
        ReadOutcome::Value(value)
    }

    fn current_read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        {
            let txns = self.base.txns.lock();
            if let Some(info) = txns.get(&h.id) {
                if let Some(v) = info.buffer.get(&g) {
                    Metrics::bump(&self.base.metrics.reads);
                    return ReadOutcome::Value(Arc::new(v.clone()));
                }
            }
        }
        let (value, version, writer) =
            self.base
                .store
                .with_chain(g, |c| match c.latest_committed() {
                    Some(v) => (v.value.clone(), v.ts, v.writer),
                    None => (Arc::new(Value::Absent), Timestamp::ZERO, TxnId(0)),
                });
        self.base.log_read(h.id, g, version, writer);
        ReadOutcome::Value(value)
    }
}

impl Scheduler for Mv2pl {
    fn name(&self) -> &'static str {
        "mv2pl"
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        self.base.begin(profile)
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        let read_only = self
            .base
            .txns
            .lock()
            .get(&h.id)
            .is_some_and(|i| i.read_only);
        if read_only {
            // Lock-free committed snapshot.
            Metrics::bump(&self.base.metrics.wall_reads);
            return self.snapshot_read(h, g);
        }
        match self.locks.try_acquire(h.id, g, LockMode::Shared) {
            LockRequestResult::Granted => {
                Metrics::bump(&self.base.metrics.read_registrations);
                self.current_read(h, g)
            }
            LockRequestResult::Waiting => {
                Metrics::bump(&self.base.metrics.blocks);
                ReadOutcome::Block
            }
            LockRequestResult::Deadlock => {
                Metrics::bump(&self.base.metrics.deadlocks);
                self.base.metrics.reject(
                    obs::RejectReason::DeadlockVictim,
                    h.id.0,
                    g.segment.0,
                    g.key,
                );
                ReadOutcome::Abort
            }
        }
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        match self.locks.try_acquire(h.id, g, LockMode::Exclusive) {
            LockRequestResult::Granted => {
                Metrics::bump(&self.base.metrics.write_registrations);
                let mut txns = self.base.txns.lock();
                if let Some(info) = txns.get_mut(&h.id) {
                    if !info.buffer.contains_key(&g) {
                        info.buffer_order.push(g);
                    }
                    info.buffer.insert(g, v);
                }
                WriteOutcome::Done
            }
            LockRequestResult::Waiting => {
                Metrics::bump(&self.base.metrics.blocks);
                WriteOutcome::Block
            }
            LockRequestResult::Deadlock => {
                Metrics::bump(&self.base.metrics.deadlocks);
                self.base.metrics.reject(
                    obs::RejectReason::DeadlockVictim,
                    h.id.0,
                    g.segment.0,
                    g.key,
                );
                WriteOutcome::Abort
            }
        }
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        let Some(info) = self.base.take(h.id) else {
            return CommitOutcome::Aborted;
        };
        let cts = self.base.commit_buffered(h.id, &info);
        self.locks.release_all(h.id);
        CommitOutcome::Committed(cts)
    }

    fn abort(&self, h: &TxnHandle) {
        if self.base.take(h.id).is_some() {
            self.base.abort_buffered(h.id);
            self.locks.release_all(h.id);
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.base.log
    }

    fn metrics(&self) -> &Metrics {
        &self.base.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, DependencyGraph, SegmentId};

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn setup() -> Mv2pl {
        let store = Arc::new(MvStore::new());
        store.seed(g(1), Value::Int(10));
        store.seed(g(2), Value::Int(20));
        Mv2pl::new(store, Arc::new(LogicalClock::new()))
    }

    fn update() -> TxnProfile {
        TxnProfile::update(ClassId(0), vec![SegmentId(0)])
    }

    fn readonly() -> TxnProfile {
        TxnProfile::read_only(vec![SegmentId(0)])
    }

    #[test]
    fn read_only_never_blocks_despite_writer() {
        let s = setup();
        let w = s.begin(&update());
        assert_eq!(s.write(&w, g(1), Value::Int(99)), WriteOutcome::Done);
        // Reader starts while the write lock is held: no block, sees the
        // pre-write snapshot.
        let r = s.begin(&readonly());
        assert!(matches!(s.read(&r, g(1)), ReadOutcome::Value(ref v) if **v == Value::Int(10)));
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
        // Still the snapshot from its start.
        assert!(matches!(s.read(&r, g(1)), ReadOutcome::Value(ref v) if **v == Value::Int(10)));
        assert!(matches!(s.commit(&r), CommitOutcome::Committed(_)));
        let m = s.metrics().snapshot();
        assert_eq!(m.blocks, 0);
        // Reader registered nothing.
        assert_eq!(m.read_registrations, 0);
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn snapshot_is_consistent_across_granules() {
        let s = setup();
        let r = s.begin(&readonly());
        // A writer commits to both granules after r started.
        let w = s.begin(&update());
        s.write(&w, g(1), Value::Int(11));
        s.write(&w, g(2), Value::Int(21));
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
        // r sees neither write.
        assert!(matches!(s.read(&r, g(1)), ReadOutcome::Value(ref v) if **v == Value::Int(10)));
        assert!(matches!(s.read(&r, g(2)), ReadOutcome::Value(ref v) if **v == Value::Int(20)));
        assert!(matches!(s.commit(&r), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn update_transactions_still_lock() {
        let s = setup();
        let a = s.begin(&update());
        assert!(matches!(s.read(&a, g(1)), ReadOutcome::Value(_)));
        assert_eq!(s.metrics().snapshot().read_registrations, 1);
        let b = s.begin(&update());
        assert_eq!(s.write(&b, g(1), Value::Int(0)), WriteOutcome::Block);
        s.abort(&a);
        assert_eq!(s.write(&b, g(1), Value::Int(0)), WriteOutcome::Done);
        assert!(matches!(s.commit(&b), CommitOutcome::Committed(_)));
    }
}
