//! # baselines — comparator concurrency controls
//!
//! Every scheduler the paper positions HDD against (Figure 10 and the
//! anomaly constructions of Figures 1, 3 and 4), implemented behind the
//! same `Scheduler` interface as the HDD
//! scheduler:
//!
//! * [`two_pl::TwoPhaseLocking`] — strict 2PL with a
//!   waits-for deadlock detector. Its `cross_segment_read_locks = false`
//!   variant is the deliberately broken protocol of **Figure 3** (type-3
//!   transactions skip read locks outside their home segment).
//! * [`tso::BasicTso`] — basic timestamp ordering. Its
//!   `register_cross_segment_reads = false` variant is the broken
//!   protocol of **Figure 4**.
//! * [`mvto::Mvto`] — Reed's multi-version timestamp ordering,
//!   applied uniformly to every segment (what HDD's Protocol B uses
//!   inside the root segment — running it everywhere quantifies exactly
//!   what Protocol A saves).
//! * [`mv2pl::Mv2pl`] — multiversion two-phase locking in the
//!   style the paper cites (Bayer 80 / Chan 82): update transactions use
//!   strict 2PL; read-only transactions read a committed snapshot
//!   lock-free.
//! * [`sdd1::Sdd1Pipeline`] — a centralized reduction of
//!   SDD-1's conflict-graph analysis: transactions of conflicting classes
//!   are pipelined in initiation order (see DESIGN.md for the
//!   substitution rationale).
//! * [`nocontrol::NoControl`] — no concurrency control at all;
//!   the **Figure 1** lost-update demonstration.

#![warn(missing_docs)]

mod common;
pub mod mv2pl;
pub mod mvto;
pub mod nocontrol;
pub mod sdd1;
pub mod tso;
pub mod two_pl;

pub use mv2pl::Mv2pl;
pub use mvto::Mvto;
pub use nocontrol::NoControl;
pub use sdd1::Sdd1Pipeline;
pub use tso::BasicTso;
pub use two_pl::TwoPhaseLocking;
