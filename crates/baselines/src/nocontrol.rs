//! No concurrency control at all — the Figure 1 demonstration baseline.
//!
//! Reads see the latest committed value; writes are buffered and
//! installed at commit; nothing is checked, registered or blocked.
//! Concurrent read-modify-write transactions therefore exhibit exactly
//! the lost-update anomaly of Figure 1: both read the same old balance
//! and the second commit silently overwrites the first (experiment E1
//! counts the lost money).

use crate::common::Base;
use mvstore::MvStore;
use std::sync::Arc;
use txn_model::{
    CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleLog, Scheduler,
    Timestamp, TxnHandle, TxnId, TxnProfile, Value, WriteOutcome,
};

/// The absence of a concurrency control.
pub struct NoControl {
    base: Base,
}

impl NoControl {
    /// Build over a store and clock.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>) -> Self {
        NoControl {
            base: Base::new(store, clock),
        }
    }
}

impl Scheduler for NoControl {
    fn name(&self) -> &'static str {
        "nocontrol"
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        self.base.begin(profile)
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        {
            let txns = self.base.txns.lock();
            if let Some(info) = txns.get(&h.id) {
                if let Some(v) = info.buffer.get(&g) {
                    Metrics::bump(&self.base.metrics.reads);
                    return ReadOutcome::Value(Arc::new(v.clone()));
                }
            }
        }
        let (value, version, writer) =
            self.base
                .store
                .with_chain(g, |c| match c.latest_committed() {
                    Some(v) => (v.value.clone(), v.ts, v.writer),
                    None => (Arc::new(Value::Absent), Timestamp::ZERO, TxnId(0)),
                });
        self.base.log_read(h.id, g, version, writer);
        ReadOutcome::Value(value)
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        let mut txns = self.base.txns.lock();
        if let Some(info) = txns.get_mut(&h.id) {
            if !info.buffer.contains_key(&g) {
                info.buffer_order.push(g);
            }
            info.buffer.insert(g, v);
        }
        WriteOutcome::Done
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        let Some(info) = self.base.take(h.id) else {
            return CommitOutcome::Aborted;
        };
        CommitOutcome::Committed(self.base.commit_buffered(h.id, &info))
    }

    fn abort(&self, h: &TxnHandle) {
        if self.base.take(h.id).is_some() {
            self.base.abort_buffered(h.id);
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.base.log
    }

    fn metrics(&self) -> &Metrics {
        &self.base.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, SegmentId};

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn setup() -> NoControl {
        let store = Arc::new(MvStore::new());
        store.seed(g(1), Value::Int(100));
        NoControl::new(store, Arc::new(LogicalClock::new()))
    }

    fn profile() -> TxnProfile {
        TxnProfile::update(ClassId(0), vec![SegmentId(0)])
    }

    #[test]
    fn lost_update_figure_1() {
        // The paper's Figure 1, step for step: t1 deposits 50, t2
        // withdraws 50; interleaved, the final balance reflects only one.
        let s = setup();
        let t1 = s.begin(&profile());
        let t2 = s.begin(&profile());
        let b1 = match s.read(&t1, g(1)) {
            ReadOutcome::Value(v) => v.as_int(),
            _ => panic!(),
        };
        let b2 = match s.read(&t2, g(1)) {
            ReadOutcome::Value(v) => v.as_int(),
            _ => panic!(),
        };
        assert_eq!((b1, b2), (100, 100)); // both read the old balance
        s.write(&t1, g(1), Value::Int(b1 + 50));
        s.write(&t2, g(1), Value::Int(b2 - 50));
        s.commit(&t1);
        s.commit(&t2);
        // Correct result would be 100; one update is lost.
        assert_eq!(s.base.store.latest_value(g(1)), Value::Int(50));
    }

    #[test]
    fn no_overhead_whatsoever() {
        let s = setup();
        let t = s.begin(&profile());
        s.read(&t, g(1));
        s.write(&t, g(1), Value::Int(1));
        s.commit(&t);
        let m = s.metrics().snapshot();
        assert_eq!(m.read_registrations, 0);
        assert_eq!(m.blocks, 0);
        assert_eq!(m.rejections, 0);
    }
}
