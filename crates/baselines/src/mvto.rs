//! Reed's multi-version timestamp ordering, applied uniformly.
//!
//! Every read selects the latest version older than the transaction's
//! timestamp and **registers a read timestamp on that version**; every
//! write is rejected if it would invalidate a younger read. This is
//! exactly what HDD's Protocol B does *inside* the root segment — running
//! it for every access quantifies the registration and rejection overhead
//! Protocol A removes for cross-class reads.

use crate::common::Base;
use mvstore::{MvStore, MvtoReadResult, MvtoWriteResult};
use std::sync::Arc;
use txn_model::{
    CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleLog, Scheduler,
    TxnHandle, TxnProfile, Value, WriteOutcome,
};

/// Multi-version timestamp ordering.
pub struct Mvto {
    base: Base,
}

impl Mvto {
    /// Build over a store and clock.
    pub fn new(store: Arc<MvStore>, clock: Arc<LogicalClock>) -> Self {
        Mvto {
            base: Base::new(store, clock),
        }
    }
}

impl Scheduler for Mvto {
    fn name(&self) -> &'static str {
        "mvto"
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        self.base.begin(profile)
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        let r = self.base.store.with_chain(g, |c| c.mvto_read(h.start_ts));
        match r {
            MvtoReadResult::Value {
                value,
                version,
                writer,
            } => {
                Metrics::bump(&self.base.metrics.read_registrations);
                self.base.log_read(h.id, g, version, writer);
                ReadOutcome::Value(value)
            }
            MvtoReadResult::BlockOn(_) => {
                Metrics::bump(&self.base.metrics.blocks);
                ReadOutcome::Block
            }
        }
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        let v = Arc::new(v);
        let value = Arc::clone(&v);
        let r = self
            .base
            .store
            .with_chain(g, |c| c.mvto_write(h.start_ts, value, h.id));
        match r {
            MvtoWriteResult::Installed => {
                Metrics::bump(&self.base.metrics.write_registrations);
                self.base.log_write(h.id, g, h.start_ts, v);
                let mut txns = self.base.txns.lock();
                if let Some(info) = txns.get_mut(&h.id) {
                    if !info.write_set.contains(&g) {
                        info.write_set.push(g);
                    }
                }
                WriteOutcome::Done
            }
            MvtoWriteResult::Rejected => {
                self.base.metrics.reject(
                    obs::RejectReason::WriteTooLate,
                    h.id.0,
                    g.segment.0,
                    g.key,
                );
                WriteOutcome::Abort
            }
            MvtoWriteResult::Blocked => {
                Metrics::bump(&self.base.metrics.blocks);
                WriteOutcome::Block
            }
        }
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        let Some(info) = self.base.take(h.id) else {
            return CommitOutcome::Aborted;
        };
        CommitOutcome::Committed(self.base.commit_installed(h.id, &info))
    }

    fn abort(&self, h: &TxnHandle) {
        if let Some(info) = self.base.take(h.id) {
            self.base.abort_installed(h.id, &info);
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.base.log
    }

    fn metrics(&self) -> &Metrics {
        &self.base.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, DependencyGraph, SegmentId};

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn setup() -> Mvto {
        let store = Arc::new(MvStore::new());
        store.seed(g(1), Value::Int(10));
        Mvto::new(store, Arc::new(LogicalClock::new()))
    }

    fn profile() -> TxnProfile {
        TxnProfile::update(ClassId(0), vec![SegmentId(0)])
    }

    #[test]
    fn old_reader_sees_old_version() {
        let s = setup();
        let old = s.begin(&profile());
        let new = s.begin(&profile());
        assert_eq!(s.write(&new, g(1), Value::Int(20)), WriteOutcome::Done);
        assert!(matches!(s.commit(&new), CommitOutcome::Committed(_)));
        // Unlike basic TSO, the old reader is served the old version.
        assert!(matches!(s.read(&old, g(1)), ReadOutcome::Value(ref v) if **v == Value::Int(10)));
        assert!(matches!(s.commit(&old), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }

    #[test]
    fn write_invalidating_young_read_rejected() {
        let s = setup();
        let old = s.begin(&profile());
        let new = s.begin(&profile());
        assert!(matches!(s.read(&new, g(1)), ReadOutcome::Value(_)));
        assert_eq!(s.write(&old, g(1), Value::Int(5)), WriteOutcome::Abort);
        s.abort(&old);
        assert!(matches!(s.commit(&new), CommitOutcome::Committed(_)));
        assert_eq!(s.metrics().snapshot().rejections, 1);
    }

    #[test]
    fn every_read_registers() {
        let s = setup();
        let t = s.begin(&profile());
        s.read(&t, g(1));
        s.read(&t, g(2));
        assert_eq!(s.metrics().snapshot().read_registrations, 2);
        s.abort(&t);
    }

    #[test]
    fn reader_blocks_on_pending_then_proceeds() {
        let s = setup();
        let w = s.begin(&profile());
        s.write(&w, g(1), Value::Int(99));
        let r = s.begin(&profile());
        assert_eq!(s.read(&r, g(1)), ReadOutcome::Block);
        assert!(matches!(s.commit(&w), CommitOutcome::Committed(_)));
        assert!(matches!(s.read(&r, g(1)), ReadOutcome::Value(ref v) if **v == Value::Int(99)));
        assert!(matches!(s.commit(&r), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(s.log()).is_serializable());
    }
}
