//! Deterministic step scripts: exact interleavings of named transactions.
//!
//! The anomaly constructions of Figures 3 and 4 are *specific timings* —
//! "a timing of these three transactions can be found such that ...
//! violation of serializability occurs". A [`Script`] pins such a timing:
//! a fixed list of per-transaction steps that a driver replays against
//! any scheduler. Blocking and rejection are scheduler-dependent, so the
//! runner (in the `sim` crate) retries blocked steps and skips the
//! remaining steps of aborted transactions; the *attempted order* is what
//! the script fixes.

use txn_model::{GranuleId, TxnProfile, Value};

/// One scripted action of one transaction (identified by index into
/// [`Script::transactions`]).
#[derive(Debug, Clone)]
pub enum ScriptAction {
    /// Begin the transaction.
    Begin,
    /// Read a granule.
    Read(GranuleId),
    /// Write a constant.
    Write(GranuleId, Value),
    /// Write the value last read from the first granule plus a delta
    /// (read-modify-write convenience).
    WriteDerived {
        /// Granule to write.
        target: GranuleId,
        /// Granule whose last-read value is the base.
        base: GranuleId,
        /// Delta added to the base.
        delta: i64,
    },
    /// Commit the transaction.
    Commit,
    /// Abort the transaction voluntarily (used by the dirty-read script:
    /// the writer backs out after a competitor read its version).
    Abort,
}

/// A scripted step: which transaction acts, and how.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    /// Index into [`Script::transactions`].
    pub txn: usize,
    /// The action.
    pub action: ScriptAction,
}

/// A deterministic multi-transaction interleaving.
#[derive(Debug, Clone)]
pub struct Script {
    /// Script name ("figure3", ...).
    pub name: &'static str,
    /// Profiles of the participating transactions.
    pub transactions: Vec<TxnProfile>,
    /// Steps in global order.
    pub steps: Vec<ScriptStep>,
    /// Granules that must exist (seeded to the given values) before the
    /// script runs.
    pub setup: Vec<(GranuleId, Value)>,
}

impl Script {
    /// Convenience step constructor.
    pub fn step(txn: usize, action: ScriptAction) -> ScriptStep {
        ScriptStep { txn, action }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{ClassId, SegmentId};

    #[test]
    fn script_construction() {
        let g = GranuleId::new(SegmentId(0), 1);
        let s = Script {
            name: "demo",
            transactions: vec![TxnProfile::update(ClassId(0), vec![SegmentId(0)])],
            steps: vec![
                Script::step(0, ScriptAction::Begin),
                Script::step(0, ScriptAction::Read(g)),
                Script::step(0, ScriptAction::Commit),
            ],
            setup: vec![(g, Value::Int(1))],
        };
        assert_eq!(s.steps.len(), 3);
        assert_eq!(s.steps[1].txn, 0);
    }
}
