//! The scripted anomaly timings of Figures 1, 3 and 4.
//!
//! Segment layout (a cut of the inventory application):
//!
//! * `D0` — event records (the merchandise-arrival record `y`),
//! * `D1` — inventory levels,
//! * `D2` — merchandise-on-order records.
//!
//! Classes: type-1 writes `D0`; type-2 writes `D1`, reads `D0`; type-3
//! writes `D2`, reads `D0`, `D1`, `D2`. The DHG is the chain
//! `2 → 1 → 0`.
//!
//! **Figure 3 / 4 timing** (both use the same attempted order; the broken
//! scheduler variant determines whether it slips through):
//!
//! 1. `t3` (type-3) begins and reads the arrival record `y` — sees
//!    *absent* (not yet arrived);
//! 2. `t1` (type-1) begins, inserts `y`, commits;
//! 3. `t2` (type-2) begins, reads `y`, posts the new inventory level,
//!    commits;
//! 4. `t3` reads the inventory level and writes its reorder decision,
//!    commits.
//!
//! If step 4 sees `t2`'s inventory level, the dependency graph closes the
//! cycle `t2 → t1 → t3 → t2`: `t2` read `y` from `t1`; `t1` wrote the
//! successor of the `y`-version `t3` read; `t3` read inventory from
//! `t2`. Exactly the anomaly the paper draws in Figures 3 and 4.

use crate::script::{Script, ScriptAction, ScriptStep};
use crate::Workload;
use hdd::analysis::AccessSpec;
use mvstore::StorageBackend;
use rand::rngs::StdRng;
use txn_model::{ClassId, GranuleId, SegmentId, TxnProfile, TxnProgram, Value};

/// The three-segment inventory cut used by the anomaly scripts.
#[derive(Debug, Clone, Default)]
pub struct AnomalyWorkload;

/// The arrival record `y`.
pub fn granule_y() -> GranuleId {
    GranuleId::new(SegmentId(0), 1)
}

/// The inventory-level granule for the item.
pub fn granule_inventory() -> GranuleId {
    GranuleId::new(SegmentId(1), 1)
}

/// The merchandise-on-order granule for the item.
pub fn granule_order() -> GranuleId {
    GranuleId::new(SegmentId(2), 1)
}

impl Workload for AnomalyWorkload {
    fn name(&self) -> &'static str {
        "anomaly"
    }

    fn segments(&self) -> usize {
        3
    }

    fn segment_names(&self) -> Vec<String> {
        ["events", "inventory", "on-order"]
            .map(String::from)
            .to_vec()
    }

    fn specs(&self) -> Vec<AccessSpec> {
        let s = SegmentId;
        vec![
            AccessSpec::new("type1", vec![s(0)], vec![]),
            AccessSpec::new("type2", vec![s(1)], vec![s(0), s(1)]),
            AccessSpec::new("type3", vec![s(2)], vec![s(0), s(1), s(2)]),
        ]
    }

    fn seed(&self, store: &dyn StorageBackend) {
        store.seed(granule_y(), Value::Absent);
        store.seed(granule_inventory(), Value::Int(10));
        store.seed(granule_order(), Value::Int(0));
    }

    fn generate(&mut self, _rng: &mut StdRng) -> TxnProgram {
        unreachable!("anomaly workload is scripted; use figure3_script/figure4_script")
    }
}

fn profiles() -> Vec<TxnProfile> {
    let s = SegmentId;
    vec![
        // t3: type-3 (reorder decision).
        TxnProfile::update(ClassId(2), vec![s(0), s(1), s(2)]),
        // t1: type-1 (arrival insert).
        TxnProfile::update(ClassId(0), vec![]),
        // t2: type-2 (inventory posting).
        TxnProfile::update(ClassId(1), vec![s(0), s(1)]),
    ]
}

fn steps() -> Vec<ScriptStep> {
    let y = granule_y();
    let inv = granule_inventory();
    let ord = granule_order();
    vec![
        // 1. t3 starts and reads the arrival record (absent).
        Script::step(0, ScriptAction::Begin),
        Script::step(0, ScriptAction::Read(y)),
        // 2. t1 inserts the arrival and commits.
        Script::step(1, ScriptAction::Begin),
        Script::step(1, ScriptAction::Write(y, Value::Int(25))),
        Script::step(1, ScriptAction::Commit),
        // 3. t2 reads the arrival, posts inventory, commits.
        Script::step(2, ScriptAction::Begin),
        Script::step(2, ScriptAction::Read(y)),
        Script::step(
            2,
            ScriptAction::WriteDerived {
                target: inv,
                base: y,
                delta: 10,
            },
        ),
        Script::step(2, ScriptAction::Commit),
        // 4. t3 reads inventory and writes the reorder decision.
        Script::step(0, ScriptAction::Read(inv)),
        Script::step(
            0,
            ScriptAction::WriteDerived {
                target: ord,
                base: inv,
                delta: 1,
            },
        ),
        Script::step(0, ScriptAction::Commit),
    ]
}

fn setup() -> Vec<(GranuleId, Value)> {
    vec![
        (granule_y(), Value::Absent),
        (granule_inventory(), Value::Int(10)),
        (granule_order(), Value::Int(0)),
    ]
}

/// The Figure 3 timing (run it against 2PL with and without cross-segment
/// read locks, and against HDD).
pub fn figure3_script() -> Script {
    Script {
        name: "figure3",
        transactions: profiles(),
        steps: steps(),
        setup: setup(),
    }
}

/// The Figure 4 timing (run it against TSO with and without cross-segment
/// read timestamps, and against HDD). The attempted order is the same;
/// the timestamps assigned at `Begin` are what TSO reasons about.
pub fn figure4_script() -> Script {
    Script {
        name: "figure4",
        transactions: profiles(),
        steps: steps(),
        setup: setup(),
    }
}

/// Lost update: two type-2 transactions read the same inventory level and
/// both write back a derived value. Without control both base their write
/// on the initial version — the first update is silently overwritten and
/// the dependency graph closes a two-cycle (each writer must follow the
/// other's read of `d^0`).
pub fn lost_update_script() -> Script {
    let inv = granule_inventory();
    let s = SegmentId;
    Script {
        name: "lost-update",
        transactions: vec![
            TxnProfile::update(ClassId(1), vec![s(1)]),
            TxnProfile::update(ClassId(1), vec![s(1)]),
        ],
        steps: vec![
            Script::step(0, ScriptAction::Begin),
            Script::step(1, ScriptAction::Begin),
            Script::step(0, ScriptAction::Read(inv)),
            Script::step(1, ScriptAction::Read(inv)),
            Script::step(
                0,
                ScriptAction::WriteDerived {
                    target: inv,
                    base: inv,
                    delta: 5,
                },
            ),
            Script::step(
                1,
                ScriptAction::WriteDerived {
                    target: inv,
                    base: inv,
                    delta: -3,
                },
            ),
            Script::step(0, ScriptAction::Commit),
            Script::step(1, ScriptAction::Commit),
        ],
        setup: vec![(granule_inventory(), Value::Int(10))],
    }
}

/// Dirty read: a type-2 transaction writes the inventory level, a
/// read-only transaction reads that uncommitted version and commits, then
/// the writer aborts. The committed read observed data that never
/// existed; [`txn_model::DependencyGraph::dirty_reads`] counts it.
pub fn dirty_read_script() -> Script {
    let inv = granule_inventory();
    let s = SegmentId;
    Script {
        name: "dirty-read",
        transactions: vec![
            TxnProfile::update(ClassId(1), vec![s(1)]),
            TxnProfile::read_only(vec![s(1)]),
        ],
        steps: vec![
            Script::step(0, ScriptAction::Begin),
            Script::step(0, ScriptAction::Write(inv, Value::Int(99))),
            Script::step(1, ScriptAction::Begin),
            Script::step(1, ScriptAction::Read(inv)),
            Script::step(1, ScriptAction::Commit),
            Script::step(0, ScriptAction::Abort),
        ],
        setup: vec![(granule_inventory(), Value::Int(10))],
    }
}

/// Write skew: one transaction reads merchandise-on-order and writes
/// inventory, the other reads inventory and writes merchandise-on-order.
/// Each write invalidates the premise of the other's read; without
/// control both commit and the dependency graph closes the two-cycle.
///
/// Note the first profile reads a *non-ancestor* segment (`D2` from class
/// 1), so this shape is **illegal under the anomaly hierarchy** — HDD's
/// analysis rejects it a priori (exactly what `hdd-lint` demonstrates)
/// and the script may only be replayed against the baselines.
pub fn write_skew_script() -> Script {
    let inv = granule_inventory();
    let ord = granule_order();
    let s = SegmentId;
    Script {
        name: "write-skew",
        transactions: vec![
            TxnProfile::update(ClassId(1), vec![s(2)]),
            TxnProfile::update(ClassId(2), vec![s(1)]),
        ],
        steps: vec![
            Script::step(0, ScriptAction::Begin),
            Script::step(1, ScriptAction::Begin),
            Script::step(0, ScriptAction::Read(ord)),
            Script::step(1, ScriptAction::Read(inv)),
            Script::step(
                0,
                ScriptAction::WriteDerived {
                    target: inv,
                    base: ord,
                    delta: 1,
                },
            ),
            Script::step(
                1,
                ScriptAction::WriteDerived {
                    target: ord,
                    base: inv,
                    delta: 1,
                },
            ),
            Script::step(0, ScriptAction::Commit),
            Script::step(1, ScriptAction::Commit),
        ],
        setup: vec![
            (granule_inventory(), Value::Int(10)),
            (granule_order(), Value::Int(0)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_share_the_attempted_order() {
        let f3 = figure3_script();
        let f4 = figure4_script();
        assert_eq!(f3.steps.len(), f4.steps.len());
        assert_eq!(f3.transactions.len(), 3);
        // t3 acts first and last.
        assert_eq!(f3.steps.first().unwrap().txn, 0);
        assert_eq!(f3.steps.last().unwrap().txn, 0);
    }

    #[test]
    fn anomaly_hierarchy_is_the_inventory_chain() {
        let w = AnomalyWorkload;
        let h = w.hierarchy();
        assert!(h.higher_than(ClassId(0), ClassId(2)));
        assert!(h.higher_than(ClassId(1), ClassId(2)));
        assert!(h.higher_than(ClassId(0), ClassId(1)));
    }
}
