//! # workloads — transaction generators for the HDD reproduction
//!
//! * [`banking`] — the Figure 1 bank-account workload (lost-update
//!   demonstration, experiment E1);
//! * [`inventory`] — the paper's Section 1.2 retail inventory application
//!   (Figure 2), extended with the supplier-profile level of
//!   Section 1.2.2 and an off-chain accounting branch so every protocol
//!   (A, B and C) is exercised — experiments E2, E8 and E10;
//! * [`synthetic`] — parameterized hierarchy workloads (depth, fan-out,
//!   skew, read-only share) for the sweeps;
//! * [`anomalies`] — the *scripted* interleavings of Figures 3 and 4;
//! * [`script`] — the deterministic step-script vocabulary those use;
//! * [`zipf`] — a Zipf sampler for skewed granule choice.

#![warn(missing_docs)]

pub mod anomalies;
pub mod banking;
pub mod inventory;
pub mod script;
pub mod synthetic;
pub mod zipf;

use hdd::analysis::{AccessSpec, Hierarchy};
use rand::rngs::StdRng;
use txn_model::TxnProgram;

/// A transaction workload: hierarchy description, store seeding, and a
/// transaction-program generator.
pub trait Workload {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Number of physical segments.
    fn segments(&self) -> usize;

    /// The class access specs (transaction analysis input).
    fn specs(&self) -> Vec<AccessSpec>;

    /// Human-readable segment names, used by `hdd-lint` diagnostics and
    /// profile-violation messages. Defaults to `D{i}`.
    fn segment_names(&self) -> Vec<String> {
        (0..self.segments()).map(|i| format!("D{i}")).collect()
    }

    /// The validated hierarchy (all bundled workloads are legal TSTs).
    fn hierarchy(&self) -> Hierarchy {
        Hierarchy::build(self.segments(), &self.specs())
            .expect("bundled workloads are TST-hierarchical")
            .with_segment_names(self.segment_names())
    }

    /// Seed initial data into a storage backend (any
    /// [`mvstore::StorageBackend`]; `&MvStore` coerces).
    fn seed(&self, store: &dyn mvstore::StorageBackend);

    /// Generate the next transaction program.
    fn generate(&mut self, rng: &mut StdRng) -> TxnProgram;
}
