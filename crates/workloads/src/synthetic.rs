//! Parameterized synthetic hierarchy workloads.
//!
//! The paper's advantage grows with the share of cross-class reads and
//! the depth of the hierarchy; this generator sweeps exactly those
//! parameters. The hierarchy is a complete tree of the given depth and
//! fan-out with arcs pointing child → parent (a transaction class reads
//! its ancestors and writes its own segment), which is always a
//! transitive semi-tree.

use crate::zipf::Zipf;
use crate::Workload;
use hdd::analysis::AccessSpec;
use mvstore::StorageBackend;
use rand::rngs::StdRng;
use rand::Rng;
use txn_model::{ClassId, GranuleId, SegmentId, TxnProfile, TxnProgram, Value};

/// Configuration of the synthetic workload.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Tree depth (1 = a single root segment).
    pub depth: usize,
    /// Children per node.
    pub fanout: usize,
    /// Granules per segment.
    pub granules_per_segment: u64,
    /// Reads per ancestor segment in an update transaction.
    pub reads_per_ancestor: usize,
    /// Zipf exponent over granule keys (0 = uniform).
    pub theta: f64,
    /// Probability a generated transaction is read-only.
    pub read_only_share: f64,
    /// Probability a read-only transaction reads across branches
    /// (off one critical path → Protocol C under HDD).
    pub off_chain_share: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            depth: 3,
            fanout: 2,
            granules_per_segment: 128,
            reads_per_ancestor: 2,
            theta: 0.8,
            read_only_share: 0.2,
            off_chain_share: 0.5,
        }
    }
}

/// The synthetic tree workload.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// Configuration.
    pub config: SyntheticConfig,
    /// Parent of each segment (root = None).
    parent: Vec<Option<usize>>,
    /// Leaves of the tree.
    leaves: Vec<usize>,
    zipf: Zipf,
}

impl Synthetic {
    /// Build the tree.
    pub fn new(config: SyntheticConfig) -> Self {
        assert!(config.depth >= 1);
        assert!(config.fanout >= 1);
        // Breadth-first numbering: 0 is the root.
        let mut parent: Vec<Option<usize>> = vec![None];
        let mut frontier = vec![0usize];
        for _ in 1..config.depth {
            let mut next = Vec::new();
            for &p in &frontier {
                for _ in 0..config.fanout {
                    let id = parent.len();
                    parent.push(Some(p));
                    next.push(id);
                }
            }
            frontier = next;
        }
        let leaves = frontier;
        let zipf = Zipf::new(config.granules_per_segment as usize, config.theta);
        Synthetic {
            config,
            parent,
            leaves,
            zipf,
        }
    }

    /// Number of segments in the tree.
    pub fn segment_count(&self) -> usize {
        self.parent.len()
    }

    /// Ancestors of `seg` (excluding itself), nearest first.
    pub fn ancestors(&self, seg: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.parent[seg];
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent[p];
        }
        out
    }

    fn granule(&self, seg: usize, rng: &mut StdRng) -> GranuleId {
        GranuleId::new(SegmentId(seg as u32), self.zipf.sample(rng) as u64)
    }

    fn update_txn(&self, rng: &mut StdRng) -> TxnProgram {
        let seg = rng.gen_range(0..self.segment_count());
        let ancestors = self.ancestors(seg);
        let mut b = TxnProgram::builder(format!("update-c{seg}"));
        for &a in &ancestors {
            for _ in 0..self.config.reads_per_ancestor {
                b = b.read(self.granule(a, rng));
            }
        }
        let own = self.granule(seg, rng);
        b = b.read(own);
        b = b.write_computed(own, move |ctx| Value::Int(ctx.int(own) + 1));
        let mut read_segs: Vec<SegmentId> =
            ancestors.iter().map(|&a| SegmentId(a as u32)).collect();
        read_segs.push(SegmentId(seg as u32));
        b.build(TxnProfile::update(ClassId(seg as u32), read_segs))
    }

    fn read_only_txn(&self, rng: &mut StdRng) -> TxnProgram {
        let off_chain = self.leaves.len() >= 2 && rng.gen_bool(self.config.off_chain_share);
        let mut b = TxnProgram::builder(if off_chain { "ro-offchain" } else { "ro-chain" });
        let mut segs = Vec::new();
        if off_chain {
            // Two distinct leaves (different branches when fanout > 1).
            let a = self.leaves[rng.gen_range(0..self.leaves.len())];
            let mut c = self.leaves[rng.gen_range(0..self.leaves.len())];
            while c == a && self.leaves.len() > 1 {
                c = self.leaves[rng.gen_range(0..self.leaves.len())];
            }
            for seg in [a, c] {
                b = b.read(self.granule(seg, rng));
                segs.push(SegmentId(seg as u32));
            }
        } else {
            // A leaf-to-root chain.
            let leaf = self.leaves[rng.gen_range(0..self.leaves.len())];
            b = b.read(self.granule(leaf, rng));
            segs.push(SegmentId(leaf as u32));
            for a in self.ancestors(leaf) {
                b = b.read(self.granule(a, rng));
                segs.push(SegmentId(a as u32));
            }
        }
        b.build(TxnProfile::read_only(segs))
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn segments(&self) -> usize {
        self.segment_count()
    }

    fn specs(&self) -> Vec<AccessSpec> {
        (0..self.segment_count())
            .map(|seg| {
                let mut reads: Vec<SegmentId> = self
                    .ancestors(seg)
                    .into_iter()
                    .map(|a| SegmentId(a as u32))
                    .collect();
                reads.push(SegmentId(seg as u32));
                AccessSpec::new(format!("class-{seg}"), vec![SegmentId(seg as u32)], reads)
            })
            .collect()
    }

    fn seed(&self, store: &dyn StorageBackend) {
        for seg in 0..self.segment_count() {
            for key in 0..self.config.granules_per_segment {
                store.seed(GranuleId::new(SegmentId(seg as u32), key), Value::Int(0));
            }
        }
    }

    fn generate(&mut self, rng: &mut StdRng) -> TxnProgram {
        if rng.gen_bool(self.config.read_only_share) {
            self.read_only_txn(rng)
        } else {
            self.update_txn(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tree_shape() {
        let w = Synthetic::new(SyntheticConfig {
            depth: 3,
            fanout: 2,
            ..SyntheticConfig::default()
        });
        assert_eq!(w.segment_count(), 1 + 2 + 4);
        assert_eq!(w.leaves.len(), 4);
        assert_eq!(w.ancestors(0), Vec::<usize>::new());
        let leaf = w.leaves[0];
        assert_eq!(w.ancestors(leaf).len(), 2);
    }

    #[test]
    fn hierarchy_validates_as_tst() {
        for (depth, fanout) in [(1, 1), (2, 3), (3, 2), (4, 2)] {
            let w = Synthetic::new(SyntheticConfig {
                depth,
                fanout,
                ..SyntheticConfig::default()
            });
            let h = w.hierarchy(); // panics internally if not a TST
            assert_eq!(h.class_count(), w.segment_count());
        }
    }

    #[test]
    fn generated_programs_validate() {
        let mut w = Synthetic::new(SyntheticConfig::default());
        let h = w.hierarchy();
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw_ro = false;
        let mut saw_update = false;
        for _ in 0..300 {
            let p = w.generate(&mut rng);
            assert!(h.validate_profile(&p.profile).is_ok());
            if p.profile.is_read_only() {
                saw_ro = true;
            } else {
                saw_update = true;
            }
        }
        assert!(saw_ro && saw_update);
    }

    #[test]
    fn off_chain_read_only_spans_branches() {
        let mut w = Synthetic::new(SyntheticConfig {
            depth: 3,
            fanout: 2,
            read_only_share: 1.0,
            off_chain_share: 1.0,
            ..SyntheticConfig::default()
        });
        let h = w.hierarchy();
        let mut rng = StdRng::seed_from_u64(5);
        let mut found_off_chain = false;
        for _ in 0..50 {
            let p = w.generate(&mut rng);
            if !h.read_only_on_one_critical_path(&p.profile.read_segments) {
                found_off_chain = true;
            }
        }
        assert!(found_off_chain, "expected off-chain read-only programs");
    }
}
