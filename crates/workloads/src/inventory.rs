//! The paper's motivating retail inventory application (Figure 2,
//! Sections 1.2.1–1.2.2), fully populated.
//!
//! Segment layout:
//!
//! | Segment | Contents | Written by |
//! |---|---|---|
//! | `D0` | sales / sales-modification / merchandise-arrival records | type 1 |
//! | `D1` | current-inventory-level records | type 2 |
//! | `D2` | merchandise-on-order records | type 3 |
//! | `D3` | supplier-profile records (Section 1.2.2 extension) | type 4 |
//! | `D4` | store-accounting records (off-chain branch) | type 5 |
//!
//! DHG reduction: `3 → 2 → 1 → 0 ← 4` — the chain the paper describes
//! plus one sibling branch, so read-only transactions exist both *on* a
//! critical path (Protocol A, Figure 8) and *off* it (Protocol C,
//! Figure 9).
//!
//! Transaction types (paper wording):
//!
//! * **type 1** — "inserts a sales, sales-modification, or a
//!   merchandise-arrival record ... when the event occurs";
//! * **type 2** — "generated periodically for each item to compute the
//!   current inventory level", visiting the event records since the last
//!   posting;
//! * **type 3** — "check for the need of reordering": reads arrivals,
//!   the current inventory level and the on-order records, then posts a
//!   reorder decision;
//! * **type 4** — builds supplier profiles from reorder and arrival
//!   records (the Section 1.2.2 generalization);
//! * **type 5** — posts per-item accounting from the event log (branch);
//! * **report** — ad-hoc read-only over segments on one critical path;
//! * **audit** — ad-hoc read-only spanning both branches (off-chain).

use crate::Workload;
use hdd::analysis::AccessSpec;
use mvstore::StorageBackend;
use rand::rngs::StdRng;
use rand::Rng;
use txn_model::{ClassId, GranuleId, SegmentId, TxnProfile, TxnProgram, Value};

/// Events per item key-space stride.
const EVENT_STRIDE: u64 = 1_000_000;

/// Configuration of the inventory workload.
#[derive(Debug, Clone)]
pub struct InventoryConfig {
    /// Number of merchandise items.
    pub items: u64,
    /// Number of suppliers (profiles in `D3`).
    pub suppliers: u64,
    /// Relative weight of type-1 (event insert) transactions.
    pub w_type1: u32,
    /// Relative weight of type-2 (inventory posting) transactions.
    pub w_type2: u32,
    /// Relative weight of type-3 (reorder) transactions.
    pub w_type3: u32,
    /// Relative weight of type-4 (supplier profile) transactions.
    pub w_type4: u32,
    /// Relative weight of type-5 (accounting) transactions.
    pub w_type5: u32,
    /// Relative weight of on-chain read-only reports.
    pub w_report: u32,
    /// Relative weight of off-chain read-only audits.
    pub w_audit: u32,
    /// Max event records a type-2/3 transaction scans.
    pub scan_limit: usize,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig {
            items: 64,
            suppliers: 8,
            w_type1: 50,
            w_type2: 15,
            w_type3: 10,
            w_type4: 5,
            w_type5: 5,
            w_report: 10,
            w_audit: 5,
            scan_limit: 8,
        }
    }
}

/// The inventory workload (stateful: tracks the event log head per item
/// so periodic transactions scan real records).
#[derive(Debug, Clone)]
pub struct Inventory {
    /// Configuration.
    pub config: InventoryConfig,
    /// Next event sequence number per item.
    next_event: Vec<u64>,
    /// Event sequence last consumed by a type-2 posting, per item.
    posted_upto: Vec<u64>,
}

impl Inventory {
    /// Build with the given config.
    pub fn new(config: InventoryConfig) -> Self {
        let items = config.items as usize;
        Inventory {
            config,
            next_event: vec![0; items],
            posted_upto: vec![0; items],
        }
    }

    /// Event-record granule `seq` of `item` (segment `D0`).
    pub fn event(item: u64, seq: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), item * EVENT_STRIDE + seq)
    }

    /// Inventory-level granule of `item` (`D1`).
    pub fn inventory_level(item: u64) -> GranuleId {
        GranuleId::new(SegmentId(1), item)
    }

    /// Merchandise-on-order granule of `item` (`D2`).
    pub fn on_order(item: u64) -> GranuleId {
        GranuleId::new(SegmentId(2), item)
    }

    /// Supplier-profile granule (`D3`).
    pub fn supplier_profile(supplier: u64) -> GranuleId {
        GranuleId::new(SegmentId(3), supplier)
    }

    /// Store-accounting granule of `item` (`D4`).
    pub fn accounting(item: u64) -> GranuleId {
        GranuleId::new(SegmentId(4), item)
    }

    fn pick_item(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.config.items)
    }

    fn type1(&mut self, rng: &mut StdRng, item: u64) -> TxnProgram {
        let seq = self.next_event[item as usize];
        self.next_event[item as usize] += 1;
        let qty = rng.gen_range(-5i64..=10); // sales negative, arrivals positive
        TxnProgram::builder("type1-event")
            .write(Self::event(item, seq), Value::Int(qty))
            .build(TxnProfile::update(ClassId(0), vec![]))
    }

    fn type2(&mut self, item: u64) -> TxnProgram {
        let s = SegmentId;
        let from = self.posted_upto[item as usize];
        let to = self.next_event[item as usize].min(from + self.config.scan_limit as u64);
        self.posted_upto[item as usize] = to;
        let mut b = TxnProgram::builder("type2-post-inventory");
        let events: Vec<GranuleId> = (from..to).map(|q| Self::event(item, q)).collect();
        for &e in &events {
            b = b.read(e);
        }
        let level = Self::inventory_level(item);
        b = b.read(level);
        b = b.write_computed(level, move |ctx| {
            let delta: i64 = events.iter().map(|&e| ctx.int(e)).sum();
            Value::Int(ctx.int(level) + delta)
        });
        b.build(TxnProfile::update(ClassId(1), vec![s(0), s(1)]))
    }

    fn type3(&mut self, item: u64) -> TxnProgram {
        let s = SegmentId;
        // Scan recent arrivals (up to scan_limit of the newest events).
        let head = self.next_event[item as usize];
        let from = head.saturating_sub(self.config.scan_limit as u64);
        let mut b = TxnProgram::builder("type3-reorder");
        for q in from..head {
            b = b.read(Self::event(item, q));
        }
        let level = Self::inventory_level(item);
        let ord = Self::on_order(item);
        b = b.read(level).read(ord);
        b = b.write_computed(ord, move |ctx| {
            // Gross level = current inventory + outstanding orders; order
            // more when it dips below the reorder point.
            let gross = ctx.int(level) + ctx.int(ord);
            if gross < 20 {
                Value::Int(ctx.int(ord) + 25)
            } else {
                Value::Int(ctx.int(ord))
            }
        });
        b.build(TxnProfile::update(ClassId(2), vec![s(0), s(1), s(2)]))
    }

    fn type4(&mut self, item: u64) -> TxnProgram {
        let s = SegmentId;
        let supplier = item % self.config.suppliers;
        let head = self.next_event[item as usize];
        let from = head.saturating_sub(self.config.scan_limit as u64 / 2);
        let mut b = TxnProgram::builder("type4-supplier-profile");
        for q in from..head {
            b = b.read(Self::event(item, q));
        }
        let ord = Self::on_order(item);
        let prof = Self::supplier_profile(supplier);
        b = b.read(ord).read(prof);
        b = b.write_computed(prof, move |ctx| {
            Value::Int(ctx.int(prof) + ctx.int(ord).signum())
        });
        b.build(TxnProfile::update(ClassId(3), vec![s(0), s(2), s(3)]))
    }

    fn type5(&mut self, item: u64) -> TxnProgram {
        let s = SegmentId;
        let head = self.next_event[item as usize];
        let from = head.saturating_sub(self.config.scan_limit as u64);
        let mut b = TxnProgram::builder("type5-accounting");
        let events: Vec<GranuleId> = (from..head).map(|q| Self::event(item, q)).collect();
        for &e in &events {
            b = b.read(e);
        }
        let acct = Self::accounting(item);
        b = b.read(acct);
        b = b.write_computed(acct, move |ctx| {
            let turnover: i64 = events.iter().map(|&e| ctx.int(e).abs()).sum();
            Value::Int(ctx.int(acct) + turnover)
        });
        b.build(TxnProfile::update(ClassId(4), vec![s(0), s(4)]))
    }

    fn report(&self, rng: &mut StdRng, item: u64) -> TxnProgram {
        let s = SegmentId;
        // On one critical path: pick a contiguous stretch of the chain
        // 3 → 2 → 1 → 0.
        let mut b = TxnProgram::builder("report-ro");
        let mut segs = Vec::new();
        if rng.gen_bool(0.5) {
            b = b.read(Self::inventory_level(item));
            segs.push(s(1));
        }
        b = b.read(Self::on_order(item));
        segs.push(s(2));
        if rng.gen_bool(0.5) {
            b = b.read(Self::supplier_profile(item % self.config.suppliers));
            segs.push(s(3));
        }
        b.build(TxnProfile::read_only(segs))
    }

    fn audit(&self, item: u64) -> TxnProgram {
        let s = SegmentId;
        // Off one critical path: spans the accounting branch and the
        // inventory chain.
        TxnProgram::builder("audit-ro")
            .read(Self::inventory_level(item))
            .read(Self::accounting(item))
            .build(TxnProfile::read_only(vec![s(1), s(4)]))
    }
}

impl Workload for Inventory {
    fn name(&self) -> &'static str {
        "inventory"
    }

    fn segments(&self) -> usize {
        5
    }

    fn segment_names(&self) -> Vec<String> {
        ["events", "inventory", "on-order", "supplier", "accounting"]
            .map(String::from)
            .to_vec()
    }

    fn specs(&self) -> Vec<AccessSpec> {
        let s = SegmentId;
        vec![
            AccessSpec::new("type1-event", vec![s(0)], vec![]),
            AccessSpec::new("type2-post-inventory", vec![s(1)], vec![s(0), s(1)]),
            AccessSpec::new("type3-reorder", vec![s(2)], vec![s(0), s(1), s(2)]),
            AccessSpec::new("type4-supplier-profile", vec![s(3)], vec![s(0), s(2), s(3)]),
            AccessSpec::new("type5-accounting", vec![s(4)], vec![s(0), s(4)]),
        ]
    }

    fn seed(&self, store: &dyn StorageBackend) {
        for item in 0..self.config.items {
            store.seed(Self::inventory_level(item), Value::Int(30));
            store.seed(Self::on_order(item), Value::Int(0));
            store.seed(Self::accounting(item), Value::Int(0));
        }
        for supplier in 0..self.config.suppliers {
            store.seed(Self::supplier_profile(supplier), Value::Int(0));
        }
    }

    fn generate(&mut self, rng: &mut StdRng) -> TxnProgram {
        let c = &self.config;
        let total =
            c.w_type1 + c.w_type2 + c.w_type3 + c.w_type4 + c.w_type5 + c.w_report + c.w_audit;
        let mut pick = rng.gen_range(0..total);
        let item = self.pick_item(rng);
        for (w, which) in [
            (c.w_type1, 0u8),
            (c.w_type2, 1),
            (c.w_type3, 2),
            (c.w_type4, 3),
            (c.w_type5, 4),
            (c.w_report, 5),
            (c.w_audit, 6),
        ] {
            if pick < w {
                return match which {
                    0 => self.type1(rng, item),
                    1 => self.type2(item),
                    2 => self.type3(item),
                    3 => self.type4(item),
                    4 => self.type5(item),
                    5 => self.report(rng, item),
                    _ => self.audit(item),
                };
            }
            pick -= w;
        }
        unreachable!("weights cover the range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvstore::MvStore;
    use rand::SeedableRng;

    #[test]
    fn hierarchy_is_chain_plus_branch() {
        let w = Inventory::new(InventoryConfig::default());
        let h = w.hierarchy();
        assert_eq!(h.class_count(), 5);
        // Chain 3 → 2 → 1 → 0.
        assert!(h.paths().is_critical_arc(3, 2));
        assert!(h.paths().is_critical_arc(2, 1));
        assert!(h.paths().is_critical_arc(1, 0));
        // Branch 4 → 0.
        assert!(h.paths().is_critical_arc(4, 0));
        // Induced arcs are not critical.
        assert!(!h.paths().is_critical_arc(2, 0));
        // On/off chain read-only classification.
        let s = SegmentId;
        assert!(h.read_only_on_one_critical_path(&[s(1), s(2), s(3)]));
        assert!(!h.read_only_on_one_critical_path(&[s(1), s(4)]));
    }

    #[test]
    fn every_generated_program_validates() {
        let mut w = Inventory::new(InventoryConfig::default());
        let h = w.hierarchy();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let p = w.generate(&mut rng);
            assert!(
                h.validate_profile(&p.profile).is_ok(),
                "generated profile must be legal: {:?}",
                p.profile
            );
            // Steps stay inside the declared segments.
            for st in &p.steps {
                let seg = st.granule().segment;
                let declared = p
                    .profile
                    .read_segments
                    .iter()
                    .chain(&p.profile.write_segments)
                    .any(|&s| s == seg);
                assert!(declared, "step touches undeclared segment {seg}");
            }
        }
    }

    #[test]
    fn type2_consumes_events_in_order() {
        let mut w = Inventory::new(InventoryConfig {
            items: 1,
            ..InventoryConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        // Three events for item 0.
        for _ in 0..3 {
            w.type1(&mut rng, 0);
        }
        let p = w.type2(0);
        // Reads 3 events + the level.
        assert_eq!(p.read_count(), 4);
        // A second posting with no new events scans nothing.
        let p2 = w.type2(0);
        assert_eq!(p2.read_count(), 1);
    }

    #[test]
    fn type3_reorders_only_below_threshold() {
        use txn_model::program::ReadCtx;
        use txn_model::Step;
        let mut w = Inventory::new(InventoryConfig {
            items: 1,
            ..InventoryConfig::default()
        });
        let p = w.type3(0);
        let Step::Write(_, src) = p.steps.last().unwrap() else {
            panic!("type3 ends with a write");
        };
        // Gross level below 20: order 25 more.
        let mut low = ReadCtx::default();
        low.record(
            Inventory::inventory_level(0),
            std::sync::Arc::new(Value::Int(5)),
        );
        low.record(Inventory::on_order(0), std::sync::Arc::new(Value::Int(0)));
        assert_eq!(src.resolve(&low), Value::Int(25));
        // Gross level at/above 20: no new order.
        let mut high = ReadCtx::default();
        high.record(
            Inventory::inventory_level(0),
            std::sync::Arc::new(Value::Int(30)),
        );
        high.record(Inventory::on_order(0), std::sync::Arc::new(Value::Int(0)));
        assert_eq!(src.resolve(&high), Value::Int(0));
        // Outstanding orders count toward the gross level.
        let mut covered = ReadCtx::default();
        covered.record(
            Inventory::inventory_level(0),
            std::sync::Arc::new(Value::Int(5)),
        );
        covered.record(Inventory::on_order(0), std::sync::Arc::new(Value::Int(25)));
        assert_eq!(src.resolve(&covered), Value::Int(25));
    }

    #[test]
    fn seed_populates_all_segments() {
        let w = Inventory::new(InventoryConfig::default());
        let store = MvStore::new();
        w.seed(&store);
        assert_eq!(
            store.latest_value(Inventory::inventory_level(0)),
            Value::Int(30)
        );
        assert_eq!(store.latest_value(Inventory::accounting(3)), Value::Int(0));
        assert_eq!(
            store.latest_value(Inventory::supplier_profile(1)),
            Value::Int(0)
        );
    }
}
