//! The Figure 1 banking workload: concurrent deposits and withdrawals
//! against shared accounts.
//!
//! Each transaction reads one account balance and writes back a modified
//! balance (read-modify-write). Under any serializable scheduler, the
//! final total across accounts equals the initial total plus the sum of
//! the committed deltas; under [`NoControl`](../../baselines) updates are
//! lost (experiment E1 measures the shortfall).

use crate::Workload;
use hdd::analysis::AccessSpec;
use mvstore::StorageBackend;
use rand::rngs::StdRng;
use rand::Rng;
use txn_model::{ClassId, GranuleId, SegmentId, TxnProfile, TxnProgram, Value};

/// Fixed deposit amount (Figure 1 uses $50).
pub const DEPOSIT: i64 = 50;
/// Fixed withdrawal amount.
pub const WITHDRAWAL: i64 = -50;
/// Initial balance of every account.
pub const INITIAL_BALANCE: i64 = 100;

/// The banking workload.
#[derive(Debug, Clone)]
pub struct Banking {
    /// Number of accounts.
    pub accounts: u64,
    /// Probability a transaction is a deposit (vs a withdrawal).
    pub deposit_prob: f64,
    /// Probability a transaction is a two-account transfer instead of a
    /// deposit/withdrawal. Transfers conserve the total balance, so any
    /// serializable execution keeps `total = initial + Σ single-account
    /// deltas` — the conservation invariant the integration tests check.
    pub transfer_prob: f64,
}

impl Banking {
    /// `accounts` accounts, all starting at [`INITIAL_BALANCE`].
    pub fn new(accounts: u64) -> Self {
        Banking {
            accounts,
            deposit_prob: 0.5,
            transfer_prob: 0.0,
        }
    }

    /// A transfers-only workload over `accounts` accounts.
    pub fn transfers(accounts: u64) -> Self {
        Banking {
            accounts,
            deposit_prob: 0.5,
            transfer_prob: 1.0,
        }
    }

    /// Account granule id.
    pub fn account(&self, i: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), i)
    }

    /// The delta a program label carries ("deposit" / "withdraw").
    pub fn delta_of(label: &str) -> i64 {
        match label {
            "deposit" => DEPOSIT,
            "withdraw" => WITHDRAWAL,
            other => panic!("unknown banking label {other}"),
        }
    }

    /// Total balance across all accounts in a store.
    pub fn total_balance(&self, store: &(dyn StorageBackend + 'static)) -> i64 {
        (0..self.accounts)
            .map(|i| store.latest_value(self.account(i)).as_int())
            .sum()
    }
}

impl Workload for Banking {
    fn name(&self) -> &'static str {
        "banking"
    }

    fn segments(&self) -> usize {
        1
    }

    fn segment_names(&self) -> Vec<String> {
        vec!["accounts".to_string()]
    }

    fn specs(&self) -> Vec<AccessSpec> {
        vec![AccessSpec::new(
            "account-rmw",
            vec![SegmentId(0)],
            vec![SegmentId(0)],
        )]
    }

    fn seed(&self, store: &dyn StorageBackend) {
        for i in 0..self.accounts {
            store.seed(self.account(i), Value::Int(INITIAL_BALANCE));
        }
    }

    fn generate(&mut self, rng: &mut StdRng) -> TxnProgram {
        if self.accounts >= 2 && rng.gen_bool(self.transfer_prob) {
            // Two-account transfer: read both, move a fixed amount.
            let from = rng.gen_range(0..self.accounts);
            let mut to = rng.gen_range(0..self.accounts);
            while to == from {
                to = rng.gen_range(0..self.accounts);
            }
            let (from, to) = (self.account(from), self.account(to));
            let amount = rng.gen_range(1..=25i64);
            return TxnProgram::builder("transfer")
                .read(from)
                .read(to)
                .write_computed(from, move |ctx| Value::Int(ctx.int(from) - amount))
                .write_computed(to, move |ctx| Value::Int(ctx.int(to) + amount))
                .build(TxnProfile::update(ClassId(0), vec![SegmentId(0)]));
        }
        let acct = self.account(rng.gen_range(0..self.accounts));
        let (label, delta) = if rng.gen_bool(self.deposit_prob) {
            ("deposit", DEPOSIT)
        } else {
            ("withdraw", WITHDRAWAL)
        };
        TxnProgram::builder(label)
            .read(acct)
            .write_computed(acct, move |ctx| Value::Int(ctx.int(acct) + delta))
            .build(TxnProfile::update(ClassId(0), vec![SegmentId(0)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvstore::MvStore;
    use rand::SeedableRng;

    #[test]
    fn hierarchy_is_a_single_class() {
        let w = Banking::new(4);
        let h = w.hierarchy();
        assert_eq!(h.class_count(), 1);
    }

    #[test]
    fn seed_sets_initial_balances() {
        let w = Banking::new(4);
        let store = MvStore::new();
        w.seed(&store);
        assert_eq!(w.total_balance(&store), 4 * INITIAL_BALANCE);
    }

    #[test]
    fn transfers_touch_two_distinct_accounts() {
        let mut w = Banking::transfers(4);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let p = w.generate(&mut rng);
            assert_eq!(p.label, "transfer");
            assert_eq!(p.read_count(), 2);
            assert_eq!(p.write_count(), 2);
            assert_ne!(p.steps[0].granule(), p.steps[1].granule());
        }
    }

    #[test]
    fn generated_programs_are_rmw() {
        let mut w = Banking::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let p = w.generate(&mut rng);
            assert_eq!(p.read_count(), 1);
            assert_eq!(p.write_count(), 1);
            assert_eq!(p.steps[0].granule(), p.steps[1].granule());
            assert!(p.label == "deposit" || p.label == "withdraw");
            let _ = Banking::delta_of(&p.label);
        }
    }
}
