//! A Zipf(θ) sampler over `0..n` for skewed granule selection.
//!
//! Implemented directly (the `rand` crate bundled here has no Zipf
//! distribution): inverse-CDF over precomputed cumulative weights, O(log
//! n) per sample after O(n) setup. θ = 0 is uniform; θ around 0.8–1.2
//! gives the usual hot-key skew.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `0..n` with exponent `theta ≥ 0`.
    ///
    /// # Panics
    /// If `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (1600..=2400).contains(&c),
                "uniform bucket out of range: {c}"
            );
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "head must dominate tail");
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zero_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
