//! Concurrency-control cost counters.
//!
//! The paper's argument is a *cost* argument: read locks / read timestamps
//! "not only incur a write operation in the database ... but also
//! potentially cause delays for concurrent transactions" (Section 1.2).
//! [`Metrics`] counts exactly those costs so experiments can compare
//! schedulers on the paper's own terms:
//!
//! * `read_registrations` — read locks set or read timestamps written,
//! * `blocks` — operations that had to wait,
//! * `rejections` — operations refused by a protocol rule (causing abort),
//! * plus bookkeeping (begins/commits/aborts/reads/writes).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[doc = $doc:literal])* $name:ident),+ $(,)?) => {
        /// Live, thread-safe counters owned by a scheduler.
        #[derive(Debug, Default)]
        pub struct Metrics {
            $($(#[doc = $doc])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`Metrics`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $($(#[doc = $doc])* pub $name: u64,)+
        }

        impl Metrics {
            /// Copy all counters.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Reset all counters to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl MetricsSnapshot {
            /// Column headers, in field order (for table printing).
            pub fn headers() -> &'static [&'static str] {
                &[$(stringify!($name),)+]
            }

            /// Field values, in header order.
            pub fn values(&self) -> Vec<u64> {
                vec![$(self.$name,)+]
            }
        }
    };
}

counters! {
    /// Transactions begun.
    begins,
    /// Transactions committed.
    commits,
    /// Transactions aborted (all causes).
    aborts,
    /// Read operations performed (counting retries once granted).
    reads,
    /// Write operations performed.
    writes,
    /// Read registrations: read locks set or read timestamps written.
    /// This is the overhead HDD Protocol A/C eliminates.
    read_registrations,
    /// Write registrations: write locks set or write timestamps recorded.
    write_registrations,
    /// Operations that returned Block (each wait counted once per attempt).
    blocks,
    /// Operations rejected by a protocol rule, forcing an abort.
    rejections,
    /// Deadlocks detected (2PL family only).
    deadlocks,
    /// Protocol A reads: cross-class reads served without registration.
    cross_class_reads,
    /// Protocol C reads: read-only-transaction reads served from a time wall.
    wall_reads,
    /// Time walls released by the time-wall service.
    timewalls_released,
    /// Versions reclaimed by garbage collection.
    versions_gced,
}

impl Metrics {
    #[inline]
    /// Add 1 to a counter (helper so call sites stay short).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    /// Add `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl MetricsSnapshot {
    /// Read registrations per committed transaction; the paper's headline
    /// overhead measure. Returns 0.0 when nothing committed.
    pub fn read_registrations_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.read_registrations as f64 / self.commits as f64
        }
    }

    /// Fraction of begun transactions that aborted.
    pub fn abort_rate(&self) -> f64 {
        if self.begins == 0 {
            0.0
        } else {
            self.aborts as f64 / self.begins as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let m = Metrics::default();
        Metrics::bump(&m.reads);
        Metrics::bump(&m.reads);
        Metrics::add(&m.read_registrations, 5);
        let s = m.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.read_registrations, 5);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::default();
        Metrics::bump(&m.commits);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn derived_rates() {
        let s = MetricsSnapshot {
            begins: 10,
            commits: 5,
            aborts: 5,
            read_registrations: 20,
            ..Default::default()
        };
        assert!((s.read_registrations_per_commit() - 4.0).abs() < 1e-9);
        assert!((s.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().abort_rate(), 0.0);
        assert_eq!(
            MetricsSnapshot::default().read_registrations_per_commit(),
            0.0
        );
    }

    #[test]
    fn headers_and_values_align() {
        let s = MetricsSnapshot {
            begins: 1,
            ..Default::default()
        };
        assert_eq!(MetricsSnapshot::headers().len(), s.values().len());
        assert_eq!(MetricsSnapshot::headers()[0], "begins");
        assert_eq!(s.values()[0], 1);
    }
}
