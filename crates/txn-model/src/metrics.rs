//! Concurrency-control cost counters.
//!
//! The paper's argument is a *cost* argument: read locks / read timestamps
//! "not only incur a write operation in the database ... but also
//! potentially cause delays for concurrent transactions" (Section 1.2).
//! [`Metrics`] counts exactly those costs so experiments can compare
//! schedulers on the paper's own terms:
//!
//! * `read_registrations` — read locks set or read timestamps written,
//! * `blocks` — operations that had to wait,
//! * `rejections` — operations refused by a protocol rule (causing abort),
//! * plus bookkeeping (begins/commits/aborts/reads/writes).

use mc::sync::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[doc = $doc:literal])* $name:ident),+ $(,)?) => {
        /// Live, thread-safe counters owned by a scheduler.
        #[derive(Debug, Default)]
        pub struct Metrics {
            $($(#[doc = $doc])* pub $name: AtomicU64,)+
            /// Observability sidecar: latency histograms and the protocol
            /// decision trace ring, all behind one atomic enable flag
            /// (default off). Not part of [`MetricsSnapshot`] — use
            /// [`obs::Obs::snapshot`] for the distributions.
            pub obs: obs::Obs,
        }

        /// A point-in-time copy of [`Metrics`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $($(#[doc = $doc])* pub $name: u64,)+
        }

        impl Metrics {
            /// Copy all counters.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    // ordering: Relaxed — statistical counters; snapshots
                    // are advisory and tolerate skew between cells.
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Reset all counters to zero.
            pub fn reset(&self) {
                // ordering: Relaxed — counter reset between phases; racing
                // bumps land on either side, both acceptable.
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl MetricsSnapshot {
            /// Column headers, in field order (for table printing).
            pub fn headers() -> &'static [&'static str] {
                &[$(stringify!($name),)+]
            }

            /// Field values, in header order.
            pub fn values(&self) -> Vec<u64> {
                vec![$(self.$name,)+]
            }

            /// `(header, value)` pairs, in field order — the shape the
            /// Prometheus exporter (`obs::prometheus_text`) consumes.
            pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name),)+]
            }

            /// Counter deltas since `earlier` (saturating, so interval
            /// reporting over a reset or a re-used scheduler never
            /// underflows). Interval reports should print
            /// `now.delta(&at_interval_start)` instead of re-reading
            /// absolute counters.
            pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)+
                }
            }
        }
    };
}

counters! {
    /// Transactions begun.
    begins,
    /// Transactions committed.
    commits,
    /// Transactions aborted (all causes).
    aborts,
    /// Read operations performed (counting retries once granted).
    reads,
    /// Write operations performed.
    writes,
    /// Read registrations: read locks set or read timestamps written.
    /// This is the overhead HDD Protocol A/C eliminates.
    read_registrations,
    /// Write registrations: write locks set or write timestamps recorded.
    write_registrations,
    /// Operations that returned Block (each wait counted once per attempt).
    blocks,
    /// Operations rejected by a protocol rule, forcing an abort.
    /// Always equals `rej_write_too_late + rej_read_too_late +
    /// rej_deadlock_victim + rej_watchdog_abort` (kept as a total for
    /// backward-compatible tables).
    rejections,
    /// Rejected writes: a younger transaction already read or overwrote
    /// the granule (TO write rule; MVTO, basic TO, HDD Protocol B).
    rej_write_too_late,
    /// Rejected reads: a younger transaction already overwrote the
    /// granule (basic-TO read rule).
    rej_read_too_late,
    /// Rejections of transactions chosen as deadlock victims (2PL
    /// family).
    rej_deadlock_victim,
    /// Rejections of stragglers reaped by the lease watchdog: the
    /// transaction overstayed its activity-registry lease and was
    /// aborted so `I_old(m)` and the time wall could resume.
    rej_watchdog_abort,
    /// Unregistered (Protocol A / C) reads that found a pending version
    /// below their activity-link or time-wall bound — a state the bound
    /// proofs rule out. The read blocks (and recovers) rather than
    /// aborting, but every occurrence is counted loudly here.
    wall_violations,
    /// Deadlocks detected (2PL family only).
    deadlocks,
    /// Protocol A reads: cross-class reads served without registration.
    cross_class_reads,
    /// Protocol C reads: read-only-transaction reads served from a time wall.
    wall_reads,
    /// Time walls released by the time-wall service.
    timewalls_released,
    /// Versions reclaimed by garbage collection.
    versions_gced,
}

impl Metrics {
    #[inline]
    /// Add 1 to a counter (helper so call sites stay short).
    pub fn bump(counter: &AtomicU64) {
        // ordering: Relaxed — statistical counter; no memory is published
        // through it, totals are read at quiescence or advisorily.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    /// Add `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        // ordering: Relaxed — statistical counter, see bump.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Count a protocol rejection of `txn`'s access to `segment`/`key`
    /// under `reason`: bumps the matching per-reason counter, keeps the
    /// `rejections` total in sync, and (when tracing is enabled) emits a
    /// [`obs::TraceEvent::Reject`]. [`obs::RejectReason::WallViolation`]
    /// counts into `wall_violations` only — the access blocks and
    /// recovers instead of aborting, so it is not a rejection.
    pub fn reject(&self, reason: obs::RejectReason, txn: u64, segment: u32, key: u64) {
        use obs::RejectReason::*;
        match reason {
            WriteTooLate => {
                Self::bump(&self.rej_write_too_late);
                Self::bump(&self.rejections);
            }
            ReadTooLate => {
                Self::bump(&self.rej_read_too_late);
                Self::bump(&self.rejections);
            }
            DeadlockVictim => {
                Self::bump(&self.rej_deadlock_victim);
                Self::bump(&self.rejections);
            }
            WatchdogAbort => {
                Self::bump(&self.rej_watchdog_abort);
                Self::bump(&self.rejections);
            }
            WallViolation => Self::bump(&self.wall_violations),
        }
        self.obs.emit(obs::TraceEvent::Reject {
            txn,
            segment,
            key,
            reason,
        });
    }
}

impl MetricsSnapshot {
    /// Read registrations per committed transaction; the paper's headline
    /// overhead measure. Returns 0.0 when nothing committed.
    pub fn read_registrations_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.read_registrations as f64 / self.commits as f64
        }
    }

    /// Compact per-reason rejection breakdown for table cells:
    /// `w<write-too-late>/r<read-too-late>/d<deadlock-victim>`, with a
    /// `/g<watchdog-abort>` suffix only when the watchdog reaped anyone
    /// (so fault-free tables keep their historical shape).
    pub fn rejection_breakdown(&self) -> String {
        let mut s = format!(
            "w{}/r{}/d{}",
            self.rej_write_too_late, self.rej_read_too_late, self.rej_deadlock_victim
        );
        if self.rej_watchdog_abort > 0 {
            s.push_str(&format!("/g{}", self.rej_watchdog_abort));
        }
        s
    }

    /// Fraction of begun transactions that aborted.
    pub fn abort_rate(&self) -> f64 {
        if self.begins == 0 {
            0.0
        } else {
            self.aborts as f64 / self.begins as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let m = Metrics::default();
        Metrics::bump(&m.reads);
        Metrics::bump(&m.reads);
        Metrics::add(&m.read_registrations, 5);
        let s = m.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.read_registrations, 5);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::default();
        Metrics::bump(&m.commits);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn derived_rates() {
        let s = MetricsSnapshot {
            begins: 10,
            commits: 5,
            aborts: 5,
            read_registrations: 20,
            ..Default::default()
        };
        assert!((s.read_registrations_per_commit() - 4.0).abs() < 1e-9);
        assert!((s.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(MetricsSnapshot::default().abort_rate(), 0.0);
        assert_eq!(
            MetricsSnapshot::default().read_registrations_per_commit(),
            0.0
        );
    }

    #[test]
    fn reject_keeps_total_in_sync_and_traces() {
        let m = Metrics::default();
        m.obs.set_enabled(true);
        m.reject(obs::RejectReason::WriteTooLate, 1, 0, 7);
        m.reject(obs::RejectReason::ReadTooLate, 2, 1, 8);
        m.reject(obs::RejectReason::DeadlockVictim, 3, 2, 9);
        m.reject(obs::RejectReason::WatchdogAbort, 5, 3, 2);
        m.reject(obs::RejectReason::WallViolation, 4, 0, 1);
        let s = m.snapshot();
        assert_eq!(s.rejections, 4, "wall violations are not rejections");
        assert_eq!(s.rej_write_too_late, 1);
        assert_eq!(s.rej_read_too_late, 1);
        assert_eq!(s.rej_deadlock_victim, 1);
        assert_eq!(s.rej_watchdog_abort, 1);
        assert_eq!(s.wall_violations, 1);
        assert_eq!(
            s.rejections,
            s.rej_write_too_late
                + s.rej_read_too_late
                + s.rej_deadlock_victim
                + s.rej_watchdog_abort
        );
        assert_eq!(s.rejection_breakdown(), "w1/r1/d1/g1");
        assert_eq!(m.obs.trace.recorded(), 5);
        let fault_free = MetricsSnapshot {
            rej_write_too_late: 2,
            ..Default::default()
        };
        assert_eq!(
            fault_free.rejection_breakdown(),
            "w2/r0/d0",
            "no watchdog suffix when nothing was reaped"
        );
    }

    #[test]
    fn delta_subtracts_fieldwise_and_saturates() {
        let m = Metrics::default();
        Metrics::add(&m.commits, 10);
        let early = m.snapshot();
        Metrics::add(&m.commits, 5);
        Metrics::bump(&m.aborts);
        let late = m.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.commits, 5);
        assert_eq!(d.aborts, 1);
        assert_eq!(d.begins, 0);
        // Saturates instead of underflowing (e.g. across a reset).
        let backwards = early.delta(&late);
        assert_eq!(backwards.commits, 0);
    }

    #[test]
    fn delta_never_wraps_when_resumed_mid_interval() {
        // The hdd-top scenario: an interval starts, the scheduler
        // crashes and is resumed (fresh Metrics → counters restart
        // below the interval-start snapshot), and the dashboard closes
        // the interval against the *old* baseline. Every field must
        // clamp to a sane small delta — never a wrapped u64.
        let m = Metrics::default();
        Metrics::add(&m.commits, 1000);
        Metrics::add(&m.reads, 5000);
        Metrics::add(&m.rejections, 40);
        let interval_start = m.snapshot();
        // Crash + resume: recovery rebuilds state and resets counters.
        m.reset();
        Metrics::add(&m.commits, 3);
        Metrics::bump(&m.reads);
        let d = m.snapshot().delta(&interval_start);
        for (name, v) in d.counter_pairs() {
            assert!(
                v <= 3,
                "{name} wrapped across resume: {v} (printable deltas only)"
            );
        }
        assert_eq!(d.commits, 0, "clamped: 3 < 1000");
        assert_eq!(d.rejections, 0);
        // And the obs histograms obey the same contract end to end.
        m.obs.commit_latency.record(10);
        let obs_before = m.obs.snapshot();
        m.obs.reset();
        m.obs.commit_latency.record(20);
        let od = m.obs.snapshot().delta(&obs_before);
        assert_eq!(od.commit_latency.count, 1);
        assert!(od.commit_latency.max <= 20);
    }

    #[test]
    fn counter_pairs_match_headers_and_values() {
        let m = Metrics::default();
        Metrics::add(&m.wall_reads, 9);
        let s = m.snapshot();
        let pairs = s.counter_pairs();
        assert_eq!(pairs.len(), MetricsSnapshot::headers().len());
        for (i, (name, v)) in pairs.iter().enumerate() {
            assert_eq!(*name, MetricsSnapshot::headers()[i]);
            assert_eq!(*v, s.values()[i]);
        }
        assert!(pairs.contains(&("wall_reads", 9)));
    }

    #[test]
    fn headers_and_values_align() {
        let s = MetricsSnapshot {
            begins: 1,
            ..Default::default()
        };
        assert_eq!(MetricsSnapshot::headers().len(), s.values().len());
        assert_eq!(MetricsSnapshot::headers()[0], "begins");
        assert_eq!(s.values()[0], 1);
    }
}
