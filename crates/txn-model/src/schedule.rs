//! The schedule log: the sequence of steps a scheduler actually performed.
//!
//! Section 2 of the paper defines a schedule as a sequence of tuples
//! `<transaction id, action, version of a data granule>`. [`ScheduleLog`]
//! records exactly that (plus begin/commit/abort lifecycle events), so the
//! multi-version transaction dependency graph — the paper's correctness
//! criterion — can be rebuilt after any run by
//! [`DependencyGraph::from_log`](crate::depgraph::DependencyGraph::from_log).
//!
//! A version is identified by `(granule, write timestamp)`: every protocol
//! in this workspace assigns versions unique-per-granule timestamps
//! (initiation timestamps under timestamp ordering, commit sequence under
//! locking protocols).
//!
//! # Striping
//!
//! The log is the one structure every worker thread appends to on every
//! operation, so a single mutex over one `Vec` serializes the whole
//! system. [`ScheduleLog`] instead stripes the buffer: each append draws
//! a ticket from a global atomic sequence counter and pushes into a
//! per-thread-affine stripe, so concurrent appenders contend only on one
//! `fetch_add` (and, rarely, a stripe a second thread hashed into).
//! Readers merge the stripes and sort by ticket, recovering the exact
//! global append order — the same total order the single mutex produced.
//! Merging is intended for quiescent moments (post-run verification); a
//! merge concurrent with appends may miss in-flight tickets.

use crate::ids::{ClassId, GranuleId, Timestamp, TxnId};
use crate::value::Value;
use mc::sync::{AtomicBool, AtomicU64, Mutex, Ordering, ThreadStripe};
use std::sync::Arc;

/// The writer id of versions present at database-population time.
pub const INITIAL_WRITER: TxnId = TxnId(0);

/// One event in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// Transaction began with initiation time `start_ts`.
    Begin {
        /// Transaction id.
        txn: TxnId,
        /// Initiation time `I(t)`.
        start_ts: Timestamp,
        /// Class of an update transaction, None if read-only.
        class: Option<ClassId>,
    },
    /// `<txn, r, d^v>`: `txn` read the version of `granule` whose write
    /// timestamp is `version` and which was created by `writer`.
    Read {
        /// Reading transaction.
        txn: TxnId,
        /// Granule read.
        granule: GranuleId,
        /// Write timestamp of the version observed.
        version: Timestamp,
        /// Creator of that version ([`INITIAL_WRITER`] for pre-loaded data).
        writer: TxnId,
    },
    /// `<txn, w, d^v>`: `txn` created the version of `granule` with write
    /// timestamp `version` and content `value`.
    ///
    /// Carrying the value makes the schedule log double as a **redo
    /// log**: replaying the committed writes of a log prefix
    /// reconstructs the database state as of a crash at that point (see
    /// `mvstore::recovery`).
    Write {
        /// Writing transaction.
        txn: TxnId,
        /// Granule written.
        granule: GranuleId,
        /// Write timestamp of the created version.
        version: Timestamp,
        /// The written value (shared with the version chain — logging a
        /// write bumps a reference count instead of copying the payload).
        value: Arc<Value>,
    },
    /// Transaction committed at `commit_ts`.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Commit time `C(t)`.
        commit_ts: Timestamp,
    },
    /// Transaction aborted at `abort_ts`.
    ///
    /// The abort timestamp is the activity interval's exact end: offline
    /// replay (certification, registry-aware recovery) ends the aborted
    /// transaction's active window here rather than over-approximating
    /// it from surrounding events.
    Abort {
        /// Transaction id.
        txn: TxnId,
        /// Abort time (the registry end drawn under the class lock, or a
        /// plain clock tick for classless schedulers).
        abort_ts: Timestamp,
    },
}

impl ScheduleEvent {
    /// The transaction this event belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            ScheduleEvent::Begin { txn, .. }
            | ScheduleEvent::Read { txn, .. }
            | ScheduleEvent::Write { txn, .. }
            | ScheduleEvent::Commit { txn, .. }
            | ScheduleEvent::Abort { txn, .. } => *txn,
        }
    }
}

/// Power-of-two stripe count (worker counts in this workspace are ≤ 16,
/// so distinct threads land on distinct stripes in practice).
const STRIPES: usize = 16;

/// Allocator of stable per-thread stripe indices (round-robin on first
/// use; deterministic model thread ids under `--cfg mc`).
static STRIPE_OF_THREAD: ThreadStripe = ThreadStripe::new();

/// Thread-safe, append-only schedule log (striped; see module docs).
#[derive(Debug)]
pub struct ScheduleLog {
    stripes: Vec<Mutex<Vec<(u64, ScheduleEvent)>>>,
    seq: AtomicU64,
    enabled: AtomicBool,
}

impl Default for ScheduleLog {
    fn default() -> Self {
        Self::new()
    }
}

impl ScheduleLog {
    /// A new, enabled log.
    pub fn new() -> Self {
        ScheduleLog {
            stripes: (0..STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// A log that starts disabled (pure-throughput runs where event
    /// capture would dominate).
    pub fn disabled() -> Self {
        let log = Self::new();
        log.set_enabled(false);
        log
    }

    /// Disable recording (for long benchmark runs where post-hoc checking
    /// is not needed and log growth would dominate).
    pub fn set_enabled(&self, on: bool) {
        // ordering: Relaxed — advisory on/off flag; a racing record() may
        // observe either state, both of which are correct outcomes.
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        // ordering: Relaxed — advisory flag read, see set_enabled.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Append an event (no-op when disabled).
    pub fn record(&self, ev: ScheduleEvent) {
        if self.is_enabled() {
            // ordering: Relaxed — ticket uniqueness comes from fetch_add
            // atomicity; the event payload is published by the stripe
            // mutex below, not by this counter.
            let ticket = self.seq.fetch_add(1, Ordering::Relaxed);
            self.stripes[STRIPE_OF_THREAD.index_for_thread(STRIPES - 1)]
                .lock()
                .push((ticket, ev));
        }
    }

    /// Copy out all events, merged across stripes into global append
    /// order (sorted by sequence ticket). Call at quiescence — a merge
    /// racing an append may miss that append's ticket.
    pub fn events(&self) -> Vec<ScheduleEvent> {
        self.events_stamped()
            .into_iter()
            .map(|(_, ev)| ev)
            .collect()
    }

    /// Like [`events`](Self::events) but keeping each event's sequence
    /// ticket (tests assert ticket density/monotonicity over the merge).
    pub fn events_stamped(&self) -> Vec<(u64, ScheduleEvent)> {
        let mut all: Vec<(u64, ScheduleEvent)> = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            all.extend(stripe.lock().iter().cloned());
        }
        all.sort_unstable_by_key(|&(ticket, _)| ticket);
        all
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all events (between experiment phases). Tickets keep
    /// counting up, so later merges still order correctly.
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SegmentId;

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    #[test]
    fn records_in_order() {
        let log = ScheduleLog::new();
        log.record(ScheduleEvent::Begin {
            txn: TxnId(1),
            start_ts: Timestamp(1),
            class: Some(ClassId(0)),
        });
        log.record(ScheduleEvent::Write {
            txn: TxnId(1),
            granule: g(0),
            version: Timestamp(1),
            value: Arc::new(Value::Int(7)),
        });
        log.record(ScheduleEvent::Commit {
            txn: TxnId(1),
            commit_ts: Timestamp(2),
        });
        let evs = log.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], ScheduleEvent::Begin { .. }));
        assert_eq!(evs[2].txn(), TxnId(1));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = ScheduleLog::new();
        log.set_enabled(false);
        log.record(ScheduleEvent::Abort {
            txn: TxnId(3),
            abort_ts: Timestamp(99),
        });
        assert!(log.is_empty());
        log.set_enabled(true);
        log.record(ScheduleEvent::Abort {
            txn: TxnId(3),
            abort_ts: Timestamp(99),
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let log = ScheduleLog::new();
        log.record(ScheduleEvent::Abort {
            txn: TxnId(3),
            abort_ts: Timestamp(99),
        });
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_constructor_starts_off() {
        let log = ScheduleLog::disabled();
        assert!(!log.is_enabled());
        log.record(ScheduleEvent::Abort {
            txn: TxnId(1),
            abort_ts: Timestamp(99),
        });
        assert!(log.is_empty());
    }

    #[test]
    fn merge_recovers_global_append_order_under_threads() {
        let log = ScheduleLog::new();
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let log = &log;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let txn = TxnId(t * per_thread + i + 1);
                        log.record(ScheduleEvent::Begin {
                            txn,
                            start_ts: Timestamp(1),
                            class: None,
                        });
                        log.record(ScheduleEvent::Commit {
                            txn,
                            commit_ts: Timestamp(2),
                        });
                    }
                });
            }
        });
        let stamped = log.events_stamped();
        assert_eq!(stamped.len(), (threads * per_thread * 2) as usize);
        // Tickets are a dense 0..n permutation (none lost, none
        // duplicated) and the merge is strictly ticket-ascending.
        for (i, &(ticket, _)) in stamped.iter().enumerate() {
            assert_eq!(ticket, i as u64);
        }
        // Per-transaction program order survives the merge: each Begin
        // precedes its Commit.
        let mut begun = std::collections::HashSet::new();
        for (_, ev) in &stamped {
            match ev {
                ScheduleEvent::Begin { txn, .. } => {
                    assert!(begun.insert(*txn));
                }
                ScheduleEvent::Commit { txn, .. } => {
                    assert!(begun.contains(txn), "commit of {txn:?} before its begin");
                }
                _ => unreachable!(),
            }
        }
    }
}
