//! The schedule log: the sequence of steps a scheduler actually performed.
//!
//! Section 2 of the paper defines a schedule as a sequence of tuples
//! `<transaction id, action, version of a data granule>`. [`ScheduleLog`]
//! records exactly that (plus begin/commit/abort lifecycle events), so the
//! multi-version transaction dependency graph — the paper's correctness
//! criterion — can be rebuilt after any run by
//! [`DependencyGraph::from_log`](crate::depgraph::DependencyGraph::from_log).
//!
//! A version is identified by `(granule, write timestamp)`: every protocol
//! in this workspace assigns versions unique-per-granule timestamps
//! (initiation timestamps under timestamp ordering, commit sequence under
//! locking protocols).

use crate::ids::{ClassId, GranuleId, Timestamp, TxnId};
use crate::value::Value;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// The writer id of versions present at database-population time.
pub const INITIAL_WRITER: TxnId = TxnId(0);

/// One event in a schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleEvent {
    /// Transaction began with initiation time `start_ts`.
    Begin {
        /// Transaction id.
        txn: TxnId,
        /// Initiation time `I(t)`.
        start_ts: Timestamp,
        /// Class of an update transaction, None if read-only.
        class: Option<ClassId>,
    },
    /// `<txn, r, d^v>`: `txn` read the version of `granule` whose write
    /// timestamp is `version` and which was created by `writer`.
    Read {
        /// Reading transaction.
        txn: TxnId,
        /// Granule read.
        granule: GranuleId,
        /// Write timestamp of the version observed.
        version: Timestamp,
        /// Creator of that version ([`INITIAL_WRITER`] for pre-loaded data).
        writer: TxnId,
    },
    /// `<txn, w, d^v>`: `txn` created the version of `granule` with write
    /// timestamp `version` and content `value`.
    ///
    /// Carrying the value makes the schedule log double as a **redo
    /// log**: replaying the committed writes of a log prefix
    /// reconstructs the database state as of a crash at that point (see
    /// `mvstore::recovery`).
    Write {
        /// Writing transaction.
        txn: TxnId,
        /// Granule written.
        granule: GranuleId,
        /// Write timestamp of the created version.
        version: Timestamp,
        /// The written value.
        value: Value,
    },
    /// Transaction committed at `commit_ts`.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Commit time `C(t)`.
        commit_ts: Timestamp,
    },
    /// Transaction aborted.
    Abort {
        /// Transaction id.
        txn: TxnId,
    },
}

impl ScheduleEvent {
    /// The transaction this event belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            ScheduleEvent::Begin { txn, .. }
            | ScheduleEvent::Read { txn, .. }
            | ScheduleEvent::Write { txn, .. }
            | ScheduleEvent::Commit { txn, .. }
            | ScheduleEvent::Abort { txn } => *txn,
        }
    }
}

/// Thread-safe, append-only schedule log.
#[derive(Debug, Default)]
pub struct ScheduleLog {
    events: Mutex<Vec<ScheduleEvent>>,
    enabled: std::sync::atomic::AtomicBool,
}

impl ScheduleLog {
    /// A new, enabled log.
    pub fn new() -> Self {
        ScheduleLog {
            events: Mutex::new(Vec::new()),
            enabled: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Disable recording (for long benchmark runs where post-hoc checking
    /// is not needed and log growth would dominate).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Append an event (no-op when disabled).
    pub fn record(&self, ev: ScheduleEvent) {
        if self.is_enabled() {
            self.events.lock().push(ev);
        }
    }

    /// Copy out all events in order.
    pub fn events(&self) -> Vec<ScheduleEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all events (between experiment phases).
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SegmentId;

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    #[test]
    fn records_in_order() {
        let log = ScheduleLog::new();
        log.record(ScheduleEvent::Begin {
            txn: TxnId(1),
            start_ts: Timestamp(1),
            class: Some(ClassId(0)),
        });
        log.record(ScheduleEvent::Write {
            txn: TxnId(1),
            granule: g(0),
            version: Timestamp(1),
            value: Value::Int(7),
        });
        log.record(ScheduleEvent::Commit {
            txn: TxnId(1),
            commit_ts: Timestamp(2),
        });
        let evs = log.events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0], ScheduleEvent::Begin { .. }));
        assert_eq!(evs[2].txn(), TxnId(1));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = ScheduleLog::new();
        log.set_enabled(false);
        log.record(ScheduleEvent::Abort { txn: TxnId(3) });
        assert!(log.is_empty());
        log.set_enabled(true);
        log.record(ScheduleEvent::Abort { txn: TxnId(3) });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let log = ScheduleLog::new();
        log.record(ScheduleEvent::Abort { txn: TxnId(3) });
        log.clear();
        assert!(log.is_empty());
    }
}
