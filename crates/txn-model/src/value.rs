//! Values stored in data granules.
//!
//! The paper is agnostic about what a granule holds; the workloads in this
//! repository need integers (balances, quantities, inventory levels),
//! record-ish payloads and deletion markers, so [`Value`] is a small enum
//! covering those. Arithmetic helpers keep read-modify-write transaction
//! programs terse.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A granule value.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum Value {
    /// A signed integer (account balance, quantity, inventory level...).
    Int(i64),
    /// An opaque payload (record bodies in the inventory workload).
    #[serde(with = "serde_bytes_compat")]
    Bytes(Bytes),
    /// Deletion marker; granules start in this state before first write.
    #[default]
    Absent,
}

mod serde_bytes_compat {
    //! `bytes::Bytes` does not implement serde traits without the `serde`
    //! feature; round-trip through `Vec<u8>` instead.
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(d)?))
    }
}

impl Value {
    /// Interpret as integer, defaulting missing/non-integer values to 0.
    ///
    /// Workload programs use this for read-modify-write arithmetic over
    /// granules that may not have been written yet.
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            _ => 0,
        }
    }

    /// True if the granule logically holds no value.
    #[inline]
    pub fn is_absent(&self) -> bool {
        matches!(self, Value::Absent)
    }

    /// Byte length of the payload (0 for `Int`/`Absent`).
    #[inline]
    pub fn payload_len(&self) -> usize {
        match self {
            Value::Bytes(b) => b.len(),
            _ => 0,
        }
    }
}


impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&'static [u8]> for Value {
    fn from(b: &'static [u8]) -> Self {
        Value::Bytes(Bytes::from_static(b))
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(b))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Absent => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Value::from(42);
        assert_eq!(v.as_int(), 42);
        assert!(!v.is_absent());
    }

    #[test]
    fn absent_reads_as_zero() {
        assert_eq!(Value::Absent.as_int(), 0);
        assert!(Value::Absent.is_absent());
        assert_eq!(Value::default(), Value::Absent);
    }

    #[test]
    fn bytes_payload() {
        let v = Value::from(vec![1u8, 2, 3]);
        assert_eq!(v.payload_len(), 3);
        assert_eq!(v.as_int(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let vals = vec![Value::Int(-7), Value::from(vec![9u8; 4]), Value::Absent];
        for v in vals {
            let json = serde_json_like(&v);
            assert!(!json.is_empty());
        }
    }

    // serde_json is not a dependency; exercise serde through a throwaway
    // in-memory serializer instead (bincode-style not available either), so
    // just check the Serialize impl compiles and Debug is stable.
    fn serde_json_like(v: &Value) -> String {
        format!("{v:?}")
    }
}
