//! Values stored in data granules.
//!
//! The paper is agnostic about what a granule holds; the workloads in this
//! repository need integers (balances, quantities, inventory levels),
//! record-ish payloads and deletion markers, so [`Value`] is a small enum
//! covering those. Arithmetic helpers keep read-modify-write transaction
//! programs terse.

use std::fmt;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte payload (`Arc<[u8]>` under the
/// hood). Stands in for `bytes::Bytes`, which is unavailable offline.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Byte length.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Wrap a static slice (copies once into the shared allocation).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes(Arc::from(b))
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(b: Vec<u8>) -> Self {
        Bytes(Arc::from(b.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Self {
        Bytes(Arc::from(b))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A granule value.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// A signed integer (account balance, quantity, inventory level...).
    Int(i64),
    /// An opaque payload (record bodies in the inventory workload).
    Bytes(Bytes),
    /// Deletion marker; granules start in this state before first write.
    #[default]
    Absent,
}

impl Value {
    /// Interpret as integer, defaulting missing/non-integer values to 0.
    ///
    /// Workload programs use this for read-modify-write arithmetic over
    /// granules that may not have been written yet.
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            _ => 0,
        }
    }

    /// True if the granule logically holds no value.
    #[inline]
    pub fn is_absent(&self) -> bool {
        matches!(self, Value::Absent)
    }

    /// Byte length of the payload (0 for `Int`/`Absent`).
    #[inline]
    pub fn payload_len(&self) -> usize {
        match self {
            Value::Bytes(b) => b.len(),
            _ => 0,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&'static [u8]> for Value {
    fn from(b: &'static [u8]) -> Self {
        Value::Bytes(Bytes::from_static(b))
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(b))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Absent => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Value::from(42);
        assert_eq!(v.as_int(), 42);
        assert!(!v.is_absent());
    }

    #[test]
    fn absent_reads_as_zero() {
        assert_eq!(Value::Absent.as_int(), 0);
        assert!(Value::Absent.is_absent());
        assert_eq!(Value::default(), Value::Absent);
    }

    #[test]
    fn bytes_payload() {
        let v = Value::from(vec![1u8, 2, 3]);
        assert_eq!(v.payload_len(), 3);
        assert_eq!(v.as_int(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let v = Bytes::from(vec![9u8; 64]);
        let w = v.clone();
        assert_eq!(v, w);
        assert!(std::ptr::eq(v.as_ref().as_ptr(), w.as_ref().as_ptr()));
    }

    #[test]
    fn debug_formats_are_stable() {
        for v in [Value::Int(-7), Value::from(vec![9u8; 4]), Value::Absent] {
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
