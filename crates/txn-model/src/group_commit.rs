//! Group commit: a WAL pipeline that batches commit frames from
//! concurrent workers and fsyncs once per batch.
//!
//! The fsync is the expensive step of a durable commit — paying it per
//! transaction serializes every committer behind the disk. DGCC-style
//! batch execution (see PAPERS.md) amortizes it: workers *submit* their
//! redo frames into a shared pending buffer; the first submitter whose
//! batch is open becomes the **leader**, waits until the batch is full
//! ([`GroupCommitConfig::max_batch_frames`]) or aged
//! ([`GroupCommitConfig::max_delay`]), writes the whole batch with one
//! `write` + one `fsync`, and wakes every follower. A submit returns
//! only once its batch is durable — the **ack rule**: no commit is
//! acknowledged (and no driver counts it) before its batch reached
//! stable storage.
//!
//! # Crash and fault emulation
//!
//! The writer models the OS page cache explicitly: `write` appends to an
//! in-process `cache` buffer; `fsync` moves the cache into the real file
//! and `sync_data`s it. A [`WalFault`] hook (implemented by
//! `chaos::disk`) can, per batch, tear the write at an arbitrary byte
//! offset, drop the fsync (acked-but-volatile — the lying-disk case), or
//! crash before/after the write. After a crash the real file holds
//! exactly the synced bytes (plus any torn prefix), which is what a
//! kill-at-any-point harness then hands to recovery. This module is not
//! modeled under `--cfg mc` (it does real file I/O), so it uses
//! `std::sync` primitives directly.

use crate::schedule::ScheduleEvent;
use crate::wal::{encode_events, WAL_MAGIC, WAL_VERSION};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Batching policy for the commit pipeline.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Flush when this many frames are pending (1 = no batching: every
    /// submit pays its own fsync — the comparison point E19 measures).
    pub max_batch_frames: usize,
    /// Flush when the oldest pending frame has waited this long, even if
    /// the batch is not full (bounds commit latency under low load).
    pub max_delay: Duration,
    /// `sync_data` after each batch write. Disabling turns the pipeline
    /// into a buffered writer (no durability — bench baselines only).
    pub fsync: bool,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch_frames: 16,
            max_delay: Duration::from_millis(2),
            fsync: true,
        }
    }
}

/// What the fault hook tells the writer to do with one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Healthy path: write the batch, fsync it, ack.
    Write,
    /// Write only the first `n` bytes of the batch, force them to disk,
    /// then crash — the torn-final-write case recovery must truncate.
    TornWrite(usize),
    /// Write the batch but silently skip the fsync and ack anyway — the
    /// lying-disk case: the commit is acknowledged yet volatile, and a
    /// later crash loses it.
    DropFsync,
    /// Crash before any byte of the batch reaches the page cache.
    CrashBeforeWrite,
    /// Crash after the write but before the fsync (between WAL append
    /// and ack): the batch sat only in the page cache and is lost.
    CrashAfterWrite,
}

/// Per-batch fault hook (implemented by `chaos::disk`). `batch` is the
/// 1-based batch sequence number, `bytes` the batch size.
pub trait WalFault: Send + Sync + std::fmt::Debug {
    /// Decide this batch's fate.
    fn on_batch(&self, batch: u64, bytes: usize) -> FaultAction;
}

/// Returned to the submitter that led a batch: what one write+fsync
/// covered (followers get `None` — their frames rode in the leader's
/// batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// 1-based batch sequence number.
    pub batch: u64,
    /// Frames the batch carried.
    pub frames: usize,
    /// Encoded bytes the batch carried.
    pub bytes: usize,
    /// Nanoseconds the write+fsync took.
    pub fsync_ns: u64,
}

/// The WAL crashed (a fault hook fired, or a real I/O error): the
/// submitted frames were *not* made durable and the commit must not be
/// acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalCrashed;

impl std::fmt::Display for WalCrashed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "group-commit WAL crashed before this batch became durable"
        )
    }
}

impl std::error::Error for WalCrashed {}

/// Cumulative pipeline counters (quiescent reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupCommitStats {
    /// Batches made durable.
    pub batches: u64,
    /// Frames made durable.
    pub frames: u64,
    /// Bytes made durable (acked; under `DropFsync` acked ≠ synced).
    pub bytes: u64,
    /// Bytes actually forced to stable storage.
    pub synced_bytes: u64,
}

/// Shared batching state (under the state mutex).
#[derive(Debug)]
struct State {
    /// Encoded frames waiting for the next batch.
    pending: Vec<u8>,
    /// Frame count in `pending`.
    pending_frames: usize,
    /// When the oldest pending frame arrived.
    batch_open_at: Option<Instant>,
    /// A leader is filling/writing a batch.
    leader: bool,
    /// 1-based id of the batch currently accumulating.
    next_batch: u64,
    /// Highest batch id acked durable.
    durable_batch: u64,
    /// A fault or I/O error killed the WAL.
    crashed: bool,
    stats: GroupCommitStats,
}

/// Emulated disk state (under its own mutex; only the current leader
/// touches it, but the mutex keeps batch writes ordered).
#[derive(Debug)]
struct Disk {
    file: File,
    /// The emulated OS page cache: written, not yet fsynced. A crash
    /// drops it; only `file` contents survive.
    cache: Vec<u8>,
}

/// The group-commit WAL pipeline (see module docs).
#[derive(Debug)]
pub struct GroupCommitWal {
    cfg: GroupCommitConfig,
    path: PathBuf,
    state: Mutex<State>,
    wakeup: Condvar,
    disk: Mutex<Disk>,
    fault: Option<Box<dyn WalFault>>,
}

impl GroupCommitWal {
    /// Create (truncating) the WAL file at `path` and write + sync its
    /// magic header.
    pub fn create(path: &Path, cfg: GroupCommitConfig) -> std::io::Result<Self> {
        Self::with_fault(path, cfg, None)
    }

    /// Like [`create`](Self::create), with a per-batch fault hook.
    pub fn with_fault(
        path: &Path,
        cfg: GroupCommitConfig,
        fault: Option<Box<dyn WalFault>>,
    ) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&[WAL_VERSION])?;
        file.sync_data()?;
        Ok(GroupCommitWal {
            cfg,
            path: path.to_path_buf(),
            state: Mutex::new(State {
                pending: Vec::new(),
                pending_frames: 0,
                batch_open_at: None,
                leader: false,
                next_batch: 1,
                durable_batch: 0,
                crashed: false,
                stats: GroupCommitStats::default(),
            }),
            wakeup: Condvar::new(),
            disk: Mutex::new(Disk {
                file,
                cache: Vec::new(),
            }),
            fault,
        })
    }

    /// Path of the WAL file (what a harness hands to recovery after a
    /// crash: the file holds exactly the bytes that were synced).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True once a fault or I/O error killed the pipeline.
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Cumulative counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.state.lock().unwrap().stats
    }

    /// Submit a transaction's redo frames and block until their batch is
    /// durable (the ack rule). Returns `Some(BatchAck)` when this call
    /// led the batch (so the caller can record fsync latency), `None`
    /// when it rode as a follower. `Err(WalCrashed)` means the frames
    /// did **not** become durable.
    pub fn submit(&self, events: &[ScheduleEvent]) -> Result<Option<BatchAck>, WalCrashed> {
        if events.is_empty() {
            return Ok(None);
        }
        let frames = encode_events(events);
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(WalCrashed);
        }
        if st.pending_frames == 0 {
            st.batch_open_at = Some(Instant::now());
        }
        st.pending.extend_from_slice(&frames);
        st.pending_frames += events.len();
        let my_batch = st.next_batch;
        if st.pending_frames >= self.cfg.max_batch_frames {
            // Wake a leader stuck in its fill window.
            self.wakeup.notify_all();
        }
        let mut ack = None;
        while st.durable_batch < my_batch {
            if st.crashed {
                return Err(WalCrashed);
            }
            if st.leader {
                // A leader is filling or writing; wait for its ack (the
                // timeout only guards against missed wakeups).
                st = self
                    .wakeup
                    .wait_timeout(st, Duration::from_millis(5))
                    .unwrap()
                    .0;
                continue;
            }
            // Become the leader of the currently accumulating batch.
            st.leader = true;
            loop {
                if st.crashed {
                    st.leader = false;
                    self.wakeup.notify_all();
                    return Err(WalCrashed);
                }
                if st.pending_frames >= self.cfg.max_batch_frames {
                    break;
                }
                let open_for = st.batch_open_at.map_or(Duration::ZERO, |t| t.elapsed());
                let Some(left) = self
                    .cfg
                    .max_delay
                    .checked_sub(open_for)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                st = self.wakeup.wait_timeout(st, left).unwrap().0;
            }
            let batch = std::mem::take(&mut st.pending);
            let batch_frames = std::mem::take(&mut st.pending_frames);
            let batch_id = st.next_batch;
            st.next_batch += 1;
            st.batch_open_at = None;
            drop(st);
            let res = self.write_batch(batch_id, &batch, batch_frames);
            st = self.state.lock().unwrap();
            st.leader = false;
            match res {
                Ok(a) => {
                    st.durable_batch = batch_id;
                    st.stats.batches += 1;
                    st.stats.frames += a.frames as u64;
                    st.stats.bytes += a.bytes as u64;
                    if batch_id == my_batch {
                        ack = Some(a);
                    }
                }
                Err(WalCrashed) => st.crashed = true,
            }
            self.wakeup.notify_all();
        }
        Ok(ack)
    }

    /// Write one batch through the emulated page cache, applying the
    /// fault hook. Returns the ack or the crash.
    fn write_batch(
        &self,
        batch_id: u64,
        batch: &[u8],
        frames: usize,
    ) -> Result<BatchAck, WalCrashed> {
        let mut disk = self.disk.lock().unwrap();
        let action = self
            .fault
            .as_ref()
            .map_or(FaultAction::Write, |f| f.on_batch(batch_id, batch.len()));
        let start = Instant::now();
        let synced = match action {
            FaultAction::Write => {
                disk.cache.extend_from_slice(batch);
                if self.cfg.fsync {
                    Self::flush(&mut disk).map_err(|_| WalCrashed)?
                } else {
                    0
                }
            }
            FaultAction::DropFsync => {
                // Acked-but-volatile: the batch stays in the page cache.
                disk.cache.extend_from_slice(batch);
                0
            }
            FaultAction::TornWrite(n) => {
                // The OS flushed a prefix of the in-flight write before
                // the crash: older cache bytes plus `n` bytes of this
                // batch land on disk, the rest vanishes.
                let n = n.min(batch.len());
                disk.cache.extend_from_slice(&batch[..n]);
                let _ = Self::flush(&mut disk);
                return Err(WalCrashed);
            }
            FaultAction::CrashBeforeWrite => return Err(WalCrashed),
            FaultAction::CrashAfterWrite => {
                disk.cache.extend_from_slice(batch);
                // Never flushed: the cache dies with the process.
                return Err(WalCrashed);
            }
        };
        let fsync_ns = start.elapsed().as_nanos() as u64;
        drop(disk);
        let mut st = self.state.lock().unwrap();
        st.stats.synced_bytes += synced as u64;
        drop(st);
        Ok(BatchAck {
            batch: batch_id,
            frames,
            bytes: batch.len(),
            fsync_ns,
        })
    }

    /// Move the emulated page cache into the real file and force it to
    /// stable storage. Returns the bytes synced.
    fn flush(disk: &mut Disk) -> std::io::Result<usize> {
        let n = disk.cache.len();
        disk.file.write_all(&disk.cache)?;
        disk.cache.clear();
        disk.file.sync_data()?;
        Ok(n)
    }

    /// Force any cached bytes down (end-of-run flush for `fsync: false`
    /// pipelines and `DropFsync` remnants). Errors if already crashed.
    pub fn sync(&self) -> Result<(), WalCrashed> {
        if self.crashed() {
            return Err(WalCrashed);
        }
        let mut disk = self.disk.lock().unwrap();
        let n = Self::flush(&mut disk).map_err(|_| WalCrashed)?;
        drop(disk);
        self.state.lock().unwrap().stats.synced_bytes += n as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, GranuleId, SegmentId, Timestamp, TxnId};
    use crate::value::Value;
    use crate::wal::decode_wal;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_wal(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — test-file name uniqueness only needs RMW
        // atomicity of the counter, no cross-thread publication.
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("hdd-gcwal-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn txn_events(id: u64) -> Vec<ScheduleEvent> {
        vec![
            ScheduleEvent::Begin {
                txn: TxnId(id),
                start_ts: Timestamp(id),
                class: Some(ClassId(0)),
            },
            ScheduleEvent::Write {
                txn: TxnId(id),
                granule: GranuleId::new(SegmentId(0), 1),
                version: Timestamp(id),
                value: Arc::new(Value::Int(id as i64)),
            },
            ScheduleEvent::Commit {
                txn: TxnId(id),
                commit_ts: Timestamp(id + 1),
            },
        ]
    }

    #[test]
    fn single_submitter_is_durable_and_decodable() {
        let path = temp_wal("single");
        let wal = GroupCommitWal::create(
            &path,
            GroupCommitConfig {
                max_batch_frames: 1,
                ..GroupCommitConfig::default()
            },
        )
        .unwrap();
        let ack = wal
            .submit(&txn_events(1))
            .unwrap()
            .expect("sole submitter leads");
        assert_eq!(ack.batch, 1);
        assert_eq!(ack.frames, 3);
        let bytes = std::fs::read(&path).unwrap();
        let (events, report) = decode_wal(&bytes).unwrap();
        assert_eq!(events, txn_events(1));
        assert!(!report.torn());
        assert_eq!(wal.stats().batches, 1);
        assert_eq!(wal.stats().synced_bytes, wal.stats().bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_submitters_batch_and_all_frames_land() {
        let path = temp_wal("many");
        let wal = Arc::new(
            GroupCommitWal::create(
                &path,
                GroupCommitConfig {
                    max_batch_frames: 12,
                    max_delay: Duration::from_millis(1),
                    fsync: true,
                },
            )
            .unwrap(),
        );
        let n_threads = 4u64;
        let per_thread = 25u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per_thread {
                        wal.submit(&txn_events(1 + t * per_thread + i)).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.frames, n_threads * per_thread * 3);
        assert!(
            stats.batches < stats.frames,
            "batching must amortize: {} batches for {} frames",
            stats.batches,
            stats.frames
        );
        let (events, report) = decode_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert!(!report.torn());
        assert_eq!(events.len() as u64, stats.frames);
        // Every transaction's Begin precedes its Commit (frames of one
        // submit stay contiguous and ordered).
        let mut begun = std::collections::HashSet::new();
        for ev in &events {
            match ev {
                ScheduleEvent::Begin { txn, .. } => assert!(begun.insert(*txn)),
                ScheduleEvent::Commit { txn, .. } => assert!(begun.contains(txn)),
                _ => {}
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Crash exactly at batch `k`, with the given action.
    #[derive(Debug)]
    struct CrashAt(u64, FaultAction);
    impl WalFault for CrashAt {
        fn on_batch(&self, batch: u64, _bytes: usize) -> FaultAction {
            if batch == self.0 {
                self.1
            } else {
                FaultAction::Write
            }
        }
    }

    #[test]
    fn crash_between_append_and_ack_loses_only_the_unacked_batch() {
        let path = temp_wal("crash");
        let wal = GroupCommitWal::with_fault(
            &path,
            GroupCommitConfig {
                max_batch_frames: 1,
                ..GroupCommitConfig::default()
            },
            Some(Box::new(CrashAt(2, FaultAction::CrashAfterWrite))),
        )
        .unwrap();
        assert!(wal.submit(&txn_events(1)).is_ok());
        assert_eq!(wal.submit(&txn_events(2)), Err(WalCrashed));
        assert!(wal.crashed());
        assert_eq!(
            wal.submit(&txn_events(3)),
            Err(WalCrashed),
            "crashed WAL refuses"
        );
        // On-disk: batch 1 only; batch 2 died in the page cache.
        let (events, report) = decode_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert!(!report.torn());
        assert_eq!(events, txn_events(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_leaves_a_truncatable_tail() {
        let path = temp_wal("torn");
        let wal = GroupCommitWal::with_fault(
            &path,
            GroupCommitConfig {
                max_batch_frames: 1,
                ..GroupCommitConfig::default()
            },
            Some(Box::new(CrashAt(2, FaultAction::TornWrite(7)))),
        )
        .unwrap();
        assert!(wal.submit(&txn_events(1)).is_ok());
        assert_eq!(wal.submit(&txn_events(2)), Err(WalCrashed));
        let bytes = std::fs::read(&path).unwrap();
        let (events, report) = decode_wal(&bytes).unwrap();
        assert_eq!(events, txn_events(1), "torn frame must not replay");
        assert!(report.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_fsync_acks_but_a_later_crash_loses_the_batch() {
        let path = temp_wal("dropfsync");
        let wal = GroupCommitWal::with_fault(
            &path,
            GroupCommitConfig {
                max_batch_frames: 1,
                ..GroupCommitConfig::default()
            },
            Some(Box::new(CrashAt(2, FaultAction::DropFsync))),
        )
        .unwrap();
        assert!(wal.submit(&txn_events(1)).is_ok());
        // The lying disk acks batch 2 without syncing it...
        assert!(wal.submit(&txn_events(2)).is_ok());
        // ...batch 3 flushes the cache (2 rides along), so no loss yet;
        // but if the process dies *before* any later flush, 2 is gone.
        let (events, _) = decode_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(events, txn_events(1), "acked batch 2 is not on disk");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_before_write_leaves_disk_at_previous_batch() {
        let path = temp_wal("beforewrite");
        let wal = GroupCommitWal::with_fault(
            &path,
            GroupCommitConfig {
                max_batch_frames: 1,
                ..GroupCommitConfig::default()
            },
            Some(Box::new(CrashAt(1, FaultAction::CrashBeforeWrite))),
        )
        .unwrap();
        assert_eq!(wal.submit(&txn_events(1)), Err(WalCrashed));
        let (events, report) = decode_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert!(events.is_empty());
        assert!(!report.torn(), "header-only file is clean, not torn");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_submit_is_a_noop() {
        let path = temp_wal("empty");
        let wal = GroupCommitWal::create(&path, GroupCommitConfig::default()).unwrap();
        assert_eq!(wal.submit(&[]), Ok(None));
        assert_eq!(wal.stats(), GroupCommitStats::default());
        std::fs::remove_file(&path).ok();
    }
}
