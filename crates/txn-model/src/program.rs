//! Transaction programs: straight-line step lists with computed writes.
//!
//! Workload generators produce [`TxnProgram`]s; drivers execute them against
//! any [`Scheduler`](crate::scheduler::Scheduler). A program is a sequence
//! of reads and writes where a write's value may be *computed* from the
//! values read so far — exactly the shape of the paper's examples
//! ("reads Smith's balance … computes new balance … writes new balance").

use crate::ids::GranuleId;
use crate::scheduler::TxnProfile;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The values a transaction has read so far, available to computed writes.
/// Holds shared references to version payloads — recording a read never
/// copies the value.
#[derive(Debug, Default, Clone)]
pub struct ReadCtx {
    by_granule: HashMap<GranuleId, Arc<Value>>,
    in_order: Vec<(GranuleId, Arc<Value>)>,
}

impl ReadCtx {
    /// Record a read result.
    pub fn record(&mut self, g: GranuleId, v: Arc<Value>) {
        self.by_granule.insert(g, Arc::clone(&v));
        self.in_order.push((g, v));
    }

    /// The value read from `g` (last read wins), or [`Value::Absent`].
    pub fn get(&self, g: GranuleId) -> Value {
        self.by_granule
            .get(&g)
            .map_or(Value::Absent, |v| (**v).clone())
    }

    /// Integer value read from `g` (0 when absent).
    pub fn int(&self, g: GranuleId) -> i64 {
        self.by_granule.get(&g).map_or(0, |v| v.as_int())
    }

    /// Sum of all integer values read, in read order (duplicates counted).
    pub fn sum_ints(&self) -> i64 {
        self.in_order.iter().map(|(_, v)| v.as_int()).sum()
    }

    /// All reads in execution order.
    pub fn reads(&self) -> &[(GranuleId, Arc<Value>)] {
        &self.in_order
    }
}

/// Where a written value comes from.
#[derive(Clone)]
pub enum WriteSource {
    /// A constant determined when the program was generated.
    Const(Value),
    /// A function of the values read so far (read-modify-write).
    Computed(Arc<dyn Fn(&ReadCtx) -> Value + Send + Sync>),
}

impl WriteSource {
    /// Resolve against the transaction's reads.
    pub fn resolve(&self, ctx: &ReadCtx) -> Value {
        match self {
            WriteSource::Const(v) => v.clone(),
            WriteSource::Computed(f) => f(ctx),
        }
    }
}

impl fmt::Debug for WriteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteSource::Const(v) => write!(f, "const({v:?})"),
            WriteSource::Computed(_) => write!(f, "computed"),
        }
    }
}

/// One step of a transaction program.
#[derive(Debug, Clone)]
pub enum Step {
    /// Read a granule.
    Read(GranuleId),
    /// Write a granule.
    Write(GranuleId, WriteSource),
}

impl Step {
    /// The granule this step touches.
    pub fn granule(&self) -> GranuleId {
        match self {
            Step::Read(g) => *g,
            Step::Write(g, _) => *g,
        }
    }

    /// True for write steps.
    pub fn is_write(&self) -> bool {
        matches!(self, Step::Write(..))
    }
}

/// A complete transaction program: profile (class / declared segments) plus
/// the step list. Cloneable so aborted transactions can be re-submitted as
/// fresh transactions.
#[derive(Debug, Clone)]
pub struct TxnProgram {
    /// Class membership and declared read/write segments.
    pub profile: TxnProfile,
    /// Steps in program order.
    pub steps: Vec<Step>,
    /// Human-readable label ("type2-inventory-post", ...).
    pub label: String,
}

impl TxnProgram {
    /// Build a program, deriving the profile's segment sets from the steps
    /// (declared sets are the union of the steps' segments).
    pub fn new(label: impl Into<String>, profile: TxnProfile, steps: Vec<Step>) -> Self {
        TxnProgram {
            profile,
            steps,
            label: label.into(),
        }
    }

    /// Convenience builder.
    pub fn builder(label: impl Into<String>) -> TxnProgramBuilder {
        TxnProgramBuilder {
            label: label.into(),
            steps: Vec::new(),
        }
    }

    /// Number of read steps.
    pub fn read_count(&self) -> usize {
        self.steps.iter().filter(|s| !s.is_write()).count()
    }

    /// Number of write steps.
    pub fn write_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_write()).count()
    }
}

/// Step-list builder for [`TxnProgram`]; the profile is attached at
/// `build` time since class assignment depends on the hierarchy.
#[derive(Debug)]
pub struct TxnProgramBuilder {
    label: String,
    steps: Vec<Step>,
}

impl TxnProgramBuilder {
    /// Append a read step.
    pub fn read(mut self, g: GranuleId) -> Self {
        self.steps.push(Step::Read(g));
        self
    }

    /// Append a constant write step.
    pub fn write(mut self, g: GranuleId, v: impl Into<Value>) -> Self {
        self.steps
            .push(Step::Write(g, WriteSource::Const(v.into())));
        self
    }

    /// Append a computed write step.
    pub fn write_computed(
        mut self,
        g: GranuleId,
        f: impl Fn(&ReadCtx) -> Value + Send + Sync + 'static,
    ) -> Self {
        self.steps
            .push(Step::Write(g, WriteSource::Computed(Arc::new(f))));
        self
    }

    /// Attach the profile and finish.
    pub fn build(self, profile: TxnProfile) -> TxnProgram {
        TxnProgram::new(self.label, profile, self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClassId, GranuleId, SegmentId};

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    #[test]
    fn read_ctx_tracks_order_and_latest() {
        let mut ctx = ReadCtx::default();
        ctx.record(g(0, 1), Arc::new(Value::Int(10)));
        ctx.record(g(0, 2), Arc::new(Value::Int(5)));
        ctx.record(g(0, 1), Arc::new(Value::Int(20))); // re-read
        assert_eq!(ctx.int(g(0, 1)), 20);
        assert_eq!(ctx.sum_ints(), 35);
        assert_eq!(ctx.reads().len(), 3);
        assert_eq!(ctx.get(g(9, 9)), Value::Absent);
    }

    #[test]
    fn computed_write_sees_reads() {
        let mut ctx = ReadCtx::default();
        ctx.record(g(0, 1), Arc::new(Value::Int(100)));
        let w = WriteSource::Computed(Arc::new(|c: &ReadCtx| Value::Int(c.int(g(0, 1)) + 50)));
        assert_eq!(w.resolve(&ctx), Value::Int(150));
        assert_eq!(
            WriteSource::Const(Value::Int(7)).resolve(&ctx),
            Value::Int(7)
        );
    }

    #[test]
    fn builder_produces_expected_steps() {
        let p = TxnProgram::builder("deposit")
            .read(g(0, 1))
            .write_computed(g(0, 1), |c| Value::Int(c.int(g(0, 1)) + 50))
            .build(TxnProfile::update(ClassId(0), vec![SegmentId(0)]));
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.read_count(), 1);
        assert_eq!(p.write_count(), 1);
        assert!(p.steps[1].is_write());
        assert_eq!(p.steps[0].granule(), g(0, 1));
        assert_eq!(p.label, "deposit");
    }
}
