//! The multi-version transaction dependency graph of Section 2, and the
//! acyclicity-based serializability checker.
//!
//! Paper (Section 2): arcs `t2 → t1` exist iff
//!
//! 1. `t1` wrote a version `d^v` and `t2` read `d^v` (reads-from), or
//! 2. `t1` read a version `d^j` and `t2` wrote `d^k` where `d^j` is the
//!    *predecessor* of `d^k` in `d`'s version order (write-after-read).
//!
//! *Theorem (Bernstein 82): a schedule is serializable iff this graph is
//! acyclic.* Every experiment in the repository rebuilds this graph from a
//! run's [`ScheduleLog`] and asserts acyclicity (or, for the deliberately
//! broken baselines of Figures 1/3/4, asserts the presence of a cycle).
//!
//! Only *committed* transactions participate: versions written by aborted
//! transactions are discarded by every scheduler, and reads performed by
//! aborted transactions impose no ordering. Pre-loaded data is modelled as
//! versions written by the virtual committed transaction
//! [`INITIAL_WRITER`](crate::schedule::INITIAL_WRITER).

use crate::ids::{GranuleId, Timestamp, TxnId};
use crate::schedule::{ScheduleEvent, ScheduleLog, INITIAL_WRITER};
use std::collections::{HashMap, HashSet};

/// The transaction dependency graph `TG(S(T))` of a recorded schedule.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// Node ids, in insertion order. Index = position.
    nodes: Vec<TxnId>,
    /// Map node id -> index.
    index: HashMap<TxnId, usize>,
    /// Adjacency: `adj[i]` lists indices `j` with arc `nodes[i] → nodes[j]`
    /// (i depends on j).
    adj: Vec<Vec<usize>>,
    edge_set: HashSet<(usize, usize)>,
    /// Reads whose writer never committed (dirty reads that survived).
    /// Nonzero only for deliberately broken schedulers.
    reads_from_uncommitted: usize,
}

impl DependencyGraph {
    /// Build the dependency graph from a schedule log.
    pub fn from_log(log: &ScheduleLog) -> Self {
        Self::from_events(&log.events())
    }

    /// Build from an explicit event sequence.
    pub fn from_events(events: &[ScheduleEvent]) -> Self {
        let mut committed: HashSet<TxnId> = HashSet::new();
        committed.insert(INITIAL_WRITER);
        for ev in events {
            if let ScheduleEvent::Commit { txn, .. } = ev {
                committed.insert(*txn);
            }
        }

        // Committed versions per granule, keyed by version timestamp.
        // version -> writer, plus the sorted version order (for the
        // predecessor relation).
        let mut versions: HashMap<GranuleId, Vec<(Timestamp, TxnId)>> = HashMap::new();
        for ev in events {
            match ev {
                ScheduleEvent::Write {
                    txn,
                    granule,
                    version,
                    ..
                } if committed.contains(txn) => {
                    versions.entry(*granule).or_default().push((*version, *txn));
                }
                // Every granule implicitly has an initial version at
                // Timestamp::ZERO written by the virtual initial writer;
                // materialize it for any granule that is read, so the
                // predecessor relation covers reads of pre-loaded data.
                ScheduleEvent::Read { granule, .. } => {
                    versions.entry(*granule).or_default();
                }
                _ => {}
            }
        }
        for chain in versions.values_mut() {
            if !chain.iter().any(|(ts, _)| *ts == Timestamp::ZERO) {
                chain.push((Timestamp::ZERO, INITIAL_WRITER));
            }
            chain.sort_unstable_by_key(|(ts, _)| *ts);
            // A transaction may overwrite its own version; keep the last
            // write per (granule, ts) — timestamps are unique per writer,
            // so duplicates only arise from blind self-overwrites.
            chain.dedup_by_key(|(ts, _)| *ts);
        }

        // Reads performed by committed transactions.
        let mut graph = DependencyGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            adj: Vec::new(),
            edge_set: HashSet::new(),
            reads_from_uncommitted: 0,
        };

        // Ensure all committed txns (except the virtual initial writer)
        // appear as nodes even if they never conflicted.
        for ev in events {
            let t = ev.txn();
            if committed.contains(&t) {
                graph.node(t);
            }
        }

        for ev in events {
            if let ScheduleEvent::Read {
                txn,
                granule,
                version,
                writer,
            } = ev
            {
                if !committed.contains(txn) {
                    continue;
                }
                // Rule 1: reads-from. txn depends on writer.
                if *writer != *txn {
                    if committed.contains(writer) {
                        if *writer != INITIAL_WRITER {
                            graph.arc(*txn, *writer);
                        }
                    } else {
                        graph.reads_from_uncommitted += 1;
                    }
                }
                // Rule 2: write-after-read. The creator of the *successor*
                // of the read version depends on txn.
                if let Some(chain) = versions.get(granule) {
                    if let Some(pos) = chain.iter().position(|(ts, _)| *ts == *version) {
                        if let Some((_, succ_writer)) = chain.get(pos + 1) {
                            if *succ_writer != *txn {
                                graph.arc(*succ_writer, *txn);
                            }
                        }
                    }
                }
            }
        }

        graph
    }

    fn node(&mut self, t: TxnId) -> usize {
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(t);
        self.index.insert(t, i);
        self.adj.push(Vec::new());
        i
    }

    fn arc(&mut self, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        let f = self.node(from);
        let t = self.node(to);
        if self.edge_set.insert((f, t)) {
            self.adj[f].push(t);
        }
    }

    /// All transactions in the graph.
    pub fn transactions(&self) -> &[TxnId] {
        &self.nodes
    }

    /// Direct dependencies of `t` (the transactions `t` depends on).
    pub fn depends_on(&self, t: TxnId) -> Vec<TxnId> {
        match self.index.get(&t) {
            Some(&i) => self.adj[i].iter().map(|&j| self.nodes[j]).collect(),
            None => Vec::new(),
        }
    }

    /// True iff arc `from → to` exists.
    pub fn has_arc(&self, from: TxnId, to: TxnId) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.edge_set.contains(&(f, t)),
            _ => false,
        }
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Count of committed reads that observed uncommitted data
    /// (only broken schedulers produce these).
    pub fn dirty_reads(&self) -> usize {
        self.reads_from_uncommitted
    }

    /// The paper's correctness criterion: serializable iff acyclic.
    pub fn is_serializable(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Find a dependency cycle, if any, as a list of transactions
    /// `t_0 → t_1 → ... → t_k → t_0`.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.nodes.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];

        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS with explicit stack of (node, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < self.adj[u].len() {
                    let v = self.adj[u][*ei];
                    *ei += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            // Found a cycle: walk back from u to v.
                            let mut cycle = vec![self.nodes[v]];
                            let mut cur = u;
                            while cur != v {
                                cycle.push(self.nodes[cur]);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Render the dependency graph in Graphviz DOT. Arcs point from the
    /// depending transaction to the one it depends on; transactions on a
    /// detected cycle are drawn red.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let cycle: std::collections::HashSet<TxnId> =
            self.find_cycle().unwrap_or_default().into_iter().collect();
        let mut out = String::from("digraph dependencies {\n  rankdir=LR;\n");
        for &t in &self.nodes {
            let style = if cycle.contains(&t) {
                " [color=red, fontcolor=red]"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{t}\"{style};");
        }
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                let (a, b) = (self.nodes[u], self.nodes[v]);
                let style = if cycle.contains(&a) && cycle.contains(&b) {
                    " [color=red]"
                } else {
                    ""
                };
                let _ = writeln!(out, "  \"{a}\" -> \"{b}\"{style};");
            }
        }
        out.push_str("}\n");
        out
    }

    /// A serialization order (reverse topological order of the dependency
    /// graph: every transaction appears after everything it depends on).
    /// `None` when the graph has a cycle.
    pub fn serialization_order(&self) -> Option<Vec<TxnId>> {
        if !self.is_serializable() {
            return None;
        }
        let n = self.nodes.len();
        // Kahn over reversed arcs: out-degree = number of dependencies.
        let mut outdeg: Vec<usize> = self.adj.iter().map(|a| a.len()).collect();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                rev[v].push(u);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(self.nodes[u]);
            for &w in &rev[u] {
                outdeg[w] -= 1;
                if outdeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SegmentId;

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn begin(t: u64) -> ScheduleEvent {
        ScheduleEvent::Begin {
            txn: TxnId(t),
            start_ts: Timestamp(t),
            class: None,
        }
    }

    fn write(t: u64, key: u64, v: u64) -> ScheduleEvent {
        ScheduleEvent::Write {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(v),
            value: std::sync::Arc::new(crate::value::Value::Int(v as i64)),
        }
    }

    fn read(t: u64, key: u64, v: u64, writer: u64) -> ScheduleEvent {
        ScheduleEvent::Read {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(v),
            writer: TxnId(writer),
        }
    }

    fn commit(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Commit {
            txn: TxnId(t),
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn reads_from_arc() {
        // t1 writes, t2 reads t1's version: t2 → t1.
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            commit(1, 10),
            begin(2),
            read(2, 0, 1, 1),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(!dg.has_arc(TxnId(1), TxnId(2)));
        assert!(dg.is_serializable());
        let order = dg.serialization_order().unwrap();
        let p1 = order.iter().position(|&t| t == TxnId(1)).unwrap();
        let p2 = order.iter().position(|&t| t == TxnId(2)).unwrap();
        assert!(p1 < p2, "t1 must precede t2 in serialization order");
    }

    #[test]
    fn write_after_read_arc() {
        // t1 reads initial version; t2 writes successor: t2 → t1.
        let evs = vec![
            begin(1),
            read(1, 0, 0, 0), // reads initial version ts=0
            commit(1, 10),
            begin(2),
            write(2, 0, 2),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(dg.is_serializable());
    }

    #[test]
    fn lost_update_cycle_detected() {
        // Classic non-serializable multi-version witness (write skew):
        //   t1 reads x@v0; t2 writes the successor of x@v0 ⇒ t2 → t1.
        //   t2 reads z@v0; t1 writes the successor of z@v0 ⇒ t1 → t2.
        let evs = vec![
            begin(1),
            begin(2),
            read(1, 0, 0, 0), // t1 reads x@v0
            read(2, 1, 0, 0), // t2 reads z@v0
            write(2, 0, 4),   // t2 writes x (successor of v0)
            write(1, 1, 5),   // t1 writes z (successor of v0)
            commit(1, 10),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(dg.has_arc(TxnId(1), TxnId(2)));
        assert!(!dg.is_serializable());
        let cycle = dg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
        assert!(dg.serialization_order().is_none());
    }

    #[test]
    fn aborted_transactions_are_ignored() {
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            ScheduleEvent::Abort { txn: TxnId(1) },
            begin(2),
            read(2, 0, 0, 0),
            commit(2, 5),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.is_serializable());
        assert_eq!(dg.arc_count(), 0);
        assert!(!dg.transactions().contains(&TxnId(1)));
    }

    #[test]
    fn dirty_read_counted() {
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            begin(2),
            read(2, 0, 1, 1), // reads t1's version
            commit(2, 5),
            ScheduleEvent::Abort { txn: TxnId(1) }, // t1 never commits
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert_eq!(dg.dirty_reads(), 1);
    }

    #[test]
    fn self_reads_produce_no_arcs() {
        let evs = vec![begin(1), write(1, 0, 1), read(1, 0, 1, 1), commit(1, 5)];
        let dg = DependencyGraph::from_events(&evs);
        assert_eq!(dg.arc_count(), 0);
        assert!(dg.is_serializable());
    }

    #[test]
    fn dot_export_highlights_cycles() {
        let evs = vec![
            begin(1),
            begin(2),
            read(1, 0, 0, 0),
            read(2, 1, 0, 0),
            write(2, 0, 4),
            write(1, 1, 5),
            commit(1, 10),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        let dot = dg.to_dot();
        assert!(dot.starts_with("digraph dependencies"));
        assert!(dot.contains("[color=red"), "cycle must be highlighted");
        assert!(dot.contains("\"t1\" -> \"t2\""));

        // Acyclic graph: no red.
        let evs = vec![begin(1), write(1, 0, 1), commit(1, 5)];
        let dot = DependencyGraph::from_events(&evs).to_dot();
        assert!(!dot.contains("red"));
    }

    #[test]
    fn three_txn_cycle_found() {
        // t1 → t2 → t3 → t1 via reads-from chain plus rule 2.
        let evs = vec![
            begin(1),
            begin(2),
            begin(3),
            // t2 reads version by t1 ⇒ t2 → t1
            write(1, 0, 1),
            commit(1, 9),
            read(2, 0, 1, 1),
            // t3 reads version by t2 ⇒ t3 → t2
            write(2, 1, 2),
            commit(2, 10),
            read(3, 1, 2, 2),
            // t1 read granule 2 @v0 and t3 wrote its successor ⇒ t3 → t1...
            // we need t1 → t3: t3 reads granule 3 @v0, t1 wrote successor
            read(3, 3, 0, 0),
            write(1, 3, 1),
            commit(3, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(dg.has_arc(TxnId(3), TxnId(2)));
        assert!(dg.has_arc(TxnId(1), TxnId(3)));
        assert!(!dg.is_serializable());
        assert_eq!(dg.find_cycle().unwrap().len(), 3);
    }
}
