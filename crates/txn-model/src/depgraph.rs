//! The multi-version transaction dependency graph of Section 2, and the
//! acyclicity-based serializability checker.
//!
//! Paper (Section 2): arcs `t2 → t1` exist iff
//!
//! 1. `t1` wrote a version `d^v` and `t2` read `d^v` (reads-from), or
//! 2. `t1` read a version `d^j` and `t2` wrote `d^k` where `d^j` is the
//!    *predecessor* of `d^k` in `d`'s version order (write-after-read).
//!    Versions `t1` itself wrote in between (its own read-modify-write
//!    output) do not shield it: the arc falls on the first *foreign*
//!    successor writer, which is what makes the single-granule lost
//!    update visible as a two-cycle.
//!
//! *Theorem (Bernstein 82): a schedule is serializable iff this graph is
//! acyclic.* Every experiment in the repository rebuilds this graph from a
//! run's [`ScheduleLog`] and asserts acyclicity (or, for the deliberately
//! broken baselines of Figures 1/3/4, asserts the presence of a cycle).
//!
//! Only *committed* transactions participate: versions written by aborted
//! transactions are discarded by every scheduler, and reads performed by
//! aborted transactions impose no ordering. Pre-loaded data is modelled as
//! versions written by the virtual committed transaction
//! [`INITIAL_WRITER`].

use crate::ids::{GranuleId, Timestamp, TxnId};
use crate::schedule::{ScheduleEvent, ScheduleLog, INITIAL_WRITER};
use std::collections::{HashMap, HashSet};

/// The conflict kinds carried by one dependency arc.
///
/// An arc can hold several kinds at once (e.g. `t2` both read `t1`'s
/// version of one granule and overwrote a granule both transactions
/// touched). `wr` and `rw` are the two arc-inducing rules of Section 2;
/// `ww` is a derived annotation — the arc *also* connects two writers of
/// a common granule — attached for report readability only (it never
/// creates an arc by itself, so the arc set and all acyclicity results
/// are unchanged).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArcKinds {
    /// Rule 1, reads-from: the source read a version the target wrote.
    pub wr: bool,
    /// Rule 2, write-after-read: the source wrote the successor of a
    /// version the target read.
    pub rw: bool,
    /// Both endpoints wrote some common granule (annotation only).
    pub ww: bool,
}

impl ArcKinds {
    /// Compact label such as `"wr"`, `"rw"`, or `"wr+ww"` for DOT arcs
    /// and text reports.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.wr {
            parts.push("wr");
        }
        if self.rw {
            parts.push("rw");
        }
        if self.ww {
            parts.push("ww");
        }
        parts.join("+")
    }
}

impl std::fmt::Display for ArcKinds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The transaction dependency graph `TG(S(T))` of a recorded schedule.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// Node ids, in insertion order. Index = position.
    nodes: Vec<TxnId>,
    /// Map node id -> index.
    index: HashMap<TxnId, usize>,
    /// Adjacency: `adj[i]` lists indices `j` with arc `nodes[i] → nodes[j]`
    /// (i depends on j).
    adj: Vec<Vec<usize>>,
    edge_set: HashSet<(usize, usize)>,
    /// Conflict-kind annotation per arc in `edge_set`.
    kinds: HashMap<(usize, usize), ArcKinds>,
    /// Reads whose writer never committed (dirty reads that survived).
    /// Nonzero only for deliberately broken schedulers.
    reads_from_uncommitted: usize,
}

impl DependencyGraph {
    /// Build the dependency graph from a schedule log.
    pub fn from_log(log: &ScheduleLog) -> Self {
        Self::from_events(&log.events())
    }

    /// Build from an explicit event sequence.
    pub fn from_events(events: &[ScheduleEvent]) -> Self {
        let mut committed: HashSet<TxnId> = HashSet::new();
        committed.insert(INITIAL_WRITER);
        for ev in events {
            if let ScheduleEvent::Commit { txn, .. } = ev {
                committed.insert(*txn);
            }
        }

        // Committed versions per granule, keyed by version timestamp.
        // version -> writer, plus the sorted version order (for the
        // predecessor relation).
        let mut versions: HashMap<GranuleId, Vec<(Timestamp, TxnId)>> = HashMap::new();
        for ev in events {
            match ev {
                ScheduleEvent::Write {
                    txn,
                    granule,
                    version,
                    ..
                } if committed.contains(txn) => {
                    versions.entry(*granule).or_default().push((*version, *txn));
                }
                // Every granule implicitly has an initial version at
                // Timestamp::ZERO written by the virtual initial writer;
                // materialize it for any granule that is read, so the
                // predecessor relation covers reads of pre-loaded data.
                ScheduleEvent::Read { granule, .. } => {
                    versions.entry(*granule).or_default();
                }
                _ => {}
            }
        }
        for chain in versions.values_mut() {
            if !chain.iter().any(|(ts, _)| *ts == Timestamp::ZERO) {
                chain.push((Timestamp::ZERO, INITIAL_WRITER));
            }
            chain.sort_unstable_by_key(|(ts, _)| *ts);
            // A transaction may overwrite its own version; keep the last
            // write per (granule, ts) — timestamps are unique per writer,
            // so duplicates only arise from blind self-overwrites.
            chain.dedup_by_key(|(ts, _)| *ts);
        }

        // Reads performed by committed transactions.
        let mut graph = DependencyGraph {
            nodes: Vec::new(),
            index: HashMap::new(),
            adj: Vec::new(),
            edge_set: HashSet::new(),
            kinds: HashMap::new(),
            reads_from_uncommitted: 0,
        };

        // Ensure all committed txns (except the virtual initial writer)
        // appear as nodes even if they never conflicted.
        for ev in events {
            let t = ev.txn();
            if committed.contains(&t) {
                graph.node(t);
            }
        }

        for ev in events {
            if let ScheduleEvent::Read {
                txn,
                granule,
                version,
                writer,
            } = ev
            {
                if !committed.contains(txn) {
                    continue;
                }
                // Rule 1: reads-from. txn depends on writer.
                if *writer != *txn {
                    if committed.contains(writer) {
                        if *writer != INITIAL_WRITER {
                            graph.arc(
                                *txn,
                                *writer,
                                ArcKinds {
                                    wr: true,
                                    ..ArcKinds::default()
                                },
                            );
                        }
                    } else {
                        graph.reads_from_uncommitted += 1;
                    }
                }
                // Rule 2: write-after-read. The creator of the *successor*
                // of the read version depends on txn. When the reader
                // itself wrote the immediate successor (a read-modify-
                // write), the dependency falls on the next *foreign*
                // writer along the version order — dropping it entirely
                // would hide the single-granule lost update (both
                // transactions read `d^0`, both write; each writer must
                // follow the other's read).
                if let Some(chain) = versions.get(granule) {
                    if let Some(pos) = chain.iter().position(|(ts, _)| *ts == *version) {
                        // First successor version not written by the
                        // reader itself (intermediate versions, if any,
                        // are the reader's own RMW output).
                        if let Some((_, succ_writer)) =
                            chain[pos + 1..].iter().find(|(_, w)| *w != *txn)
                        {
                            graph.arc(
                                *succ_writer,
                                *txn,
                                ArcKinds {
                                    rw: true,
                                    ..ArcKinds::default()
                                },
                            );
                        }
                    }
                }
            }
        }

        // Annotate (never add) ww: an existing arc whose endpoints both
        // wrote some common granule additionally carries the ww flag.
        for chain in versions.values() {
            for (i, (_, a)) in chain.iter().enumerate() {
                for (_, b) in chain.iter().skip(i + 1) {
                    if a == b {
                        continue;
                    }
                    for (from, to) in [(*a, *b), (*b, *a)] {
                        if let (Some(&f), Some(&t)) = (graph.index.get(&from), graph.index.get(&to))
                        {
                            if graph.edge_set.contains(&(f, t)) {
                                graph.kinds.entry((f, t)).or_default().ww = true;
                            }
                        }
                    }
                }
            }
        }

        graph
    }

    fn node(&mut self, t: TxnId) -> usize {
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(t);
        self.index.insert(t, i);
        self.adj.push(Vec::new());
        i
    }

    fn arc(&mut self, from: TxnId, to: TxnId, kinds: ArcKinds) {
        if from == to {
            return;
        }
        let f = self.node(from);
        let t = self.node(to);
        if self.edge_set.insert((f, t)) {
            self.adj[f].push(t);
        }
        let k = self.kinds.entry((f, t)).or_default();
        k.wr |= kinds.wr;
        k.rw |= kinds.rw;
        k.ww |= kinds.ww;
    }

    /// All transactions in the graph.
    pub fn transactions(&self) -> &[TxnId] {
        &self.nodes
    }

    /// Direct dependencies of `t` (the transactions `t` depends on).
    pub fn depends_on(&self, t: TxnId) -> Vec<TxnId> {
        match self.index.get(&t) {
            Some(&i) => self.adj[i].iter().map(|&j| self.nodes[j]).collect(),
            None => Vec::new(),
        }
    }

    /// True iff arc `from → to` exists.
    pub fn has_arc(&self, from: TxnId, to: TxnId) -> bool {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.edge_set.contains(&(f, t)),
            _ => false,
        }
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Conflict kinds of arc `from → to`, if the arc exists.
    pub fn arc_kinds(&self, from: TxnId, to: TxnId) -> Option<ArcKinds> {
        match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => self.kinds.get(&(f, t)).copied(),
            _ => None,
        }
    }

    /// All arcs as `(from, to, kinds)` triples, in node-insertion order.
    pub fn arcs(&self) -> Vec<(TxnId, TxnId, ArcKinds)> {
        let mut out = Vec::with_capacity(self.edge_set.len());
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                out.push((
                    self.nodes[u],
                    self.nodes[v],
                    self.kinds.get(&(u, v)).copied().unwrap_or_default(),
                ));
            }
        }
        out
    }

    /// Count of committed reads that observed uncommitted data
    /// (only broken schedulers produce these).
    pub fn dirty_reads(&self) -> usize {
        self.reads_from_uncommitted
    }

    /// The paper's correctness criterion: serializable iff acyclic.
    pub fn is_serializable(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Find a dependency cycle, if any, as a list of transactions
    /// `t_0 → t_1 → ... → t_k → t_0`.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.nodes.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];

        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS with explicit stack of (node, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < self.adj[u].len() {
                    let v = self.adj[u][*ei];
                    *ei += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            // Found a cycle: walk back from u to v.
                            let mut cycle = vec![self.nodes[v]];
                            let mut cur = u;
                            while cur != v {
                                cycle.push(self.nodes[cur]);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Render the dependency graph in Graphviz DOT. Arcs point from the
    /// depending transaction to the one it depends on, labelled with
    /// their conflict kinds (`wr`/`rw`, plus a `ww` annotation when both
    /// endpoints wrote a common granule); transactions and arcs on a
    /// detected cycle are drawn red and bold so certifier reports read
    /// at a glance.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let cycle: std::collections::HashSet<TxnId> =
            self.find_cycle().unwrap_or_default().into_iter().collect();
        let mut out = String::from("digraph dependencies {\n  rankdir=LR;\n");
        for &t in &self.nodes {
            let style = if cycle.contains(&t) {
                " [color=red, fontcolor=red, penwidth=2]"
            } else {
                ""
            };
            let _ = writeln!(out, "  \"{t}\"{style};");
        }
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                let (a, b) = (self.nodes[u], self.nodes[v]);
                let label = self
                    .kinds
                    .get(&(u, v))
                    .map(ArcKinds::label)
                    .unwrap_or_default();
                let mut attrs = vec![format!("label=\"{label}\"")];
                if cycle.contains(&a) && cycle.contains(&b) {
                    attrs.push("color=red".into());
                    attrs.push("fontcolor=red".into());
                    attrs.push("penwidth=2".into());
                }
                let _ = writeln!(out, "  \"{a}\" -> \"{b}\" [{}];", attrs.join(", "));
            }
        }
        out.push_str("}\n");
        out
    }

    /// A serialization order (reverse topological order of the dependency
    /// graph: every transaction appears after everything it depends on).
    /// `None` when the graph has a cycle.
    pub fn serialization_order(&self) -> Option<Vec<TxnId>> {
        if !self.is_serializable() {
            return None;
        }
        let n = self.nodes.len();
        // Kahn over reversed arcs: out-degree = number of dependencies.
        let mut outdeg: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                rev[v].push(u);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| outdeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(self.nodes[u]);
            for &w in &rev[u] {
                outdeg[w] -= 1;
                if outdeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SegmentId;

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn begin(t: u64) -> ScheduleEvent {
        ScheduleEvent::Begin {
            txn: TxnId(t),
            start_ts: Timestamp(t),
            class: None,
        }
    }

    fn write(t: u64, key: u64, v: u64) -> ScheduleEvent {
        ScheduleEvent::Write {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(v),
            value: std::sync::Arc::new(crate::value::Value::Int(v as i64)),
        }
    }

    fn read(t: u64, key: u64, v: u64, writer: u64) -> ScheduleEvent {
        ScheduleEvent::Read {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(v),
            writer: TxnId(writer),
        }
    }

    fn commit(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Commit {
            txn: TxnId(t),
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn reads_from_arc() {
        // t1 writes, t2 reads t1's version: t2 → t1.
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            commit(1, 10),
            begin(2),
            read(2, 0, 1, 1),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(!dg.has_arc(TxnId(1), TxnId(2)));
        assert!(dg.is_serializable());
        let order = dg.serialization_order().unwrap();
        let p1 = order.iter().position(|&t| t == TxnId(1)).unwrap();
        let p2 = order.iter().position(|&t| t == TxnId(2)).unwrap();
        assert!(p1 < p2, "t1 must precede t2 in serialization order");
    }

    #[test]
    fn write_after_read_arc() {
        // t1 reads initial version; t2 writes successor: t2 → t1.
        let evs = vec![
            begin(1),
            read(1, 0, 0, 0), // reads initial version ts=0
            commit(1, 10),
            begin(2),
            write(2, 0, 2),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(dg.is_serializable());
    }

    #[test]
    fn lost_update_cycle_detected() {
        // Classic non-serializable multi-version witness (write skew):
        //   t1 reads x@v0; t2 writes the successor of x@v0 ⇒ t2 → t1.
        //   t2 reads z@v0; t1 writes the successor of z@v0 ⇒ t1 → t2.
        let evs = vec![
            begin(1),
            begin(2),
            read(1, 0, 0, 0), // t1 reads x@v0
            read(2, 1, 0, 0), // t2 reads z@v0
            write(2, 0, 4),   // t2 writes x (successor of v0)
            write(1, 1, 5),   // t1 writes z (successor of v0)
            commit(1, 10),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(dg.has_arc(TxnId(1), TxnId(2)));
        assert!(!dg.is_serializable());
        let cycle = dg.find_cycle().unwrap();
        assert!(cycle.len() >= 2);
        assert!(dg.serialization_order().is_none());
    }

    #[test]
    fn single_granule_lost_update_cycle_detected() {
        // Both transactions read x@v0 and write x (read-modify-write).
        // t1's own successor version does not shield it from t2's later
        // write: t2 → t1 (rule 2 past own write) and t1 → t2 (plain
        // rule 2) close the lost-update cycle.
        let evs = vec![
            begin(1),
            begin(2),
            read(1, 0, 0, 0),
            read(2, 0, 0, 0),
            write(1, 0, 4),
            write(2, 0, 5),
            commit(1, 10),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(1), TxnId(2)), "t1 depends on t2");
        assert!(dg.has_arc(TxnId(2), TxnId(1)), "t2 depends on t1");
        assert!(!dg.is_serializable());
    }

    #[test]
    fn aborted_transactions_are_ignored() {
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            ScheduleEvent::Abort {
                txn: TxnId(1),
                abort_ts: Timestamp(99),
            },
            begin(2),
            read(2, 0, 0, 0),
            commit(2, 5),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.is_serializable());
        assert_eq!(dg.arc_count(), 0);
        assert!(!dg.transactions().contains(&TxnId(1)));
    }

    #[test]
    fn dirty_read_counted() {
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            begin(2),
            read(2, 0, 1, 1), // reads t1's version
            commit(2, 5),
            ScheduleEvent::Abort {
                txn: TxnId(1),
                abort_ts: Timestamp(99),
            }, // t1 never commits
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert_eq!(dg.dirty_reads(), 1);
    }

    #[test]
    fn self_reads_produce_no_arcs() {
        let evs = vec![begin(1), write(1, 0, 1), read(1, 0, 1, 1), commit(1, 5)];
        let dg = DependencyGraph::from_events(&evs);
        assert_eq!(dg.arc_count(), 0);
        assert!(dg.is_serializable());
    }

    #[test]
    fn dot_export_highlights_cycles() {
        let evs = vec![
            begin(1),
            begin(2),
            read(1, 0, 0, 0),
            read(2, 1, 0, 0),
            write(2, 0, 4),
            write(1, 1, 5),
            commit(1, 10),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        let dot = dg.to_dot();
        assert!(dot.starts_with("digraph dependencies"));
        assert!(dot.contains("[color=red"), "cycle must be highlighted");
        assert!(dot.contains("\"t1\" -> \"t2\""));
        assert!(
            dot.contains("label=\"rw\""),
            "write-after-read arcs must be labelled: {dot}"
        );

        // Acyclic graph: no red.
        let evs = vec![begin(1), write(1, 0, 1), commit(1, 5)];
        let dot = DependencyGraph::from_events(&evs).to_dot();
        assert!(!dot.contains("red"));
    }

    #[test]
    fn arc_kinds_classify_rules() {
        // t2 reads t1's version (wr) and both write granule 7 (ww
        // annotation on the same arc).
        let evs = vec![
            begin(1),
            write(1, 0, 1),
            write(1, 7, 1),
            commit(1, 10),
            begin(2),
            read(2, 0, 1, 1),
            write(2, 7, 12),
            commit(2, 12),
        ];
        let dg = DependencyGraph::from_events(&evs);
        let k = dg.arc_kinds(TxnId(2), TxnId(1)).unwrap();
        assert!(k.wr && k.ww && !k.rw, "got {k:?}");
        assert_eq!(k.label(), "wr+ww");

        // Pure rule 2: t1 reads initial, t2 writes successor.
        let evs = vec![
            begin(1),
            read(1, 0, 0, 0),
            commit(1, 10),
            begin(2),
            write(2, 0, 2),
            commit(2, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        let k = dg.arc_kinds(TxnId(2), TxnId(1)).unwrap();
        assert!(k.rw && !k.wr && !k.ww);
        assert_eq!(dg.arcs().len(), dg.arc_count());
    }

    #[test]
    fn three_txn_cycle_found() {
        // t1 → t2 → t3 → t1 via reads-from chain plus rule 2.
        let evs = vec![
            begin(1),
            begin(2),
            begin(3),
            // t2 reads version by t1 ⇒ t2 → t1
            write(1, 0, 1),
            commit(1, 9),
            read(2, 0, 1, 1),
            // t3 reads version by t2 ⇒ t3 → t2
            write(2, 1, 2),
            commit(2, 10),
            read(3, 1, 2, 2),
            // t1 read granule 2 @v0 and t3 wrote its successor ⇒ t3 → t1...
            // we need t1 → t3: t3 reads granule 3 @v0, t1 wrote successor
            read(3, 3, 0, 0),
            write(1, 3, 1),
            commit(3, 11),
        ];
        let dg = DependencyGraph::from_events(&evs);
        assert!(dg.has_arc(TxnId(2), TxnId(1)));
        assert!(dg.has_arc(TxnId(3), TxnId(2)));
        assert!(dg.has_arc(TxnId(1), TxnId(3)));
        assert!(!dg.is_serializable());
        assert_eq!(dg.find_cycle().unwrap().len(), 3);
    }
}
