//! The scheduler interface every concurrency control implements.
//!
//! The HDD scheduler and all baselines expose the same five-call surface
//! (`begin` / `read` / `write` / `commit` / `abort`), so drivers, tests,
//! benches and examples are generic over the concurrency control.
//!
//! Blocking is modelled by *polling*: a `read`/`write` that must wait
//! returns [`ReadOutcome::Block`] / [`WriteOutcome::Block`] and the driver
//! retries the same step later. This keeps schedulers deterministic under
//! the single-threaded interleaved driver while still working under the
//! multi-threaded driver.

use crate::ids::{ClassId, GranuleId, SegmentId, Timestamp, TxnId};
use crate::metrics::Metrics;
use crate::schedule::ScheduleLog;
use crate::value::Value;
use std::sync::Arc;

/// Static description of a transaction handed to [`Scheduler::begin`]:
/// which class it belongs to (update transactions) or that it is read-only,
/// plus the declared segment sets the paper's transaction analysis assumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnProfile {
    /// The transaction class (None for ad-hoc read-only transactions).
    pub class: Option<ClassId>,
    /// Segments the transaction may read.
    pub read_segments: Vec<SegmentId>,
    /// Segments the transaction may write (at most the class root under a
    /// TST-hierarchical partition).
    pub write_segments: Vec<SegmentId>,
}

impl TxnProfile {
    /// An update transaction in class `class` (writes the class root
    /// segment, reads `read_segments`).
    pub fn update(class: ClassId, read_segments: Vec<SegmentId>) -> Self {
        TxnProfile {
            class: Some(class),
            read_segments,
            write_segments: vec![class.root_segment()],
        }
    }

    /// An ad-hoc read-only transaction over the given segments.
    pub fn read_only(read_segments: Vec<SegmentId>) -> Self {
        TxnProfile {
            class: None,
            read_segments,
            write_segments: Vec::new(),
        }
    }

    /// True when the profile declares no writes.
    pub fn is_read_only(&self) -> bool {
        self.write_segments.is_empty()
    }
}

/// Live handle for an in-flight transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnHandle {
    /// Unique transaction id.
    pub id: TxnId,
    /// Initiation time `I(t)`.
    pub start_ts: Timestamp,
    /// Class, if an update transaction.
    pub class: Option<ClassId>,
}

/// Result of a read request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read was served. The payload is the shared, immutable version
    /// value — serving a committed read is a reference-count bump, not a
    /// payload copy.
    Value(Arc<Value>),
    /// The transaction must wait and retry this read.
    Block,
    /// The protocol rejected the read; the transaction must abort
    /// (the driver calls [`Scheduler::abort`] and may restart it).
    Abort,
}

/// Result of a write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write was accepted.
    Done,
    /// The transaction must wait and retry this write.
    Block,
    /// The protocol rejected the write; the transaction must abort.
    Abort,
}

/// Result of a commit request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Committed at the given commit time `C(t)`.
    Committed(Timestamp),
    /// Commit-time validation failed; the transaction was aborted by the
    /// scheduler (no further `abort` call needed).
    Aborted,
    /// The transaction must wait before committing (e.g. waiting for an
    /// older pipelined transaction) and retry.
    Block,
}

/// A concurrency control: the five-call protocol surface plus access to its
/// schedule log and cost metrics.
pub trait Scheduler: Send + Sync {
    /// Scheduler name for reports ("hdd", "2pl", "tso", ...).
    fn name(&self) -> &'static str;

    /// Start a transaction; assigns id and initiation timestamp.
    fn begin(&self, profile: &TxnProfile) -> TxnHandle;

    /// Request a read of `g` on behalf of `h`.
    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome;

    /// Request a write of `g := v` on behalf of `h`.
    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome;

    /// Attempt to commit.
    fn commit(&self, h: &TxnHandle) -> CommitOutcome;

    /// Abort and release everything held by `h`. Idempotent.
    fn abort(&self, h: &TxnHandle);

    /// Periodic housekeeping hook, called by drivers between steps:
    /// time-wall release, garbage collection, etc. Default: no-op.
    fn maintenance(&self) {}

    /// The shared schedule log (for serializability checking).
    fn log(&self) -> &ScheduleLog;

    /// Cost counters.
    fn metrics(&self) -> &Metrics;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_constructors() {
        let u = TxnProfile::update(ClassId(2), vec![SegmentId(2), SegmentId(0)]);
        assert_eq!(u.class, Some(ClassId(2)));
        assert_eq!(u.write_segments, vec![SegmentId(2)]);
        assert!(!u.is_read_only());

        let r = TxnProfile::read_only(vec![SegmentId(1)]);
        assert_eq!(r.class, None);
        assert!(r.is_read_only());
    }
}
