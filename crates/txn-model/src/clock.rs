//! The global logical clock.
//!
//! All protocols in this workspace are driven by one strictly monotonic
//! logical clock. Initiation times `I(t)`, commit times `C(t)` and version
//! write timestamps `TS(d^v)` are ticks of this clock, which gives every
//! event a unique position in the total order the paper's definitions
//! assume (e.g. `I(t1) > I(t2)` is decidable for any two transactions).

use crate::ids::Timestamp;
use mc::sync::{AtomicU64, Ordering};

/// A strictly monotonic, shareable logical clock.
///
/// `tick()` returns a fresh, never-repeated [`Timestamp`]; `now()` peeks at
/// the most recently issued tick without advancing.
#[derive(Debug)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl LogicalClock {
    /// A clock whose first tick is `Timestamp(1)`.
    pub fn new() -> Self {
        LogicalClock {
            next: AtomicU64::new(1),
        }
    }

    /// Issue a fresh timestamp, strictly greater than all previous ticks.
    #[inline]
    pub fn tick(&self) -> Timestamp {
        // ordering: Relaxed — uniqueness/monotonicity come from fetch_add
        // atomicity alone; ticks publish no other memory. Cross-thread
        // visibility of a tick rides on the lock that stores it.
        Timestamp(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// The most recently issued timestamp (or [`Timestamp::ZERO`] if no
    /// tick has been issued yet).
    #[inline]
    pub fn now(&self) -> Timestamp {
        // ordering: Relaxed — advisory peek; callers only need *some*
        // recent tick, and same-thread reads after a local tick() see it.
        Timestamp(self.next.load(Ordering::Relaxed) - 1)
    }

    /// Advance the clock so that the next tick is strictly greater than
    /// `ts`. Used when replaying externally scripted schedules.
    pub fn advance_past(&self, ts: Timestamp) {
        // ordering: Relaxed — CAS loop on a single cell; the loop re-reads
        // on failure, so no stale read can violate "next > ts" on success.
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= ts.0 {
            // ordering: same CAS-loop argument as the load above.
            match self.next.compare_exchange_weak(
                cur,
                ts.0 + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(v) => cur = v,
            }
        }
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ticks_are_strictly_monotonic() {
        let c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn now_before_first_tick_is_zero() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
    }

    #[test]
    fn advance_past_moves_clock_forward_only() {
        let c = LogicalClock::new();
        c.advance_past(Timestamp(100));
        assert!(c.tick() > Timestamp(100));
        // Advancing to the past is a no-op.
        c.advance_past(Timestamp(5));
        assert!(c.tick() > Timestamp(101));
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(LogicalClock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate timestamps issued");
    }
}
