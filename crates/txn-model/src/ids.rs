//! Identifier newtypes and logical timestamps.
//!
//! The paper works entirely in logical time: `I(t)` (initiation time),
//! `C(t)` (commit time), and `TS(d^v)` (write timestamp of a version) are
//! all drawn from one totally ordered domain. [`Timestamp`] is that domain:
//! a `u64` drawn from a global [`LogicalClock`](crate::clock::LogicalClock),
//! so every initiation, commit and version timestamp is unique and totally
//! ordered — exactly the setting the proofs in the paper assume.

use std::fmt;

/// A point in the global logical time domain.
///
/// `Timestamp(0)` is reserved as "the beginning of time"; the clock starts
/// ticking at 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp before any event: versions loaded at database
    /// population time carry this timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// A timestamp greater than every timestamp the clock will ever produce.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// The raw tick value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The immediately preceding instant. Saturates at zero.
    ///
    /// The paper's Property 2.2 quantifies over "`m − ε` for every positive
    /// ε"; in an integer clock domain the meaningful ε is one tick.
    #[inline]
    pub fn pred(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }

    /// The immediately following instant. Saturates at `u64::MAX`.
    #[inline]
    pub fn succ(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Unique identifier of a transaction instance.
///
/// In all timestamp-based protocols in this workspace the transaction's
/// *initiation timestamp* doubles as its identity-in-time; `TxnId` is kept
/// separate so that a restarted transaction (after an abort) is a *new*
/// transaction with a new initiation time, as the paper requires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a data segment `D_i` of the database partition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Index into dense per-segment arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Identifier of a transaction class `T_i`.
///
/// Under a TST-hierarchical partition there is exactly one class per
/// segment (the class *rooted* in that segment), so `ClassId(i)`
/// corresponds to `SegmentId(i)`. Read-only transactions are *hosted* by a
/// fictitious class (Section 5) and carry no `ClassId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Index into dense per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The segment this class is rooted in (classes and segments share
    /// indices under a TST-hierarchical partition).
    #[inline]
    pub fn root_segment(self) -> SegmentId {
        SegmentId(self.0)
    }
}

impl From<SegmentId> for ClassId {
    fn from(s: SegmentId) -> Self {
        ClassId(s.0)
    }
}

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a data granule — "the smallest unit of access so far as
/// concurrency control is concerned" (Section 4, Notations).
///
/// A granule lives in exactly one segment; the partition of granules into
/// segments *is* the database partition `P`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GranuleId {
    /// The segment the granule belongs to.
    pub segment: SegmentId,
    /// Key within the segment.
    pub key: u64,
}

impl GranuleId {
    /// Construct a granule id.
    #[inline]
    pub fn new(segment: SegmentId, key: u64) -> Self {
        GranuleId { segment, key }
    }
}

impl fmt::Debug for GranuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{}", self.segment, self.key)
    }
}

impl fmt::Display for GranuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.segment, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_bounds() {
        assert!(Timestamp::ZERO < Timestamp(1));
        assert!(Timestamp(1) < Timestamp::MAX);
        assert_eq!(Timestamp(5).pred(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.pred(), Timestamp::ZERO);
        assert_eq!(Timestamp(5).succ(), Timestamp(6));
        assert_eq!(Timestamp::MAX.succ(), Timestamp::MAX);
    }

    #[test]
    fn class_maps_to_root_segment() {
        let c = ClassId(3);
        assert_eq!(c.root_segment(), SegmentId(3));
        assert_eq!(ClassId::from(SegmentId(7)), ClassId(7));
    }

    #[test]
    fn granule_identity() {
        let a = GranuleId::new(SegmentId(1), 10);
        let b = GranuleId::new(SegmentId(1), 10);
        let c = GranuleId::new(SegmentId(2), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a}"), "D1/10");
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", TxnId(4)), "t4");
        assert_eq!(format!("{}", ClassId(2)), "T2");
        assert_eq!(format!("{}", Timestamp(9)), "9");
    }
}
