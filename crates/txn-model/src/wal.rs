//! Checksummed on-disk encoding of the schedule log (the WAL image).
//!
//! The in-memory [`ScheduleLog`](crate::schedule::ScheduleLog) doubles as
//! a redo log (`Write` events carry their values), so serializing it is
//! all a crash-recovery story needs. A crash, though, can tear the tail
//! of whatever was being persisted: a partially flushed record must be
//! *detected and truncated*, never replayed as data. This module frames
//! each event as
//!
//! ```text
//! [u32 payload length (LE)] [u64 FNV-1a checksum of payload (LE)] [payload]
//! ```
//!
//! and [`decode_events`] stops at the first frame whose length runs past
//! the buffer or whose checksum does not match, reporting the torn byte
//! offset instead of guessing. Everything before the tear decodes
//! exactly; everything after is discarded (write-ahead discipline makes
//! that safe: a record absent from the log never committed).
//!
//! The payload is a tagged little-endian flat encoding — hand-rolled, as
//! the offline build forbids serde.
//!
//! # File format
//!
//! A WAL *file* (as opposed to a bare frame buffer) starts with a magic
//! header — [`WAL_MAGIC`] followed by a format-version byte
//! ([`WAL_VERSION`]) — so recovery can tell a foreign or garbage file
//! from a torn one: [`decode_wal`] rejects a bad header with a
//! [`WalFileError`] instead of silently truncating everything, while a
//! torn *tail* after a valid header still truncates cleanly. The frame
//! primitives ([`frame_into`], [`raw_frame`], [`encode_value`],
//! [`decode_value`]) are public because the `mvstore` file backend
//! reuses the exact same framing for its segment files.

use crate::ids::{ClassId, GranuleId, SegmentId, Timestamp, TxnId};
use crate::schedule::ScheduleEvent;
use crate::value::{Bytes, Value};
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit checksum of `bytes`.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Event tags (first payload byte).
const TAG_BEGIN: u8 = 0;
const TAG_READ: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;

/// Value tags within a `Write` payload.
const VTAG_INT: u8 = 0;
const VTAG_BYTES: u8 = 1;
const VTAG_ABSENT: u8 = 2;

/// Magic bytes opening every WAL file (followed by [`WAL_VERSION`]).
pub const WAL_MAGIC: [u8; 6] = *b"HDDWAL";

/// Current WAL file-format version, stored right after the magic.
pub const WAL_VERSION: u8 = 1;

/// Length of the WAL file header (magic + version byte). Frame offsets
/// reported by [`decode_wal`] are absolute file offsets, so the first
/// frame starts here.
pub const WAL_HEADER_LEN: usize = WAL_MAGIC.len() + 1;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one checksummed frame (`[len][fnv][payload]`) to `out`.
/// Shared with the `mvstore` file backend's segment records.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u64(out, checksum(payload));
    out.extend_from_slice(payload);
}

/// Read the raw payload of the frame at `pos`, verifying its checksum.
/// Returns the payload slice and the offset of the next frame, or `None`
/// when the frame is torn (short header, length past the buffer, or
/// checksum mismatch).
pub fn raw_frame(buf: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let len_bytes = buf.get(pos..pos + 4)?;
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
    let sum_bytes = buf.get(pos + 4..pos + 12)?;
    let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let payload = buf.get(pos + 12..pos + 12 + len)?;
    if checksum(payload) != sum {
        return None;
    }
    Some((payload, pos + 12 + len))
}

/// Append the tagged encoding of one [`Value`] to `out` (the same
/// encoding `Write` frames embed; shared with segment records).
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(VTAG_INT);
            put_u64(out, *i as u64);
        }
        Value::Bytes(b) => {
            out.push(VTAG_BYTES);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b.as_ref());
        }
        Value::Absent => out.push(VTAG_ABSENT),
    }
}

/// Decode one tagged [`Value`] from the front of `buf`, returning it and
/// the number of bytes consumed; `None` on a malformed encoding.
pub fn decode_value(buf: &[u8]) -> Option<(Value, usize)> {
    let mut c = Cursor::new(buf);
    let v = match c.u8()? {
        VTAG_INT => Value::Int(c.u64()? as i64),
        VTAG_BYTES => {
            let len = c.u32()? as usize;
            Value::Bytes(Bytes::from(c.bytes(len)?))
        }
        VTAG_ABSENT => Value::Absent,
        _ => return None,
    };
    Some((v, c.pos))
}

fn encode_payload(ev: &ScheduleEvent, out: &mut Vec<u8>) {
    match ev {
        ScheduleEvent::Begin {
            txn,
            start_ts,
            class,
        } => {
            out.push(TAG_BEGIN);
            put_u64(out, txn.0);
            put_u64(out, start_ts.0);
            match class {
                Some(c) => {
                    out.push(1);
                    put_u32(out, c.0);
                }
                None => out.push(0),
            }
        }
        ScheduleEvent::Read {
            txn,
            granule,
            version,
            writer,
        } => {
            out.push(TAG_READ);
            put_u64(out, txn.0);
            put_u32(out, granule.segment.0);
            put_u64(out, granule.key);
            put_u64(out, version.0);
            put_u64(out, writer.0);
        }
        ScheduleEvent::Write {
            txn,
            granule,
            version,
            value,
        } => {
            out.push(TAG_WRITE);
            put_u64(out, txn.0);
            put_u32(out, granule.segment.0);
            put_u64(out, granule.key);
            put_u64(out, version.0);
            encode_value(out, value.as_ref());
        }
        ScheduleEvent::Commit { txn, commit_ts } => {
            out.push(TAG_COMMIT);
            put_u64(out, txn.0);
            put_u64(out, commit_ts.0);
        }
        ScheduleEvent::Abort { txn, abort_ts } => {
            out.push(TAG_ABORT);
            put_u64(out, txn.0);
            put_u64(out, abort_ts.0);
        }
    }
}

/// A little-endian cursor over a payload slice; `None` means the payload
/// is malformed (short), which decode treats the same as a bad checksum.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_payload(payload: &[u8]) -> Option<ScheduleEvent> {
    let mut c = Cursor::new(payload);
    let ev = match c.u8()? {
        TAG_BEGIN => {
            let txn = TxnId(c.u64()?);
            let start_ts = Timestamp(c.u64()?);
            let class = match c.u8()? {
                0 => None,
                1 => Some(ClassId(c.u32()?)),
                _ => return None,
            };
            ScheduleEvent::Begin {
                txn,
                start_ts,
                class,
            }
        }
        TAG_READ => ScheduleEvent::Read {
            txn: TxnId(c.u64()?),
            granule: GranuleId::new(SegmentId(c.u32()?), c.u64()?),
            version: Timestamp(c.u64()?),
            writer: TxnId(c.u64()?),
        },
        TAG_WRITE => {
            let txn = TxnId(c.u64()?);
            let granule = GranuleId::new(SegmentId(c.u32()?), c.u64()?);
            let version = Timestamp(c.u64()?);
            let (value, used) = decode_value(&c.buf[c.pos..])?;
            c.pos += used;
            ScheduleEvent::Write {
                txn,
                granule,
                version,
                value: Arc::new(value),
            }
        }
        TAG_COMMIT => ScheduleEvent::Commit {
            txn: TxnId(c.u64()?),
            commit_ts: Timestamp(c.u64()?),
        },
        TAG_ABORT => ScheduleEvent::Abort {
            txn: TxnId(c.u64()?),
            abort_ts: Timestamp(c.u64()?),
        },
        _ => return None,
    };
    // Trailing garbage inside a checksummed frame means the frame was
    // not produced by this encoder — reject it rather than decode a prefix.
    c.exhausted().then_some(ev)
}

/// Serialize events into the checksummed frame format (bare frames, no
/// file header — see [`encode_wal`] for the headed file image).
pub fn encode_events(events: &[ScheduleEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 48);
    let mut payload = Vec::with_capacity(64);
    for ev in events {
        payload.clear();
        encode_payload(ev, &mut payload);
        frame_into(&mut out, &payload);
    }
    out
}

/// What [`decode_events`] found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalReport {
    /// Frames that decoded and checksummed clean.
    pub decoded: usize,
    /// Byte offset of the first torn frame, when the tail was torn.
    pub truncated_at_byte: Option<usize>,
}

impl WalReport {
    /// True when the buffer ended mid-frame or a checksum failed.
    pub fn torn(&self) -> bool {
        self.truncated_at_byte.is_some()
    }
}

/// Decode frames until the buffer ends or the first torn frame.
///
/// Returns every event that decoded clean plus a [`WalReport`] saying
/// whether (and where) the tail was truncated. A frame is torn when its
/// header is short, its declared length runs past the buffer, its
/// checksum mismatches, or its payload is malformed.
pub fn decode_events(buf: &[u8]) -> (Vec<ScheduleEvent>, WalReport) {
    let mut events = Vec::new();
    let mut report = WalReport::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        match decode_frame(buf, pos) {
            Some((ev, next)) => {
                events.push(ev);
                report.decoded += 1;
                pos = next;
            }
            None => {
                report.truncated_at_byte = Some(pos);
                break;
            }
        }
    }
    (events, report)
}

/// Decode one frame at `pos`; `None` means the frame is torn (short
/// header, length past the buffer, checksum mismatch, or bad payload).
fn decode_frame(buf: &[u8], pos: usize) -> Option<(ScheduleEvent, usize)> {
    let (payload, next) = raw_frame(buf, pos)?;
    let ev = decode_payload(payload)?;
    Some((ev, next))
}

/// Why a buffer was rejected as *not a WAL file at all* (as opposed to a
/// WAL file with a torn tail, which decodes with truncation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalFileError {
    /// The buffer is shorter than the file header.
    TooShort,
    /// The magic bytes do not match [`WAL_MAGIC`] — a foreign or garbage
    /// file, not a torn one.
    BadMagic,
    /// The magic matched but the format-version byte is not one this
    /// build can read.
    UnsupportedVersion(u8),
}

impl std::fmt::Display for WalFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalFileError::TooShort => {
                write!(
                    f,
                    "not a WAL file: shorter than the {WAL_HEADER_LEN}-byte header"
                )
            }
            WalFileError::BadMagic => {
                write!(
                    f,
                    "not a WAL file: magic bytes mismatch (expected \"HDDWAL\")"
                )
            }
            WalFileError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "WAL format version {v} not supported (this build reads {WAL_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for WalFileError {}

/// Serialize events as a complete WAL *file* image: magic header,
/// format-version byte, then the checksummed frames.
pub fn encode_wal(events: &[ScheduleEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN + events.len() * 48);
    out.extend_from_slice(&WAL_MAGIC);
    out.push(WAL_VERSION);
    out.extend_from_slice(&encode_events(events));
    out
}

/// Decode a WAL *file* image: verify the magic header and version, then
/// decode frames with torn-tail truncation. A bad header is an error
/// (the file is foreign or garbage, and replaying none of it is the only
/// safe answer); a torn tail after a valid header truncates at the torn
/// frame, with `truncated_at_byte` reported as an absolute file offset.
pub fn decode_wal(buf: &[u8]) -> Result<(Vec<ScheduleEvent>, WalReport), WalFileError> {
    if buf.len() < WAL_HEADER_LEN {
        return Err(WalFileError::TooShort);
    }
    if buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(WalFileError::BadMagic);
    }
    let version = buf[WAL_MAGIC.len()];
    if version != WAL_VERSION {
        return Err(WalFileError::UnsupportedVersion(version));
    }
    let (events, mut report) = decode_events(&buf[WAL_HEADER_LEN..]);
    if let Some(off) = report.truncated_at_byte.as_mut() {
        *off += WAL_HEADER_LEN;
    }
    Ok((events, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<ScheduleEvent> {
        let g = GranuleId::new(SegmentId(2), 17);
        vec![
            ScheduleEvent::Begin {
                txn: TxnId(1),
                start_ts: Timestamp(1),
                class: Some(ClassId(0)),
            },
            ScheduleEvent::Begin {
                txn: TxnId(2),
                start_ts: Timestamp(2),
                class: None,
            },
            ScheduleEvent::Read {
                txn: TxnId(2),
                granule: g,
                version: Timestamp(0),
                writer: TxnId(0),
            },
            ScheduleEvent::Write {
                txn: TxnId(1),
                granule: g,
                version: Timestamp(1),
                value: Arc::new(Value::Int(-42)),
            },
            ScheduleEvent::Write {
                txn: TxnId(1),
                granule: GranuleId::new(SegmentId(0), 3),
                version: Timestamp(1),
                value: Arc::new(Value::Bytes(Bytes::from(vec![1, 2, 3, 4, 5]))),
            },
            ScheduleEvent::Write {
                txn: TxnId(1),
                granule: GranuleId::new(SegmentId(0), 4),
                version: Timestamp(1),
                value: Arc::new(Value::Absent),
            },
            ScheduleEvent::Commit {
                txn: TxnId(1),
                commit_ts: Timestamp(3),
            },
            ScheduleEvent::Abort {
                txn: TxnId(2),
                abort_ts: Timestamp(4),
            },
        ]
    }

    #[test]
    fn round_trips_every_event_shape() {
        let events = sample_events();
        let buf = encode_events(&events);
        let (decoded, report) = decode_events(&buf);
        assert_eq!(decoded, events);
        assert_eq!(report.decoded, events.len());
        assert!(!report.torn());
    }

    #[test]
    fn empty_buffer_decodes_clean() {
        let (decoded, report) = decode_events(&[]);
        assert!(decoded.is_empty());
        assert!(!report.torn());
    }

    #[test]
    fn short_tail_is_truncated_not_replayed() {
        let events = sample_events();
        let buf = encode_events(&events);
        // Chop mid-way through the final frame.
        let cut = buf.len() - 5;
        let (decoded, report) = decode_events(&buf[..cut]);
        assert_eq!(decoded, events[..events.len() - 1]);
        assert!(report.torn());
        assert!(report.truncated_at_byte.unwrap() < cut);
    }

    #[test]
    fn corrupted_payload_byte_fails_checksum() {
        let events = sample_events();
        let mut buf = encode_events(&events);
        // Flip one byte inside the last frame's payload.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let (decoded, report) = decode_events(&buf);
        assert_eq!(decoded, events[..events.len() - 1]);
        assert!(report.torn());
    }

    #[test]
    fn corrupted_length_header_is_detected() {
        let events = sample_events();
        let mut buf = encode_events(&events);
        // Inflate the very first frame's declared length far past the buffer.
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (decoded, report) = decode_events(&buf);
        assert!(decoded.is_empty());
        assert_eq!(report.truncated_at_byte, Some(0));
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Published FNV-1a 64 test vector.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn value_codec_round_trips() {
        for v in [
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Bytes(Bytes::from(vec![0u8, 255, 7])),
            Value::Absent,
        ] {
            let mut buf = Vec::new();
            encode_value(&mut buf, &v);
            let (back, used) = decode_value(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
        assert!(decode_value(&[9u8]).is_none(), "unknown tag rejected");
        assert!(decode_value(&[]).is_none(), "empty rejected");
    }

    #[test]
    fn wal_file_round_trips_with_header() {
        let events = sample_events();
        let file = encode_wal(&events);
        assert_eq!(&file[..WAL_MAGIC.len()], &WAL_MAGIC);
        assert_eq!(file[WAL_MAGIC.len()], WAL_VERSION);
        let (decoded, report) = decode_wal(&file).unwrap();
        assert_eq!(decoded, events);
        assert!(!report.torn());
    }

    #[test]
    fn foreign_and_garbage_files_are_rejected_not_truncated() {
        // Garbage that happens to be long enough: rejected by magic.
        assert_eq!(
            decode_wal(b"GARBAGE FILE CONTENT"),
            Err(WalFileError::BadMagic)
        );
        // Too-short fragment.
        assert_eq!(decode_wal(b"HD"), Err(WalFileError::TooShort));
        // Right magic, future version byte.
        let mut file = encode_wal(&sample_events());
        file[WAL_MAGIC.len()] = 99;
        assert_eq!(decode_wal(&file), Err(WalFileError::UnsupportedVersion(99)));
        // An empty but well-formed file decodes clean.
        let (events, report) = decode_wal(&encode_wal(&[])).unwrap();
        assert!(events.is_empty());
        assert!(!report.torn());
    }

    #[test]
    fn torn_tail_at_every_byte_offset_of_the_final_frame() {
        // Property sweep (the offline build has no proptest): truncate a
        // valid WAL file at *every* byte offset inside the final frame.
        // Recovery must never replay the partial frame, never panic, and
        // must report the exact absolute offset where the tear begins.
        let events = sample_events();
        let file = encode_wal(&events);
        let frames = encode_events(&events);
        // Offset (absolute, in the file image) where the final frame starts.
        let mut pos = 0usize;
        let mut last_start = 0usize;
        while pos < frames.len() {
            last_start = pos;
            let (_, next) = raw_frame(&frames, pos).unwrap();
            pos = next;
        }
        let last_start_abs = WAL_HEADER_LEN + last_start;
        for cut in last_start_abs..file.len() {
            let (decoded, report) = decode_wal(&file[..cut]).unwrap();
            if cut == last_start_abs {
                // Clean cut exactly between frames: no tear to report.
                assert_eq!(decoded, events[..events.len() - 1]);
                assert!(!report.torn(), "cut at frame boundary is not a tear");
            } else {
                assert_eq!(
                    decoded,
                    events[..events.len() - 1],
                    "partial final frame must not replay (cut at {cut})"
                );
                assert!(report.torn(), "cut at {cut} must be reported");
                assert_eq!(
                    report.truncated_at_byte,
                    Some(last_start_abs),
                    "tear must be reported at the final frame's start (cut at {cut})"
                );
            }
        }
        // The full file, for contrast, decodes everything.
        let (decoded, report) = decode_wal(&file).unwrap();
        assert_eq!(decoded, events);
        assert!(!report.torn());
    }

    #[test]
    fn raw_frame_and_frame_into_agree() {
        let mut buf = Vec::new();
        frame_into(&mut buf, b"hello");
        frame_into(&mut buf, b"");
        let (p1, next) = raw_frame(&buf, 0).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, end) = raw_frame(&buf, next).unwrap();
        assert_eq!(p2, b"");
        assert_eq!(end, buf.len());
        assert!(raw_frame(&buf, end).is_none(), "past the end is torn/end");
        // Corrupt the checksum of the first frame.
        buf[4] ^= 0x01;
        assert!(raw_frame(&buf, 0).is_none());
    }
}
