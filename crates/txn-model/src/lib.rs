//! # txn-model — shared transaction vocabulary
//!
//! This crate defines the concepts every other crate in the workspace speaks:
//!
//! * identifiers and logical [`Timestamp`]s ([`ids`], [`clock`]),
//! * values stored in granules ([`value`]),
//! * transaction *programs* — straight-line read/write step lists with
//!   computed writes ([`program`]),
//! * the [`scheduler::Scheduler`] trait implemented by the HDD
//!   scheduler and by every baseline concurrency control,
//! * the schedule log and the **multi-version transaction dependency graph**
//!   of Section 2 of the paper, together with the acyclicity-based
//!   serializability checker ([`schedule`], [`depgraph`]),
//! * metrics counters shared by all schedulers ([`metrics`]).
//!
//! The dependency-graph checker is the paper's own correctness criterion
//! (Bernstein 82, quoted in Section 2): *a schedule is serializable iff its
//! transaction dependency graph is acyclic*. Every experiment in this
//! repository validates runs with it.

#![warn(missing_docs)]

pub mod clock;
pub mod depgraph;
pub mod group_commit;
pub mod ids;
pub mod metrics;
pub mod program;
pub mod schedule;
pub mod scheduler;
pub mod value;
pub mod wal;

pub use clock::LogicalClock;
pub use depgraph::{ArcKinds, DependencyGraph};
pub use group_commit::{
    BatchAck, FaultAction, GroupCommitConfig, GroupCommitStats, GroupCommitWal, WalCrashed,
    WalFault,
};
pub use ids::{ClassId, GranuleId, SegmentId, Timestamp, TxnId};
pub use metrics::{Metrics, MetricsSnapshot};
pub use program::{Step, TxnProgram, WriteSource};
pub use schedule::{ScheduleEvent, ScheduleLog};
pub use scheduler::{CommitOutcome, ReadOutcome, Scheduler, TxnHandle, TxnProfile, WriteOutcome};
pub use value::Value;
pub use wal::{decode_events, decode_wal, encode_events, encode_wal, WalFileError, WalReport};
