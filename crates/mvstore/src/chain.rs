//! Per-granule version chains with MVTO and basic-TSO rules.
//!
//! A [`VersionChain`] holds a granule's versions ordered by write
//! timestamp. Versions may be *pending* (created by an uncommitted
//! transaction); a pending version becomes visible to other transactions
//! only after [`VersionChain::commit_writer`]. The chain implements:
//!
//! * **snapshot reads** — "the version `d^0` such that `TS(d^0)` =
//!   `Max(TS(d^v))` for all `v` such that `TS(d^v) < bound`" — the exact
//!   version-selection rule of the paper's Protocols A and C;
//! * **MVTO** (Reed 78) read/write rules with per-version read timestamps;
//! * **basic TSO** bookkeeping: a granule-level max read timestamp.
//!
//! Chains also expose pruning for time-wall-driven garbage collection.

use std::sync::Arc;
use txn_model::{Timestamp, TxnId, Value};

/// One version of a granule.
#[derive(Debug, Clone)]
pub struct Version {
    /// Write timestamp `TS(d^v)` — the initiation time of the creating
    /// transaction under timestamp ordering, or the commit sequence number
    /// under locking protocols. Unique within a chain.
    pub ts: Timestamp,
    /// The value (shared with readers and the schedule log: serving a
    /// committed read bumps a reference count, never copies the payload).
    pub value: Arc<Value>,
    /// Creating transaction.
    pub writer: TxnId,
    /// Whether the creating transaction has committed.
    pub committed: bool,
    /// Largest timestamp of any transaction that read this version
    /// (MVTO bookkeeping; stays `ZERO` for unregistered HDD reads).
    pub rts: Timestamp,
}

/// Outcome of an MVTO read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvtoReadResult {
    /// Read served: value plus the version's identity (ts, writer).
    Value {
        /// The version's value (shared, not copied).
        value: Arc<Value>,
        /// The version's write timestamp.
        version: Timestamp,
        /// The version's creator.
        writer: TxnId,
    },
    /// The selected version is pending; the reader must wait for its
    /// writer to commit or abort.
    BlockOn(TxnId),
}

/// Outcome of an MVTO write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvtoWriteResult {
    /// Version installed (pending until `commit_writer`).
    Installed,
    /// Rejected: some transaction with a later timestamp already read the
    /// version this write would have to be ordered after — installing
    /// would invalidate that read (Reed's rejection rule).
    Rejected,
    /// The write must wait (basic-TO single-version mode only: an older
    /// uncommitted write occupies the granule).
    Blocked,
}

/// The shared `Absent` payload served for never-written granules.
fn absent() -> Arc<Value> {
    static ABSENT: std::sync::OnceLock<Arc<Value>> = std::sync::OnceLock::new();
    Arc::clone(ABSENT.get_or_init(|| Arc::new(Value::Absent)))
}

/// A granule's versions, ordered by write timestamp.
#[derive(Debug, Default, Clone)]
pub struct VersionChain {
    /// Sorted ascending by `ts`.
    versions: Vec<Version>,
    /// Granule-level max read timestamp (basic single-version TSO).
    pub max_rts: Timestamp,
}

impl VersionChain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// A chain seeded with one committed initial version at
    /// [`Timestamp::ZERO`] written by the virtual initial transaction.
    pub fn seeded(value: Value) -> Self {
        let mut c = Self::new();
        c.versions.push(Version {
            ts: Timestamp::ZERO,
            value: Arc::new(value),
            writer: TxnId(0),
            committed: true,
            rts: Timestamp::ZERO,
        });
        c
    }

    /// All versions (ascending by ts). Exposed for checkers and tests.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Number of versions currently held.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    fn insertion_point(&self, ts: Timestamp) -> Result<usize, usize> {
        self.versions.binary_search_by_key(&ts, |v| v.ts)
    }

    /// Install a version with write timestamp `ts`. Returns `false` if a
    /// version with this timestamp already exists (caller bug under
    /// unique-timestamp protocols).
    pub fn install(
        &mut self,
        ts: Timestamp,
        value: Arc<Value>,
        writer: TxnId,
        committed: bool,
    ) -> bool {
        match self.insertion_point(ts) {
            Ok(_) => false,
            Err(i) => {
                self.versions.insert(
                    i,
                    Version {
                        ts,
                        value,
                        writer,
                        committed,
                        rts: Timestamp::ZERO,
                    },
                );
                true
            }
        }
    }

    /// The latest *committed* version with `ts < bound`. This is the
    /// paper's version-selection rule for Protocols A and C.
    pub fn latest_committed_before(&self, bound: Timestamp) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .filter(|v| v.ts < bound)
            .find(|v| v.committed)
    }

    /// The latest committed version, regardless of timestamp.
    pub fn latest_committed(&self) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.committed)
    }

    /// The latest version (committed or pending).
    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// The version written by `writer`, if present (own-writes lookup).
    pub fn version_by_writer(&self, writer: TxnId) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.writer == writer)
    }

    /// MVTO read at transaction timestamp `ts`: select the latest version
    /// with write ts `< ts` (pending versions *block* rather than being
    /// skipped — skipping one would let the reader miss a write it must be
    /// ordered after); record `rts`.
    pub fn mvto_read(&mut self, ts: Timestamp) -> MvtoReadResult {
        let candidate = self.versions.iter_mut().rev().find(|v| v.ts < ts);
        match candidate {
            Some(v) if !v.committed => MvtoReadResult::BlockOn(v.writer),
            Some(v) => {
                if ts > v.rts {
                    v.rts = ts;
                }
                MvtoReadResult::Value {
                    value: v.value.clone(),
                    version: v.ts,
                    writer: v.writer,
                }
            }
            // No version before ts at all: serve the absent value as the
            // implicit initial version (chains are normally seeded, so
            // this arises only for never-seeded granules).
            None => MvtoReadResult::Value {
                value: absent(),
                version: Timestamp::ZERO,
                writer: TxnId(0),
            },
        }
    }

    /// MVTO read *without* registering a read timestamp. Used by HDD
    /// Protocol A/C, where the version bound already guarantees no future
    /// writer can invalidate the read. Does not block: the bound only
    /// admits committed versions by construction, but if a pending version
    /// is selected (mis-use), it blocks like `mvto_read`.
    pub fn read_before_unregistered(&self, bound: Timestamp) -> MvtoReadResult {
        match self.versions.iter().rev().find(|v| v.ts < bound) {
            Some(v) if !v.committed => MvtoReadResult::BlockOn(v.writer),
            Some(v) => MvtoReadResult::Value {
                value: v.value.clone(),
                version: v.ts,
                writer: v.writer,
            },
            None => MvtoReadResult::Value {
                value: absent(),
                version: Timestamp::ZERO,
                writer: TxnId(0),
            },
        }
    }

    /// MVTO write at transaction timestamp `ts`: let `v` be the latest
    /// version with write ts `< ts`; if `v.rts > ts`, a younger
    /// transaction already read `v` and would be invalidated — reject.
    /// Otherwise install a pending version at `ts`.
    pub fn mvto_write(
        &mut self,
        ts: Timestamp,
        value: Arc<Value>,
        writer: TxnId,
    ) -> MvtoWriteResult {
        // Re-writes by the same transaction overwrite its pending version.
        if let Ok(i) = self.insertion_point(ts) {
            debug_assert_eq!(self.versions[i].writer, writer);
            self.versions[i].value = value;
            return MvtoWriteResult::Installed;
        }
        let conflicting_rts = self
            .versions
            .iter()
            .rev()
            .find(|v| v.ts < ts)
            .map_or(Timestamp::ZERO, |v| v.rts);
        if conflicting_rts > ts {
            return MvtoWriteResult::Rejected;
        }
        let installed = self.install(ts, value, writer, false);
        debug_assert!(installed);
        MvtoWriteResult::Installed
    }

    /// Remove the version with write timestamp `ts`, if present (redo
    /// replay uses this so later log entries for the same version win).
    pub fn remove_version_at(&mut self, ts: Timestamp) {
        if let Ok(i) = self.insertion_point(ts) {
            self.versions.remove(i);
        }
    }

    /// Mark all versions written by `writer` as committed.
    pub fn commit_writer(&mut self, writer: TxnId) {
        for v in &mut self.versions {
            if v.writer == writer {
                v.committed = true;
            }
        }
    }

    /// Remove all pending versions written by `writer` (abort cleanup).
    pub fn remove_writer_pending(&mut self, writer: TxnId) {
        self.versions.retain(|v| v.writer != writer || v.committed);
    }

    /// Garbage-collect: drop committed versions with `ts < wm`, except the
    /// latest such version (still needed as the snapshot below `wm`).
    /// Pending versions are never dropped. Returns versions reclaimed.
    pub fn prune_before(&mut self, wm: Timestamp) -> usize {
        // Find the last committed version with ts < wm; keep it.
        let keep = self
            .versions
            .iter()
            .enumerate()
            .rev()
            .find(|(_, v)| v.committed && v.ts < wm)
            .map(|(i, _)| i);
        let Some(keep) = keep else { return 0 };
        let before = self.versions.len();
        let mut idx = 0;
        self.versions.retain(|v| {
            let i = idx;
            idx += 1;
            !(v.committed && v.ts < wm && i != keep)
        });
        before - self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with(tss: &[(u64, i64, u64, bool)]) -> VersionChain {
        let mut c = VersionChain::new();
        for &(ts, val, writer, committed) in tss {
            assert!(c.install(
                Timestamp(ts),
                Arc::new(Value::Int(val)),
                TxnId(writer),
                committed
            ));
        }
        c
    }

    #[test]
    fn install_keeps_sorted_and_rejects_duplicates() {
        let mut c = chain_with(&[(5, 50, 1, true), (2, 20, 2, true), (9, 90, 3, true)]);
        let tss: Vec<u64> = c.versions().iter().map(|v| v.ts.raw()).collect();
        assert_eq!(tss, vec![2, 5, 9]);
        assert!(!c.install(Timestamp(5), Arc::new(Value::Int(0)), TxnId(9), true));
    }

    #[test]
    fn latest_committed_before_skips_pending_and_later() {
        let c = chain_with(&[(2, 20, 1, true), (5, 50, 2, false), (9, 90, 3, true)]);
        let v = c.latest_committed_before(Timestamp(10)).unwrap();
        assert_eq!(v.ts, Timestamp(9));
        let v = c.latest_committed_before(Timestamp(9)).unwrap();
        // ts=5 is pending, fall through to ts=2.
        assert_eq!(v.ts, Timestamp(2));
        assert!(c.latest_committed_before(Timestamp(2)).is_none());
    }

    #[test]
    fn seeded_chain_serves_initial_version() {
        let c = VersionChain::seeded(Value::Int(100));
        let v = c.latest_committed_before(Timestamp(1)).unwrap();
        assert_eq!(v.ts, Timestamp::ZERO);
        assert_eq!(*v.value, Value::Int(100));
        assert_eq!(v.writer, TxnId(0));
    }

    #[test]
    fn mvto_read_registers_rts_and_blocks_on_pending() {
        let mut c = VersionChain::seeded(Value::Int(1));
        assert_eq!(
            c.mvto_read(Timestamp(10)),
            MvtoReadResult::Value {
                value: Arc::new(Value::Int(1)),
                version: Timestamp::ZERO,
                writer: TxnId(0)
            }
        );
        assert_eq!(c.versions()[0].rts, Timestamp(10));
        // Older read does not lower rts.
        c.mvto_read(Timestamp(5));
        assert_eq!(c.versions()[0].rts, Timestamp(10));

        // Pending version in range blocks.
        c.install(Timestamp(7), Arc::new(Value::Int(7)), TxnId(3), false);
        assert_eq!(
            c.mvto_read(Timestamp(10)),
            MvtoReadResult::BlockOn(TxnId(3))
        );
    }

    #[test]
    fn mvto_write_rejected_by_younger_read() {
        let mut c = VersionChain::seeded(Value::Int(1));
        c.mvto_read(Timestamp(10)); // rts of v0 = 10
                                    // Writer with ts 5 would invalidate the ts-10 read of v0.
        assert_eq!(
            c.mvto_write(Timestamp(5), Arc::new(Value::Int(5)), TxnId(2)),
            MvtoWriteResult::Rejected
        );
        // Writer with ts 11 is fine.
        assert_eq!(
            c.mvto_write(Timestamp(11), Arc::new(Value::Int(11)), TxnId(3)),
            MvtoWriteResult::Installed
        );
        assert!(!c.versions().last().unwrap().committed);
    }

    #[test]
    fn mvto_rewrite_by_same_txn_overwrites_pending() {
        let mut c = VersionChain::seeded(Value::Int(1));
        assert_eq!(
            c.mvto_write(Timestamp(5), Arc::new(Value::Int(5)), TxnId(2)),
            MvtoWriteResult::Installed
        );
        assert_eq!(
            c.mvto_write(Timestamp(5), Arc::new(Value::Int(6)), TxnId(2)),
            MvtoWriteResult::Installed
        );
        assert_eq!(*c.version_by_writer(TxnId(2)).unwrap().value, Value::Int(6));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn commit_and_abort_cleanup() {
        let mut c = VersionChain::seeded(Value::Int(1));
        c.mvto_write(Timestamp(5), Arc::new(Value::Int(5)), TxnId(2));
        c.commit_writer(TxnId(2));
        assert!(c.versions().last().unwrap().committed);

        c.mvto_write(Timestamp(8), Arc::new(Value::Int(8)), TxnId(3));
        c.remove_writer_pending(TxnId(3));
        assert_eq!(c.len(), 2);
        assert!(c.version_by_writer(TxnId(3)).is_none());
        // Committed versions are not removed by abort cleanup.
        c.remove_writer_pending(TxnId(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unregistered_read_leaves_no_rts() {
        let mut c = VersionChain::seeded(Value::Int(1));
        c.mvto_write(Timestamp(5), Arc::new(Value::Int(5)), TxnId(2));
        c.commit_writer(TxnId(2));
        let r = c.read_before_unregistered(Timestamp(6));
        assert_eq!(
            r,
            MvtoReadResult::Value {
                value: Arc::new(Value::Int(5)),
                version: Timestamp(5),
                writer: TxnId(2)
            }
        );
        assert!(c.versions().iter().all(|v| v.rts == Timestamp::ZERO));
    }

    #[test]
    fn prune_keeps_snapshot_version_and_pending() {
        let mut c = chain_with(&[
            (1, 10, 1, true),
            (2, 20, 2, true),
            (3, 30, 3, true),
            (4, 40, 4, false), // pending
            (9, 90, 5, true),
        ]);
        // Watermark 4: committed versions <4 are {1,2,3}; keep ts=3.
        let reclaimed = c.prune_before(Timestamp(4));
        assert_eq!(reclaimed, 2);
        let tss: Vec<u64> = c.versions().iter().map(|v| v.ts.raw()).collect();
        assert_eq!(tss, vec![3, 4, 9]);
        // Snapshot below the watermark still served correctly.
        assert_eq!(
            c.latest_committed_before(Timestamp(4)).unwrap().ts,
            Timestamp(3)
        );
    }

    #[test]
    fn mvto_read_bound_is_strict() {
        let mut c = VersionChain::new();
        c.install(Timestamp(5), Arc::new(Value::Int(5)), TxnId(1), true);
        // A reader AT ts 5 must not see the ts-5 version (strict <).
        assert_eq!(
            c.mvto_read(Timestamp(5)),
            MvtoReadResult::Value {
                value: absent(),
                version: Timestamp::ZERO,
                writer: TxnId(0)
            }
        );
        assert!(matches!(
            c.mvto_read(Timestamp(6)),
            MvtoReadResult::Value { ref value, .. } if **value == Value::Int(5)
        ));
    }

    #[test]
    fn version_by_writer_returns_newest_of_that_writer() {
        let mut c = VersionChain::new();
        c.install(Timestamp(1), Arc::new(Value::Int(1)), TxnId(7), true);
        c.install(Timestamp(3), Arc::new(Value::Int(3)), TxnId(8), true);
        c.install(Timestamp(5), Arc::new(Value::Int(5)), TxnId(7), true);
        assert_eq!(c.version_by_writer(TxnId(7)).unwrap().ts, Timestamp(5));
        assert_eq!(c.version_by_writer(TxnId(8)).unwrap().ts, Timestamp(3));
        assert!(c.version_by_writer(TxnId(9)).is_none());
    }

    #[test]
    fn unregistered_read_blocks_on_misused_pending_bound() {
        let mut c = VersionChain::seeded(Value::Int(1));
        c.install(Timestamp(5), Arc::new(Value::Int(5)), TxnId(2), false);
        // A bound that admits the pending version blocks defensively.
        assert_eq!(
            c.read_before_unregistered(Timestamp(10)),
            MvtoReadResult::BlockOn(TxnId(2))
        );
        // A bound below it reads through.
        assert!(matches!(
            c.read_before_unregistered(Timestamp(5)),
            MvtoReadResult::Value { ref value, .. } if **value == Value::Int(1)
        ));
    }

    #[test]
    fn prune_with_only_pending_keeps_everything() {
        let mut c = VersionChain::new();
        c.install(Timestamp(1), Arc::new(Value::Int(1)), TxnId(1), false);
        c.install(Timestamp(2), Arc::new(Value::Int(2)), TxnId(2), false);
        assert_eq!(c.prune_before(Timestamp(10)), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn prune_on_empty_or_all_newer_is_noop() {
        let mut c = VersionChain::new();
        assert_eq!(c.prune_before(Timestamp(5)), 0);
        c.install(Timestamp(9), Arc::new(Value::Int(9)), TxnId(1), true);
        assert_eq!(c.prune_before(Timestamp(5)), 0);
        assert_eq!(c.len(), 1);
    }
}
