//! The pluggable storage tier: [`StorageBackend`].
//!
//! Every scheduler in this workspace talks to its version store through
//! this object-safe trait instead of a concrete [`MvStore`], so the same
//! protocol code runs over the in-memory store (the default, and the
//! perf baseline) or the log-structured
//! [`FileBackend`](crate::filestore::FileBackend) (the durable tier).
//!
//! # Contract
//!
//! * **Get** — [`StorageBackend::with_chain_dyn`] grants exclusive
//!   access to a granule's [`VersionChain`] (creating an `Absent`-seeded
//!   chain on first touch, like `MvStore::with_chain`). All *pending*
//!   state created through it (uncommitted versions, read timestamps) is
//!   volatile by design: the redo discipline of `mvstore::recovery`
//!   reconstructs committed state from the log, and uncommitted state
//!   must *not* survive a crash.
//! * **Put** — [`StorageBackend::commit_writes`] is the durability
//!   point for a transaction's write set; a persistent backend must not
//!   return from it until the committed versions are recoverable.
//!   [`StorageBackend::put_versions`] batch-installs already-committed
//!   versions (recovery replay) with the same durability obligation.
//! * **Scan** — [`StorageBackend::scan_chains`] visits every chain
//!   (quiescent moments only; it may hold shard locks).
//! * **Truncate** — [`StorageBackend::prune_before`] is the GC
//!   watermark sweep; persistent backends may treat it as advisory (a
//!   pruned version replayed after a crash is harmless: MVCC reads
//!   still select the correct snapshot and GC re-prunes).
//!
//! The generic conveniences (`with_chain`, `latest_value`,
//! `value_as_of`) live on `dyn StorageBackend` itself so call sites read
//! exactly as they did against the concrete `MvStore`.

use crate::chain::VersionChain;
use crate::store::MvStore;
use std::sync::Arc;
use txn_model::{GranuleId, Timestamp, TxnId, Value};

/// One committed version, ready for batch installation — the unit of the
/// trait's put-version API and of the file backend's segment records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRecord {
    /// Granule the version belongs to.
    pub granule: GranuleId,
    /// Write timestamp of the version.
    pub ts: Timestamp,
    /// The version's value (shared, never copied).
    pub value: Arc<Value>,
    /// Creating transaction.
    pub writer: TxnId,
}

/// A multi-version storage tier (see the module docs for the contract).
///
/// Object-safe on purpose: schedulers hold an `Arc<dyn StorageBackend>`,
/// and `Arc<MvStore>` coerces into it at every existing constructor call
/// site.
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// Backend name for reports ("memory", "file").
    fn name(&self) -> &'static str;

    /// True when committed state survives a process crash.
    fn persistent(&self) -> bool;

    /// Seed `g` with a committed initial version at [`Timestamp::ZERO`],
    /// replacing any existing chain (database population).
    fn seed(&self, g: GranuleId, value: Value);

    /// Run `f` with exclusive access to `g`'s chain, creating an
    /// `Absent`-seeded chain on first touch. Mutations made here are
    /// volatile (see module docs); durability happens at
    /// [`commit_writes`](Self::commit_writes) /
    /// [`put_versions`](Self::put_versions).
    fn with_chain_dyn(&self, g: GranuleId, f: &mut dyn FnMut(&mut VersionChain));

    /// Mark all of `writer`'s pending versions in `write_set` committed.
    /// This is the backend's durability point for the write set.
    fn commit_writes(&self, writer: TxnId, write_set: &[GranuleId]);

    /// Remove all of `writer`'s pending versions in `write_set`.
    fn abort_writes(&self, writer: TxnId, write_set: &[GranuleId]);

    /// Batch-install committed versions (recovery replay). Each record
    /// replaces any existing version at its timestamp — later log
    /// entries for the same version win, as redo replay requires.
    fn put_versions(&self, batch: &[VersionRecord]);

    /// Visit every chain (scan API; quiescent moments only).
    fn scan_chains(&self, f: &mut dyn FnMut(GranuleId, &VersionChain));

    /// Garbage-collect versions older than the watermark (keeping the
    /// snapshot version below it, per chain). Returns versions
    /// reclaimed from the in-memory image.
    fn prune_before(&self, wm: Timestamp) -> usize;

    /// Total number of versions held across all granules.
    fn version_count(&self) -> usize;

    /// Number of granules with a chain.
    fn granule_count(&self) -> usize;

    /// Length of the deepest version chain.
    fn max_chain_len(&self) -> usize;

    /// Flush any buffered durable state to stable storage. No-op for
    /// volatile backends.
    fn sync(&self) -> std::io::Result<()>;
}

impl StorageBackend for MvStore {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn persistent(&self) -> bool {
        false
    }

    fn seed(&self, g: GranuleId, value: Value) {
        MvStore::seed(self, g, value);
    }

    fn with_chain_dyn(&self, g: GranuleId, f: &mut dyn FnMut(&mut VersionChain)) {
        MvStore::with_chain(self, g, |c| f(c));
    }

    fn commit_writes(&self, writer: TxnId, write_set: &[GranuleId]) {
        MvStore::commit_writes(self, writer, write_set);
    }

    fn abort_writes(&self, writer: TxnId, write_set: &[GranuleId]) {
        MvStore::abort_writes(self, writer, write_set);
    }

    fn put_versions(&self, batch: &[VersionRecord]) {
        for r in batch {
            MvStore::with_chain(self, r.granule, |c| {
                c.remove_version_at(r.ts);
                c.install(r.ts, Arc::clone(&r.value), r.writer, true);
            });
        }
    }

    fn scan_chains(&self, f: &mut dyn FnMut(GranuleId, &VersionChain)) {
        MvStore::for_each_chain(self, f);
    }

    fn prune_before(&self, wm: Timestamp) -> usize {
        MvStore::prune_before(self, wm)
    }

    fn version_count(&self) -> usize {
        MvStore::version_count(self)
    }

    fn granule_count(&self) -> usize {
        MvStore::granule_count(self)
    }

    fn max_chain_len(&self) -> usize {
        MvStore::max_chain_len(self)
    }

    fn sync(&self) -> std::io::Result<()> {
        Ok(())
    }
}

impl dyn StorageBackend {
    /// Run `f` with exclusive access to `g`'s chain and return its
    /// result — the generic convenience over
    /// [`StorageBackend::with_chain_dyn`], so protocol code written
    /// against `MvStore::with_chain` reads unchanged against the trait
    /// object.
    pub fn with_chain<R>(&self, g: GranuleId, f: impl FnOnce(&mut VersionChain) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.with_chain_dyn(g, &mut |chain| {
            if let Some(f) = f.take() {
                out = Some(f(chain));
            }
        });
        out.expect("with_chain_dyn must invoke the closure exactly once")
    }

    /// The latest committed value of `g`, or `Value::Absent` (result
    /// inspection in tests and examples).
    pub fn latest_value(&self, g: GranuleId) -> Value {
        self.with_chain(g, |c| {
            c.latest_committed()
                .map_or(Value::Absent, |v| (*v.value).clone())
        })
    }

    /// The committed value of `g` as of logical time `ts` (exclusive) —
    /// `MvStore::value_as_of`, generalized over backends.
    pub fn value_as_of(&self, g: GranuleId, ts: Timestamp) -> Value {
        self.with_chain(g, |c| {
            c.latest_committed_before(ts)
                .map_or(Value::Absent, |v| (*v.value).clone())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::SegmentId;

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    #[test]
    fn mvstore_behind_the_trait_matches_direct_use() {
        let store: Arc<dyn StorageBackend> = Arc::new(MvStore::new());
        assert_eq!(store.name(), "memory");
        assert!(!store.persistent());
        store.seed(g(0, 1), Value::Int(7));
        assert_eq!(store.latest_value(g(0, 1)), Value::Int(7));
        store.with_chain(g(0, 1), |c| {
            c.mvto_write(Timestamp(5), Arc::new(Value::Int(50)), TxnId(3));
        });
        // Pending: not visible yet.
        assert_eq!(store.latest_value(g(0, 1)), Value::Int(7));
        store.commit_writes(TxnId(3), &[g(0, 1)]);
        assert_eq!(store.latest_value(g(0, 1)), Value::Int(50));
        assert_eq!(store.value_as_of(g(0, 1), Timestamp(5)), Value::Int(7));
        assert_eq!(store.version_count(), 2);
        assert_eq!(store.granule_count(), 1);
        assert_eq!(store.max_chain_len(), 2);
        store.sync().unwrap();
    }

    #[test]
    fn with_chain_returns_the_closure_result() {
        let store: Arc<dyn StorageBackend> = Arc::new(MvStore::new());
        store.seed(g(1, 1), Value::Int(1));
        let len = store.with_chain(g(1, 1), |c| c.len());
        assert_eq!(len, 1);
    }

    #[test]
    fn put_versions_batch_is_idempotent_and_later_wins() {
        let store: Arc<dyn StorageBackend> = Arc::new(MvStore::new());
        let rec = |ts: u64, val: i64| VersionRecord {
            granule: g(0, 1),
            ts: Timestamp(ts),
            value: Arc::new(Value::Int(val)),
            writer: TxnId(9),
        };
        store.put_versions(&[rec(3, 30), rec(5, 50)]);
        assert_eq!(store.latest_value(g(0, 1)), Value::Int(50));
        // Replaying the same version with different content wins.
        store.put_versions(&[rec(5, 55)]);
        assert_eq!(store.latest_value(g(0, 1)), Value::Int(55));
        assert_eq!(store.with_chain(g(0, 1), |c| c.len()), 3); // + Absent seed
    }

    #[test]
    fn scan_chains_visits_every_granule() {
        let store: Arc<dyn StorageBackend> = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(1));
        store.seed(g(1, 2), Value::Int(2));
        let mut seen = Vec::new();
        store.scan_chains(&mut |gr, chain| {
            seen.push((gr, chain.len()));
        });
        seen.sort();
        assert_eq!(seen, vec![(g(0, 1), 1), (g(1, 2), 1)]);
    }

    #[test]
    fn abort_and_prune_through_the_trait() {
        let store: Arc<dyn StorageBackend> = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(0));
        store.with_chain(g(0, 1), |c| {
            c.mvto_write(Timestamp(2), Arc::new(Value::Int(2)), TxnId(1));
        });
        store.abort_writes(TxnId(1), &[g(0, 1)]);
        assert_eq!(store.version_count(), 1);
        for ts in 1..=4u64 {
            store.with_chain(g(0, 1), |c| {
                c.mvto_write(Timestamp(ts), Arc::new(Value::Int(ts as i64)), TxnId(ts));
                c.commit_writer(TxnId(ts));
            });
        }
        assert_eq!(store.prune_before(Timestamp(4)), 3);
    }
}
