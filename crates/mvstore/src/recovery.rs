//! Crash recovery from the value-carrying schedule log.
//!
//! The schedule log doubles as a **redo log**: `Write` events carry the
//! written value, `Commit` events mark durability. [`recover`] replays a
//! log prefix (everything "flushed" before a crash) into a fresh store:
//!
//! * only transactions whose `Commit` appears in the prefix are redone —
//!   a transaction whose writes were logged but whose commit was lost is
//!   rolled back by *not* redoing it (atomicity);
//! * versions are installed committed, with their original write
//!   timestamps, so multi-version reads (Protocols A/C, time-slice
//!   retrieval) behave identically after recovery.
//!
//! The initial database image is re-seeded by the caller (as at normal
//! startup) before replaying, mirroring an ARIES-style "load checkpoint,
//! then redo" sequence without needing undo (writes of uncommitted
//! transactions never reach the recovered store).

use crate::store::MvStore;
use txn_model::{ScheduleEvent, TxnId};

/// Summary of a recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit record survived and were redone.
    pub redone: usize,
    /// Transactions with logged writes but no surviving commit (rolled
    /// back by omission).
    pub rolled_back: usize,
    /// Versions installed.
    pub versions_installed: usize,
}

/// Replay the committed writes of `events` into `store`.
///
/// `events` is the surviving log prefix; the store should already hold
/// the initial database image (seeded as at first boot).
pub fn recover(store: &MvStore, events: &[ScheduleEvent]) -> RecoveryReport {
    use std::collections::HashSet;
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut writers: HashSet<TxnId> = HashSet::new();
    for ev in events {
        match ev {
            ScheduleEvent::Commit { txn, .. } => {
                committed.insert(*txn);
            }
            ScheduleEvent::Write { txn, .. } => {
                writers.insert(*txn);
            }
            _ => {}
        }
    }

    let mut versions_installed = 0usize;
    for ev in events {
        if let ScheduleEvent::Write {
            txn,
            granule,
            version,
            value,
        } = ev
        {
            if committed.contains(txn) {
                store.with_chain(*granule, |c| {
                    // A transaction may have overwritten its own version;
                    // later log entries win.
                    c.remove_version_at(*version);
                    let ok = c.install(*version, value.clone(), *txn, true);
                    debug_assert!(ok);
                });
                versions_installed += 1;
            }
        }
    }

    let redone = writers.iter().filter(|t| committed.contains(t)).count();
    let rolled_back = writers.len() - redone;
    RecoveryReport {
        redone,
        rolled_back,
        versions_installed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{GranuleId, SegmentId, Timestamp, Value};

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn write(t: u64, key: u64, ts: u64, val: i64) -> ScheduleEvent {
        ScheduleEvent::Write {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(ts),
            value: std::sync::Arc::new(Value::Int(val)),
        }
    }

    fn commit(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Commit {
            txn: TxnId(t),
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn committed_writes_redo_uncommitted_roll_back() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        store.seed(g(2), Value::Int(0));
        let events = vec![
            write(1, 1, 5, 10),
            commit(1, 6),
            write(2, 2, 7, 99), // crash before t2's commit
        ];
        let report = recover(&store, &events);
        assert_eq!(report.redone, 1);
        assert_eq!(report.rolled_back, 1);
        assert_eq!(report.versions_installed, 1);
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
        assert_eq!(store.latest_value(g(2)), Value::Int(0));
    }

    #[test]
    fn self_overwrite_last_write_wins() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![write(1, 1, 5, 10), write(1, 1, 5, 20), commit(1, 6)];
        let report = recover(&store, &events);
        assert_eq!(report.versions_installed, 2);
        assert_eq!(store.latest_value(g(1)), Value::Int(20));
    }

    #[test]
    fn version_history_survives_recovery() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            write(1, 1, 5, 10),
            commit(1, 6),
            write(2, 1, 8, 20),
            commit(2, 9),
        ];
        recover(&store, &events);
        // Multi-version reads still see the history.
        assert_eq!(store.value_as_of(g(1), Timestamp(8)), Value::Int(10));
        assert_eq!(store.value_as_of(g(1), Timestamp(9)), Value::Int(20));
        assert_eq!(store.value_as_of(g(1), Timestamp(5)), Value::Int(0));
    }

    #[test]
    fn empty_log_is_a_clean_boot() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(7));
        let report = recover(&store, &[]);
        assert_eq!(
            report,
            RecoveryReport {
                redone: 0,
                rolled_back: 0,
                versions_installed: 0
            }
        );
        assert_eq!(store.latest_value(g(1)), Value::Int(7));
    }
}
