//! Crash recovery from the value-carrying schedule log.
//!
//! The schedule log doubles as a **redo log**: `Write` events carry the
//! written value, `Commit` events mark durability. [`recover`] replays a
//! log prefix (everything "flushed" before a crash) into a fresh store:
//!
//! * only transactions whose `Commit` appears in the prefix are redone —
//!   a transaction whose writes were logged but whose commit was lost is
//!   rolled back by *not* redoing it (atomicity);
//! * versions are installed committed, with their original write
//!   timestamps, so multi-version reads (Protocols A/C, time-slice
//!   retrieval) behave identically after recovery.
//!
//! Replay targets any [`StorageBackend`] — the in-memory store or the
//! durable file backend — through the batch
//! [`put_versions`](StorageBackend::put_versions) API, so a persistent
//! backend can make the whole redo set durable in one append.
//!
//! The initial database image is re-seeded by the caller (as at normal
//! startup) before replaying, mirroring an ARIES-style "load checkpoint,
//! then redo" sequence without needing undo (writes of uncommitted
//! transactions never reach the recovered store).
//!
//! # Malformed logs
//!
//! A log that survived a crash (and a torn-tail truncation, see
//! `txn_model::wal`) may still be internally inconsistent — a buggy or
//! corrupted writer can emit duplicate commits, writes after a commit,
//! or events for transactions that never began. Replaying those silently
//! would fabricate database state, so [`recover`] classifies each shape,
//! **skips** it, counts it in [`RecoveryReport::anomalies`], and retains
//! the first few offending frames ([`RecoveryAnomalies::samples`]) so an
//! operator sees *which* transactions misbehaved, not just how many
//! frames were dropped; callers that demand a pristine log check
//! [`RecoveryAnomalies::is_clean`] and refuse the store otherwise.
//!
//! # High-water mark
//!
//! The report also carries the largest timestamp observed anywhere in
//! the log ([`RecoveryReport::high_water_mark`]). Protocol B's safety
//! argument assumes timestamps never repeat, so a recovered scheduler
//! must advance its logical clock strictly past this mark before serving
//! new transactions (`hdd::recovery::resume` does exactly that).

use crate::backend::{StorageBackend, VersionRecord};
use txn_model::{ScheduleEvent, Timestamp, TxnId};

/// How many offending frames [`RecoveryAnomalies`] retains verbatim.
pub const MAX_ANOMALY_SAMPLES: usize = 8;

/// Which malformed-log shape a skipped frame exhibited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipKind {
    /// Second or later `Commit` for an already-committed transaction.
    DuplicateCommit,
    /// `Write` appearing after its transaction's `Commit`.
    WriteAfterCommit,
    /// Event whose transaction has no `Begin` in the log prefix.
    UnknownTxnEvent,
}

impl std::fmt::Display for SkipKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipKind::DuplicateCommit => write!(f, "duplicate commit"),
            SkipKind::WriteAfterCommit => write!(f, "write after commit"),
            SkipKind::UnknownTxnEvent => write!(f, "event for unknown txn"),
        }
    }
}

/// One frame recovery refused to replay: who, when, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkippedFrame {
    /// Transaction the frame claimed to belong to.
    pub txn: TxnId,
    /// The frame's own timestamp (version, commit, or abort time).
    pub ts: Timestamp,
    /// Which malformed shape it exhibited.
    pub kind: SkipKind,
}

/// Malformed-log shapes found (and skipped) during recovery: per-shape
/// counts plus the first [`MAX_ANOMALY_SAMPLES`] offending frames.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryAnomalies {
    /// Second and later `Commit` events for an already-committed txn.
    pub duplicate_commits: usize,
    /// `Write` events appearing after their transaction's `Commit`.
    pub writes_after_commit: usize,
    /// Events whose transaction has no `Begin` in the log prefix.
    pub unknown_txn_events: usize,
    /// The first offending frames, capped at [`MAX_ANOMALY_SAMPLES`]
    /// (counts keep counting past the cap).
    pub samples: Vec<SkippedFrame>,
}

impl RecoveryAnomalies {
    /// True when the log contained none of the malformed shapes.
    pub fn is_clean(&self) -> bool {
        self.duplicate_commits == 0 && self.writes_after_commit == 0 && self.unknown_txn_events == 0
    }

    /// Total frames skipped (across all shapes; may exceed
    /// `samples.len()`).
    pub fn total(&self) -> usize {
        self.duplicate_commits + self.writes_after_commit + self.unknown_txn_events
    }

    fn note(&mut self, txn: TxnId, ts: Timestamp, kind: SkipKind) {
        match kind {
            SkipKind::DuplicateCommit => self.duplicate_commits += 1,
            SkipKind::WriteAfterCommit => self.writes_after_commit += 1,
            SkipKind::UnknownTxnEvent => self.unknown_txn_events += 1,
        }
        if self.samples.len() < MAX_ANOMALY_SAMPLES {
            self.samples.push(SkippedFrame { txn, ts, kind });
        }
    }
}

/// Summary of a recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit record survived and were redone.
    pub redone: usize,
    /// Transactions with logged writes but no surviving commit (rolled
    /// back by omission).
    pub rolled_back: usize,
    /// Versions installed.
    pub versions_installed: usize,
    /// Largest timestamp observed anywhere in the log (initiation,
    /// version, commit or abort). A recovered clock must start strictly
    /// above this so post-recovery timestamps never collide.
    pub high_water_mark: Timestamp,
    /// Malformed-log shapes found and skipped (all zero on clean logs).
    pub anomalies: RecoveryAnomalies,
}

/// Replay the committed writes of `events` into `store`.
///
/// `events` is the surviving log prefix; the store should already hold
/// the initial database image (seeded as at first boot). Malformed
/// events (see [`RecoveryAnomalies`]) are skipped and counted, never
/// replayed. The redo set is installed through one
/// [`put_versions`](StorageBackend::put_versions) batch so persistent
/// backends pay a single durability round trip.
pub fn recover(store: &dyn StorageBackend, events: &[ScheduleEvent]) -> RecoveryReport {
    use std::collections::HashSet;

    // Forward classification pass: which events are well-formed, which
    // transactions committed, and where the timestamp high-water mark is.
    let mut begun: HashSet<TxnId> = HashSet::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut anomalies = RecoveryAnomalies::default();
    let mut hwm = Timestamp::ZERO;
    // Indices of Write events eligible for redo, with their txn.
    let mut valid_writes: Vec<usize> = Vec::new();
    let mut valid_writers: HashSet<TxnId> = HashSet::new();

    for (i, ev) in events.iter().enumerate() {
        match ev {
            ScheduleEvent::Begin { txn, start_ts, .. } => {
                hwm = hwm.max(*start_ts);
                begun.insert(*txn);
            }
            ScheduleEvent::Read { txn, version, .. } => {
                if !begun.contains(txn) {
                    anomalies.note(*txn, *version, SkipKind::UnknownTxnEvent);
                }
            }
            ScheduleEvent::Write { txn, version, .. } => {
                hwm = hwm.max(*version);
                if !begun.contains(txn) {
                    anomalies.note(*txn, *version, SkipKind::UnknownTxnEvent);
                } else if committed.contains(txn) {
                    anomalies.note(*txn, *version, SkipKind::WriteAfterCommit);
                } else {
                    valid_writes.push(i);
                    valid_writers.insert(*txn);
                }
            }
            ScheduleEvent::Commit { txn, commit_ts } => {
                hwm = hwm.max(*commit_ts);
                if !begun.contains(txn) {
                    anomalies.note(*txn, *commit_ts, SkipKind::UnknownTxnEvent);
                } else if !committed.insert(*txn) {
                    anomalies.note(*txn, *commit_ts, SkipKind::DuplicateCommit);
                }
            }
            ScheduleEvent::Abort { txn, abort_ts } => {
                hwm = hwm.max(*abort_ts);
                if !begun.contains(txn) {
                    anomalies.note(*txn, *abort_ts, SkipKind::UnknownTxnEvent);
                }
            }
        }
    }

    // Redo pass over the well-formed writes of committed transactions,
    // batched into one put_versions call. Later log entries for the same
    // (granule, version) replace earlier ones inside the batch, matching
    // the old per-event remove-then-install behavior.
    let mut batch: Vec<VersionRecord> = Vec::with_capacity(valid_writes.len());
    for &i in &valid_writes {
        if let ScheduleEvent::Write {
            txn,
            granule,
            version,
            value,
        } = &events[i]
        {
            if committed.contains(txn) {
                batch.push(VersionRecord {
                    granule: *granule,
                    ts: *version,
                    value: value.clone(),
                    writer: *txn,
                });
            }
        }
    }
    let versions_installed = batch.len();
    store.put_versions(&batch);

    let redone = valid_writers
        .iter()
        .filter(|t| committed.contains(t))
        .count();
    let rolled_back = valid_writers.len() - redone;
    RecoveryReport {
        redone,
        rolled_back,
        versions_installed,
        high_water_mark: hwm,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MvStore;
    use txn_model::{GranuleId, SegmentId, Timestamp, Value};

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn begin(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Begin {
            txn: TxnId(t),
            start_ts: Timestamp(ts),
            class: None,
        }
    }

    fn write(t: u64, key: u64, ts: u64, val: i64) -> ScheduleEvent {
        ScheduleEvent::Write {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(ts),
            value: std::sync::Arc::new(Value::Int(val)),
        }
    }

    fn commit(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Commit {
            txn: TxnId(t),
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn committed_writes_redo_uncommitted_roll_back() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        store.seed(g(2), Value::Int(0));
        let events = vec![
            begin(1, 5),
            begin(2, 7),
            write(1, 1, 5, 10),
            commit(1, 6),
            write(2, 2, 7, 99), // crash before t2's commit
        ];
        let report = recover(&store, &events);
        assert_eq!(report.redone, 1);
        assert_eq!(report.rolled_back, 1);
        assert_eq!(report.versions_installed, 1);
        assert!(report.anomalies.is_clean());
        assert_eq!(report.high_water_mark, Timestamp(7));
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
        assert_eq!(store.latest_value(g(2)), Value::Int(0));
    }

    #[test]
    fn self_overwrite_last_write_wins() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            write(1, 1, 5, 20),
            commit(1, 6),
        ];
        let report = recover(&store, &events);
        assert_eq!(report.versions_installed, 2);
        assert!(report.anomalies.is_clean());
        assert_eq!(store.latest_value(g(1)), Value::Int(20));
    }

    #[test]
    fn version_history_survives_recovery() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            commit(1, 6),
            begin(2, 8),
            write(2, 1, 8, 20),
            commit(2, 9),
        ];
        recover(&store, &events);
        // Multi-version reads still see the history.
        assert_eq!(store.value_as_of(g(1), Timestamp(8)), Value::Int(10));
        assert_eq!(store.value_as_of(g(1), Timestamp(9)), Value::Int(20));
        assert_eq!(store.value_as_of(g(1), Timestamp(5)), Value::Int(0));
    }

    #[test]
    fn empty_log_is_a_clean_boot() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(7));
        let report = recover(&store, &[]);
        assert_eq!(
            report,
            RecoveryReport {
                redone: 0,
                rolled_back: 0,
                versions_installed: 0,
                high_water_mark: Timestamp::ZERO,
                anomalies: RecoveryAnomalies::default(),
            }
        );
        assert_eq!(store.latest_value(g(1)), Value::Int(7));
    }

    #[test]
    fn duplicate_commit_is_counted_once_not_replayed_twice() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            commit(1, 6),
            commit(1, 6), // duplicated by a corrupt writer
        ];
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.duplicate_commits, 1);
        assert_eq!(report.redone, 1);
        assert_eq!(report.versions_installed, 1);
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
        // The payload satellite: the dropped frame itself is retained.
        assert_eq!(
            report.anomalies.samples,
            vec![SkippedFrame {
                txn: TxnId(1),
                ts: Timestamp(6),
                kind: SkipKind::DuplicateCommit,
            }]
        );
    }

    #[test]
    fn write_after_commit_is_skipped() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            commit(1, 6),
            write(1, 1, 7, 666), // past its own commit: must not be redone
        ];
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.writes_after_commit, 1);
        assert_eq!(report.versions_installed, 1);
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
        // The skipped write's timestamp still raises the high-water mark:
        // a new clock must clear even fabricated timestamps.
        assert_eq!(report.high_water_mark, Timestamp(7));
        assert_eq!(
            report.anomalies.samples,
            vec![SkippedFrame {
                txn: TxnId(1),
                ts: Timestamp(7),
                kind: SkipKind::WriteAfterCommit,
            }]
        );
    }

    #[test]
    fn unknown_txn_events_are_counted_and_skipped() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            write(9, 1, 5, 123), // no Begin for t9 anywhere
            commit(9, 6),
            ScheduleEvent::Abort {
                txn: TxnId(8),
                abort_ts: Timestamp(4),
            },
        ];
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.unknown_txn_events, 3);
        assert_eq!(report.redone, 0);
        assert_eq!(report.versions_installed, 0);
        assert!(!report.anomalies.is_clean());
        assert_eq!(report.anomalies.total(), 3);
        assert_eq!(store.latest_value(g(1)), Value::Int(0));
        // All three offenders retained, in log order, with their ids.
        let txns: Vec<u64> = report.anomalies.samples.iter().map(|s| s.txn.0).collect();
        assert_eq!(txns, vec![9, 9, 8]);
        assert!(report
            .anomalies
            .samples
            .iter()
            .all(|s| s.kind == SkipKind::UnknownTxnEvent));
    }

    #[test]
    fn anomaly_samples_cap_but_counts_keep_counting() {
        let store = MvStore::new();
        let events: Vec<ScheduleEvent> = (0..MAX_ANOMALY_SAMPLES as u64 + 4)
            .map(|i| commit(100 + i, i)) // all unknown txns
            .collect();
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.unknown_txn_events, MAX_ANOMALY_SAMPLES + 4);
        assert_eq!(report.anomalies.samples.len(), MAX_ANOMALY_SAMPLES);
        assert_eq!(report.anomalies.samples[0].txn, TxnId(100));
    }

    #[test]
    fn high_water_mark_covers_every_timestamp_field() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 3),
            write(1, 1, 3, 1),
            commit(1, 11),
            begin(2, 4),
            ScheduleEvent::Abort {
                txn: TxnId(2),
                abort_ts: Timestamp(15),
            },
        ];
        let report = recover(&store, &events);
        assert_eq!(report.high_water_mark, Timestamp(15));
    }

    #[test]
    fn recovery_replays_into_the_file_backend() {
        use crate::filestore::{FileBackend, FileBackendConfig};
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — test-dir name uniqueness only needs RMW
        // atomicity of the counter, no cross-thread publication.
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hdd-recover-file-{}-{n}", std::process::id()));
        let events = vec![begin(1, 5), write(1, 1, 5, 10), commit(1, 6)];
        {
            let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
            StorageBackend::seed(&store, g(1), Value::Int(0));
            let report = recover(&store, &events);
            assert_eq!(report.redone, 1);
        }
        // Replay re-journaled the redo set: a *second* crash recovers
        // from segments alone, without the WAL.
        let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
        let dynstore: &dyn StorageBackend = &store;
        assert_eq!(dynstore.latest_value(g(1)), Value::Int(10));
        std::fs::remove_dir_all(&dir).ok();
    }
}
