//! Crash recovery from the value-carrying schedule log.
//!
//! The schedule log doubles as a **redo log**: `Write` events carry the
//! written value, `Commit` events mark durability. [`recover`] replays a
//! log prefix (everything "flushed" before a crash) into a fresh store:
//!
//! * only transactions whose `Commit` appears in the prefix are redone —
//!   a transaction whose writes were logged but whose commit was lost is
//!   rolled back by *not* redoing it (atomicity);
//! * versions are installed committed, with their original write
//!   timestamps, so multi-version reads (Protocols A/C, time-slice
//!   retrieval) behave identically after recovery.
//!
//! The initial database image is re-seeded by the caller (as at normal
//! startup) before replaying, mirroring an ARIES-style "load checkpoint,
//! then redo" sequence without needing undo (writes of uncommitted
//! transactions never reach the recovered store).
//!
//! # Malformed logs
//!
//! A log that survived a crash (and a torn-tail truncation, see
//! `txn_model::wal`) may still be internally inconsistent — a buggy or
//! corrupted writer can emit duplicate commits, writes after a commit,
//! or events for transactions that never began. Replaying those silently
//! would fabricate database state, so [`recover`] classifies each shape,
//! **skips** it, and counts it in [`RecoveryReport::anomalies`]; callers
//! that demand a pristine log check [`RecoveryAnomalies::is_clean`] and
//! refuse the store otherwise.
//!
//! # High-water mark
//!
//! The report also carries the largest timestamp observed anywhere in
//! the log ([`RecoveryReport::high_water_mark`]). Protocol B's safety
//! argument assumes timestamps never repeat, so a recovered scheduler
//! must advance its logical clock strictly past this mark before serving
//! new transactions (`hdd::recovery::resume` does exactly that).

use crate::store::MvStore;
use txn_model::{ScheduleEvent, Timestamp, TxnId};

/// Counts of malformed-log shapes found (and skipped) during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryAnomalies {
    /// Second and later `Commit` events for an already-committed txn.
    pub duplicate_commits: usize,
    /// `Write` events appearing after their transaction's `Commit`.
    pub writes_after_commit: usize,
    /// Events whose transaction has no `Begin` in the log prefix.
    pub unknown_txn_events: usize,
}

impl RecoveryAnomalies {
    /// True when the log contained none of the malformed shapes.
    pub fn is_clean(&self) -> bool {
        self == &RecoveryAnomalies::default()
    }
}

/// Summary of a recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit record survived and were redone.
    pub redone: usize,
    /// Transactions with logged writes but no surviving commit (rolled
    /// back by omission).
    pub rolled_back: usize,
    /// Versions installed.
    pub versions_installed: usize,
    /// Largest timestamp observed anywhere in the log (initiation,
    /// version, commit or abort). A recovered clock must start strictly
    /// above this so post-recovery timestamps never collide.
    pub high_water_mark: Timestamp,
    /// Malformed-log shapes found and skipped (all zero on clean logs).
    pub anomalies: RecoveryAnomalies,
}

/// Replay the committed writes of `events` into `store`.
///
/// `events` is the surviving log prefix; the store should already hold
/// the initial database image (seeded as at first boot). Malformed
/// events (see [`RecoveryAnomalies`]) are skipped and counted, never
/// replayed.
pub fn recover(store: &MvStore, events: &[ScheduleEvent]) -> RecoveryReport {
    use std::collections::HashSet;

    // Forward classification pass: which events are well-formed, which
    // transactions committed, and where the timestamp high-water mark is.
    let mut begun: HashSet<TxnId> = HashSet::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut anomalies = RecoveryAnomalies::default();
    let mut hwm = Timestamp::ZERO;
    // Indices of Write events eligible for redo, with their txn.
    let mut valid_writes: Vec<usize> = Vec::new();
    let mut valid_writers: HashSet<TxnId> = HashSet::new();

    for (i, ev) in events.iter().enumerate() {
        match ev {
            ScheduleEvent::Begin { txn, start_ts, .. } => {
                hwm = hwm.max(*start_ts);
                begun.insert(*txn);
            }
            ScheduleEvent::Read { txn, .. } => {
                if !begun.contains(txn) {
                    anomalies.unknown_txn_events += 1;
                }
            }
            ScheduleEvent::Write { txn, version, .. } => {
                hwm = hwm.max(*version);
                if !begun.contains(txn) {
                    anomalies.unknown_txn_events += 1;
                } else if committed.contains(txn) {
                    anomalies.writes_after_commit += 1;
                } else {
                    valid_writes.push(i);
                    valid_writers.insert(*txn);
                }
            }
            ScheduleEvent::Commit { txn, commit_ts } => {
                hwm = hwm.max(*commit_ts);
                if !begun.contains(txn) {
                    anomalies.unknown_txn_events += 1;
                } else if !committed.insert(*txn) {
                    anomalies.duplicate_commits += 1;
                }
            }
            ScheduleEvent::Abort { txn, abort_ts } => {
                hwm = hwm.max(*abort_ts);
                if !begun.contains(txn) {
                    anomalies.unknown_txn_events += 1;
                }
            }
        }
    }

    // Redo pass over the well-formed writes of committed transactions.
    let mut versions_installed = 0usize;
    for &i in &valid_writes {
        if let ScheduleEvent::Write {
            txn,
            granule,
            version,
            value,
        } = &events[i]
        {
            if committed.contains(txn) {
                store.with_chain(*granule, |c| {
                    // A transaction may have overwritten its own version;
                    // later log entries win.
                    c.remove_version_at(*version);
                    let ok = c.install(*version, value.clone(), *txn, true);
                    debug_assert!(ok);
                });
                versions_installed += 1;
            }
        }
    }

    let redone = valid_writers
        .iter()
        .filter(|t| committed.contains(t))
        .count();
    let rolled_back = valid_writers.len() - redone;
    RecoveryReport {
        redone,
        rolled_back,
        versions_installed,
        high_water_mark: hwm,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::{GranuleId, SegmentId, Timestamp, Value};

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    fn begin(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Begin {
            txn: TxnId(t),
            start_ts: Timestamp(ts),
            class: None,
        }
    }

    fn write(t: u64, key: u64, ts: u64, val: i64) -> ScheduleEvent {
        ScheduleEvent::Write {
            txn: TxnId(t),
            granule: g(key),
            version: Timestamp(ts),
            value: std::sync::Arc::new(Value::Int(val)),
        }
    }

    fn commit(t: u64, ts: u64) -> ScheduleEvent {
        ScheduleEvent::Commit {
            txn: TxnId(t),
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn committed_writes_redo_uncommitted_roll_back() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        store.seed(g(2), Value::Int(0));
        let events = vec![
            begin(1, 5),
            begin(2, 7),
            write(1, 1, 5, 10),
            commit(1, 6),
            write(2, 2, 7, 99), // crash before t2's commit
        ];
        let report = recover(&store, &events);
        assert_eq!(report.redone, 1);
        assert_eq!(report.rolled_back, 1);
        assert_eq!(report.versions_installed, 1);
        assert!(report.anomalies.is_clean());
        assert_eq!(report.high_water_mark, Timestamp(7));
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
        assert_eq!(store.latest_value(g(2)), Value::Int(0));
    }

    #[test]
    fn self_overwrite_last_write_wins() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            write(1, 1, 5, 20),
            commit(1, 6),
        ];
        let report = recover(&store, &events);
        assert_eq!(report.versions_installed, 2);
        assert!(report.anomalies.is_clean());
        assert_eq!(store.latest_value(g(1)), Value::Int(20));
    }

    #[test]
    fn version_history_survives_recovery() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            commit(1, 6),
            begin(2, 8),
            write(2, 1, 8, 20),
            commit(2, 9),
        ];
        recover(&store, &events);
        // Multi-version reads still see the history.
        assert_eq!(store.value_as_of(g(1), Timestamp(8)), Value::Int(10));
        assert_eq!(store.value_as_of(g(1), Timestamp(9)), Value::Int(20));
        assert_eq!(store.value_as_of(g(1), Timestamp(5)), Value::Int(0));
    }

    #[test]
    fn empty_log_is_a_clean_boot() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(7));
        let report = recover(&store, &[]);
        assert_eq!(
            report,
            RecoveryReport {
                redone: 0,
                rolled_back: 0,
                versions_installed: 0,
                high_water_mark: Timestamp::ZERO,
                anomalies: RecoveryAnomalies::default(),
            }
        );
        assert_eq!(store.latest_value(g(1)), Value::Int(7));
    }

    #[test]
    fn duplicate_commit_is_counted_once_not_replayed_twice() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            commit(1, 6),
            commit(1, 6), // duplicated by a corrupt writer
        ];
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.duplicate_commits, 1);
        assert_eq!(report.redone, 1);
        assert_eq!(report.versions_installed, 1);
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
    }

    #[test]
    fn write_after_commit_is_skipped() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 5),
            write(1, 1, 5, 10),
            commit(1, 6),
            write(1, 1, 7, 666), // past its own commit: must not be redone
        ];
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.writes_after_commit, 1);
        assert_eq!(report.versions_installed, 1);
        assert_eq!(store.latest_value(g(1)), Value::Int(10));
        // The skipped write's timestamp still raises the high-water mark:
        // a new clock must clear even fabricated timestamps.
        assert_eq!(report.high_water_mark, Timestamp(7));
    }

    #[test]
    fn unknown_txn_events_are_counted_and_skipped() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            write(9, 1, 5, 123), // no Begin for t9 anywhere
            commit(9, 6),
            ScheduleEvent::Abort {
                txn: TxnId(8),
                abort_ts: Timestamp(4),
            },
        ];
        let report = recover(&store, &events);
        assert_eq!(report.anomalies.unknown_txn_events, 3);
        assert_eq!(report.redone, 0);
        assert_eq!(report.versions_installed, 0);
        assert!(!report.anomalies.is_clean());
        assert_eq!(store.latest_value(g(1)), Value::Int(0));
    }

    #[test]
    fn high_water_mark_covers_every_timestamp_field() {
        let store = MvStore::new();
        store.seed(g(1), Value::Int(0));
        let events = vec![
            begin(1, 3),
            write(1, 1, 3, 1),
            commit(1, 11),
            begin(2, 4),
            ScheduleEvent::Abort {
                txn: TxnId(2),
                abort_ts: Timestamp(15),
            },
        ];
        let report = recover(&store, &events);
        assert_eq!(report.high_water_mark, Timestamp(15));
    }
}
